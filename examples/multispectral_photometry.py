#!/usr/bin/env python3
"""Multi-spectral photometry: the paper's Section 5.2 sample query.

Combines optical (SDSS) and infrared (TWOMASS) fluxes for the same
astronomical bodies — the "observe the same sky in other wavelengths and
combine the available observations into a multi-spectral data set" use
case from Section 2 — including a cross-archive color cut the Portal must
evaluate itself (no single archive holds both fluxes).

Also sweeps the XMATCH threshold to show the precision/completeness
trade-off against the synthetic sky's ground truth.

Run:  python examples/multispectral_photometry.py
"""

from repro import FederationConfig, SkyField, build_federation, format_table

QUERY = """
    SELECT O.object_id, O.ra, T.obj_id, O.i_flux, T.i_flux,
           O.i_flux - T.i_flux AS color
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5
      AND O.type = GALAXY AND O.i_flux - T.i_flux > 2
"""


def main() -> None:
    federation = build_federation(
        FederationConfig(n_bodies=1500, seed=11,
                         sky_field=SkyField(185.0, -0.5, 1800.0))
    )
    client = federation.client()

    result = client.submit(QUERY)
    print("The paper's sample query (adapted to this reproduction's schema):")
    print(QUERY)
    print(f"Matches passing the color cut: {len(result)} "
          f"(of {result.matched_tuples} positional matches)\n")
    print(format_table(result.columns, result.rows, max_rows=8))

    print("\nThreshold sweep (XMATCH(O, T) < t), accuracy vs ground truth:")
    truth_sdss = federation.truth["SDSS"]
    truth_twomass = federation.truth["TWOMASS"]
    print(f"{'t':>5} {'pairs':>6} {'correct':>8} {'precision':>10}")
    for threshold in (1.0, 2.0, 3.5, 5.0):
        sweep = client.submit(
            f"""
            SELECT O.object_id, T.obj_id
            FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
            WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < {threshold}
            """
        )
        correct = sum(
            1 for o_id, t_id in sweep.rows
            if truth_sdss[o_id] == truth_twomass[t_id]
        )
        precision = correct / len(sweep) if len(sweep) else 1.0
        print(f"{threshold:>5} {len(sweep):>6} {correct:>8} {precision:>10.4f}")


if __name__ == "__main__":
    main()
