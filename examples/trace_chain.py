#!/usr/bin/env python3
"""Distributed tracing of a federated cross-match, end to end.

Runs the same query twice — once over the classic store-and-forward chain
and once pipelined — and prints each run's span tree as an ASCII
flamegraph on the simulated clock. The two shapes tell the whole story:
store-and-forward nests each hop's `PerformXMatch` inside its caller's
(the chain is strictly serial), while the pipelined run's `PullBatch`
spans overlap across hops (batch k+1 transfers while batch k computes).

Also writes a Chrome trace_event JSON for the pipelined run: load
`trace_chain_pipelined.json` in about:tracing or https://ui.perfetto.dev
to scrub through the same spans interactively.

Run:  python examples/trace_chain.py
"""

import json
import os
import tempfile

from repro import (
    FederationConfig,
    SkyField,
    build_federation,
    render_flamegraph,
    to_chrome_trace,
)
from repro.tracing import chain_hop_spans, check_span_invariants

SQL = """
    SELECT O.object_id, O.ra, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T,
         FIRST:Primary_Object P
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5
"""


def run_mode(chain_mode):
    federation = build_federation(
        FederationConfig(
            n_bodies=1200,
            seed=42,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            default_bandwidth_bps=250_000.0,
            chain_mode=chain_mode,
            stream_batch_size=100,
        )
    )
    result = federation.portal.submit(SQL)
    return federation, result


def main() -> None:
    for mode in ("store-forward", "pipelined"):
        federation, result = run_mode(mode)
        trace = result.trace
        check_span_invariants(trace)
        print(f"=== {mode} ===")
        print(render_flamegraph(trace, width=64))
        hops = chain_hop_spans(trace)
        print(f"rows: {len(result.rows)}   chain hops: "
              + " -> ".join(span.host.split('.')[0] for span in hops))
        print()
        if mode == "pipelined":
            out = os.path.join(
                tempfile.gettempdir(), "trace_chain_pipelined.json"
            )
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(to_chrome_trace(trace), handle, indent=2)
            print(f"wrote {out} (open in about:tracing / Perfetto)")


if __name__ == "__main__":
    main()
