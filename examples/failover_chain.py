#!/usr/bin/env python3
"""Replica failover: a mid-chain crash that costs seconds, not rows.

Builds the same replica-backed federation three times:

1. A fault-free **oracle** run, which also tells us *when* the chain
   executes and *which* host runs its first hop (the simulation is
   deterministic, so an identically-built twin reaches the same instant).
2. A run where that first-hop archive **crashes mid-chain** — volatile
   state gone, every request to it failing. The executor fails over to
   the archive's replica and resumes from per-hop checkpoints; the rows
   are byte-identical to the oracle.
3. The same crash with ``replicas=0``: the pre-failover behaviour, a
   degraded empty answer naming the dead archive.

Run:  python examples/failover_chain.py
"""

from repro import FederationConfig, SkyField, build_federation
from repro.services.retry import RetryPolicy
from repro.transport.faults import FaultPlan

SQL = """
    SELECT O.object_id, O.ra, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T,
         FIRST:Primary_Object P
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5
"""


def build(replicas):
    return build_federation(
        FederationConfig(
            n_bodies=800,
            seed=7,
            sky_field=SkyField(center_ra_deg=185.0, center_dec_deg=-0.5,
                               radius_arcsec=1800.0),
            retry_policy=RetryPolicy(max_attempts=3, timeout_s=5.0,
                                     base_backoff_s=0.2, max_backoff_s=2.0),
            replicas=replicas,
        )
    )


def main() -> None:
    # 1. Fault-free oracle: the answer, plus the chain's time window and
    #    the hostname of its first (largest-count) hop.
    oracle_fed = build(replicas=1)
    t0 = oracle_fed.network.clock.now
    oracle = oracle_fed.client().submit(SQL)
    t1 = oracle_fed.network.clock.now
    victim = oracle.plan["steps"][0]["url"].split("/")[2]
    print(f"Oracle run: {len(oracle)} rows, no faults, "
          f"chain window [{t0:.2f}s, {t1:.2f}s], first hop on {victim}.")

    # 2. Crash that host 60% of the way through the twin's chain window.
    crash_at = t0 + 0.6 * (t1 - t0)
    fed = build(replicas=1)
    fed.network.set_fault_plan(FaultPlan().crash(victim, at_s=crash_at))
    result = fed.client().submit(SQL)

    assert result.rows == oracle.rows
    assert result.columns == oracle.columns
    assert result.failovers >= 1 and not result.degraded
    print(f"\nCrashed {victim} at t={crash_at:.2f}s (mid-chain):")
    print(f"  rows identical to oracle : True ({len(result)} matches)")
    print(f"  failovers                : {result.failovers}")
    print(f"  degraded                 : {result.degraded}")
    for warning in result.warnings:
        print(f"  warning: {warning}")

    # 3. Same crash, no replicas: the best the Portal can do is degrade.
    #    (A replica-less build has its own deterministic timeline, so
    #    derive the crash instant from its own fault-free twin.)
    bare_twin = build(replicas=0)
    b0 = bare_twin.network.clock.now
    bare_twin.client().submit(SQL)
    b1 = bare_twin.network.clock.now
    bare = build(replicas=0)
    bare.network.set_fault_plan(
        FaultPlan().crash(victim, at_s=b0 + 0.6 * (b1 - b0))
    )
    degraded = bare.client().submit(SQL)
    assert degraded.degraded and degraded.rows == []
    print(f"\nSame crash with replicas=0: degraded={degraded.degraded}, "
          f"{len(degraded.rows)} rows —")
    for warning in degraded.warnings:
        print(f"  warning: {warning}")
    print("\nFailover turned that empty degraded answer into the complete "
          "result.")


if __name__ == "__main__":
    main()
