#!/usr/bin/env python3
"""Polygonal AREA clauses — the paper's Section 6 extension, implemented.

"They AREA clause can also be extended to specify arbitrary polygons
rather than just simple circles." This example runs the same federated
cross match over a circular AREA and over a triangular
``AREA(POLYGON, ...)``, compares the two footprints, and exports the
polygon result as a VOTable (the Virtual Observatory's tabular format).

Run:  python examples/polygon_search.py
"""

from repro import FederationConfig, SkyField, build_federation, format_table
from repro.client import to_votable

CIRCLE = """
    SELECT O.object_id, O.ra, O.dec, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5
    ORDER BY O.object_id
"""

TRIANGLE = """
    SELECT O.object_id, O.ra, O.dec, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
    WHERE AREA(POLYGON, 184.8, -0.7, 185.2, -0.7, 185.0, -0.25)
      AND XMATCH(O, T) < 3.5
    ORDER BY O.object_id
"""


def main() -> None:
    federation = build_federation(
        FederationConfig(n_bodies=1200, seed=13,
                         sky_field=SkyField(185.0, -0.5, 1800.0))
    )
    client = federation.client()

    circle = client.submit(CIRCLE)
    triangle = client.submit(TRIANGLE)
    print(f"Circular AREA (r=900\"):        {len(circle)} matches")
    print(f"Triangular AREA(POLYGON, ...): {len(triangle)} matches\n")
    print(format_table(triangle.columns, triangle.rows, max_rows=8))

    circle_ids = {row[0] for row in circle.rows}
    triangle_ids = {row[0] for row in triangle.rows}
    print(
        f"\nFootprint overlap: {len(circle_ids & triangle_ids)} objects in "
        f"both; {len(triangle_ids - circle_ids)} only inside the triangle."
    )

    votable = to_votable(
        triangle.columns,
        triangle.rows,
        table_name="triangle_matches",
        description="SDSS x TWOMASS cross matches in a triangular footprint",
    )
    print("\nVOTable export (first lines):")
    print("\n".join(votable.splitlines()[:10]))
    print(f"... ({len(votable)} characters total)")


if __name__ == "__main__":
    main()
