#!/usr/bin/env python3
"""Live ingest: new observations land as snapshot epochs, atomically.

The paper's federation is read-only, but telescopes keep observing. This
example uploads a fresh batch of observations into a replica-backed SDSS
archive while queries run, and shows the two guarantees the ingest
subsystem makes:

1. **Snapshot isolation** — an upload becomes visible as ONE new epoch;
   a query pinned at the pre-ingest epochs replays its answer byte for
   byte even though the live table has grown.
2. **All-or-nothing fan-out** — the epoch commits on the primary AND its
   mirror through 2PC, or on neither: with the mirror unreachable the
   upload aborts cleanly, leaving zero partial rows anywhere.

Run:  python examples/live_ingest.py
"""

from repro import FederationConfig, SkyField, build_federation
from repro.workloads.skysim import generate_bodies, observe_survey

SQL = """
    SELECT O.object_id, O.ra, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5
"""


def fresh_observation(fed, archive, n_rows, seed_offset):
    """Observe n_rows new synthetic bodies through one survey's lens."""
    config = fed.config
    survey = next(s for s in config.surveys if s.archive == archive)
    observation = observe_survey(
        survey,
        generate_bodies(config.sky_field, n_rows, config.seed + seed_offset),
        config.seed + seed_offset,
    )
    columns = list(observation.rows[0].keys())
    rows = [tuple(row[c] for c in columns) for row in observation.rows]
    return survey.primary_table, columns, rows


def table_size(node, table):
    return len(node.db.table(table))


def main() -> None:
    fed = build_federation(
        FederationConfig(
            n_bodies=400,
            seed=7,
            sky_field=SkyField(center_ra_deg=185.0, center_dec_deg=-0.5,
                               radius_arcsec=1800.0),
            replicas=1,
            ingest=True,
        )
    )
    primary = fed.node("SDSS")
    mirror = fed.replicas["SDSS"][0]

    # A query before the upload: it plans (and records) epoch 0.
    before = fed.client().submit(SQL)
    print(f"Before ingest: {len(before)} matches at epochs {before.epochs}.")

    # Both surveys observe the same 60 fresh bodies (seed_offset 99) and
    # each upload commits as that archive's epoch 1, fanned out to its
    # mirror under two-phase commit.
    for archive in ("TWOMASS",):
        t2, c2, r2 = fresh_observation(fed, archive, 60, 99)
        assert fed.ingest_client(archive).ingest_rows(t2, c2, r2).committed
    table, columns, rows = fresh_observation(fed, "SDSS", 60, 99)
    result = fed.ingest_client("SDSS").ingest_rows(table, columns, rows)
    assert result.committed and result.epoch == 1
    print(f"\nIngested {result.rows_sent} rows into SDSS:{table} "
          f"as epoch {result.epoch} (and the same bodies into TWOMASS).")
    print(f"  2PC votes: {sorted(result.votes.values())} "
          f"from {len(result.votes)} participants")
    print(f"  primary/mirror committed_epoch: {primary.db.committed_epoch}"
          f"/{mirror.db.committed_epoch}, "
          f"rows {table_size(primary, table)}/{table_size(mirror, table)} "
          "(lockstep)")

    # A fresh query now plans at epoch 1 and can see the new rows...
    after = fed.client().submit(SQL)
    print(f"\nAfter ingest: {len(after)} matches at epochs {after.epochs} "
          f"({len(after) - len(before):+d}).")

    # ...but pinning the pre-ingest epochs replays the OLD answer exactly.
    pinned = fed.portal.submit(SQL, pin_epochs=before.epochs)
    assert sorted(pinned.rows) == sorted(before.rows)
    print(f"Repeatable read: pinned at {before.epochs} -> "
          f"{len(pinned)} matches, byte-identical to the before answer: "
          f"{sorted(pinned.rows) == sorted(before.rows)}")

    # All-or-nothing: with the mirror unreachable, CommitEpoch aborts —
    # no epoch advances and no partial rows appear on any participant.
    rows_at_primary = table_size(primary, table)
    fed.network.fail_host(mirror.hostname)
    table2, columns2, rows2 = fresh_observation(fed, "SDSS", 25, 123)
    attempt = fed.ingest_client("SDSS").ingest_rows(table2, columns2, rows2)
    fed.network.restore_host(mirror.hostname)
    assert not attempt.committed
    assert primary.db.committed_epoch == mirror.db.committed_epoch == 1
    assert table_size(primary, table) == rows_at_primary
    print(f"\nWith the mirror down, the next upload aborts cleanly: "
          f"committed={attempt.committed} "
          f"(reason: {attempt.abort_reason!r}); both stay at epoch 1 "
          "with zero partial rows.")


if __name__ == "__main__":
    main()
