#!/usr/bin/env python3
"""Growing the federation: registration, discovery, and heterogeneity.

The paper's architectural pitch is that an autonomous archive can join the
federation "with minimal effort": stand up four Web services, call the
Portal's Registration service, done. This example builds a federation with
two archives, adds a third *while the federation is running*, and shows:

* the Registration -> GetSchema -> GetInfo handshake on the wire,
* a UDDI-style registry used to discover the Portal in the first place,
* WSDL fetched from a node and used to drive a call,
* dialect heterogeneity hidden by the wrappers (each archive logs the
  statements in its own SQL surface syntax).

Run:  python examples/federation_growth.py
"""

from repro import FederationConfig, SkyField, build_federation
from repro.db.engine import Database
from repro.db.table import SpatialSpec
from repro.federation.surveys import FIRST, SDSS, TWOMASS
from repro.services import ServiceHost, ServiceProxy, UDDIRegistry
from repro.skynode.node import SkyNode
from repro.skynode.wrapper import ArchiveInfo
from repro.workloads.skysim import generate_bodies, observe_survey


def main() -> None:
    config = FederationConfig(
        surveys=[SDSS, TWOMASS],
        n_bodies=800,
        seed=21,
        sky_field=SkyField(185.0, -0.5, 1800.0),
    )
    federation = build_federation(config)
    portal = federation.portal
    network = federation.network
    print(f"Initial federation: {portal.catalog.archives()}")

    # -- publish the Portal in a UDDI-style registry ---------------------------
    registry = UDDIRegistry()
    registry_host = ServiceHost("uddi.skyquery.net")
    registry_url = registry_host.mount("/registry", registry)
    network.add_host("uddi.skyquery.net", registry_host.handle)
    publisher = ServiceProxy(network, portal.hostname, registry_url)
    publisher.call(
        "Publish",
        name="SkyQueryPortal",
        category="portal",
        url=portal.service_url("registration"),
        description="SkyQuery federation registration endpoint",
    )
    print("Portal published to UDDI registry.")

    # -- a new archive (FIRST) prepares its SkyNode ---------------------------
    db = Database("first", dialect=FIRST.dialect, page_size=64)
    db.create_table(
        FIRST.primary_table,
        FIRST.columns(),
        spatial=SpatialSpec(FIRST.ra_column, FIRST.dec_column, htm_depth=12),
    )
    observation = observe_survey(FIRST, federation.bodies, config.seed)
    db.insert(FIRST.primary_table, observation.rows)
    node = SkyNode(
        db,
        ArchiveInfo(
            archive=FIRST.archive,
            sigma_arcsec=FIRST.sigma_arcsec,
            primary_table=FIRST.primary_table,
            object_id_column=FIRST.object_id_column,
            ra_column=FIRST.ra_column,
            dec_column=FIRST.dec_column,
        ),
    )
    node.attach(network)

    # Discover the Portal via the registry, then register.
    found = ServiceProxy(network, node.hostname, registry_url).call(
        "Find", category="portal", name=""
    )
    registration_url = found[0]["url"]
    print(f"FIRST discovered the Portal at {registration_url}")
    reply = node.register_with_portal(registration_url)
    print(f"Registration accepted: federation size is now "
          f"{reply['federation_size']} -> {portal.catalog.archives()}")

    handshake = [
        f"{m.operation}({m.src.split('.')[0]} -> {m.dst.split('.')[0]})"
        for m in network.metrics.messages
        if m.phase == "registration" and m.kind == "request"
    ][-3:]
    print(f"Handshake on the wire: {' ; '.join(handshake)}")

    # -- WSDL-driven call against the new node ----------------------------------
    proxy = ServiceProxy(network, "client.skyquery.net",
                         node.service_url("query"))
    description = proxy.fetch_wsdl()
    print(f"\nWSDL of {description.name}: "
          f"{[op.name for op in description.operations]}")
    rowset = proxy.call(
        "ExecuteQuery",
        sql=f"SELECT count(*) FROM {FIRST.primary_table} p",
    )
    print(f"FIRST object count via its Query service: {rowset.rows[0][0]}")

    # -- the 3-archive query now works -----------------------------------------
    result = federation.client().submit(
        """
        SELECT O.object_id, T.obj_id, P.object_id
        FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T,
             FIRST:Primary_Object P
        WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5
        """
    )
    print(f"\n3-archive cross match after joining: {len(result)} rows")

    print("\nDialect heterogeneity (each wrapper logs its own SQL syntax):")
    for archive in ("SDSS", "TWOMASS"):
        wrapper = federation.node(archive).wrapper
        if wrapper.statement_log:
            print(f"  {archive:<8} [{wrapper.dialect.name:>9}] "
                  f"{wrapper.statement_log[-1][:70]}...")
    if node.wrapper.statement_log:
        print(f"  FIRST    [{node.wrapper.dialect.name:>9}] "
              f"{node.wrapper.statement_log[-1][:70]}...")


if __name__ == "__main__":
    main()
