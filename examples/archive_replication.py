#!/usr/bin/env python3
"""Transactional data exchange — the paper's Section 6 transactions extension.

"Another extension is to implement transaction processing for exchange of
data between astronomy archives, and see how the stateless SOAP handles
such complex requirements."

This example replicates a sky region's SDSS objects into replica tables at
TWOMASS and FIRST under two-phase commit, then demonstrates atomicity: a
target that votes abort (simulated full disk) rolls back *everyone*, and a
coordinator crash between commit deliveries is healed by log-based
recovery. Every protocol message is an ordinary stateless SOAP call whose
transaction id carries the context — the answer to the paper's question.

Run:  python examples/archive_replication.py
"""

from repro import FederationConfig, SkyField, build_federation
from repro.sql.ast import AreaClause
from repro.transactions import (
    CoordinatorCrash,
    CoordinatorLog,
    DataExchange,
    TwoPhaseCoordinator,
)

AREA = AreaClause(185.0, -0.5, 900.0)


def main() -> None:
    federation = build_federation(
        FederationConfig(n_bodies=800, seed=17,
                         sky_field=SkyField(185.0, -0.5, 1800.0))
    )
    urls = {
        archive: node.enable_transactions()
        for archive, node in federation.nodes.items()
    }
    print(f"Transaction services mounted: {sorted(urls)}")

    log = CoordinatorLog()
    coordinator = TwoPhaseCoordinator(
        federation.network, federation.portal.hostname, log
    )
    exchange = DataExchange(federation.portal, urls, coordinator=coordinator)

    # -- happy path ----------------------------------------------------------
    result = exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
    print(f"\nReplication {result.txn_id}: committed={result.committed}, "
          f"{result.rows_copied} rows -> '{result.replica_table}'")
    for archive in ("TWOMASS", "FIRST"):
        count = federation.node(archive).db.count_rows(result.replica_table)
        print(f"  {archive:<8} now holds {count} replicated objects")

    # -- atomic abort ----------------------------------------------------------
    federation.node("FIRST").transaction.fail_next_prepare = "disk full"
    failed = exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
    print(f"\nSecond exchange {failed.txn_id}: committed={failed.committed} "
          f"(reason: {failed.abort_reason!r})")
    print("  Votes:", failed.votes)
    for archive in ("TWOMASS", "FIRST"):
        count = federation.node(archive).db.count_rows(result.replica_table)
        print(f"  {archive:<8} still holds {count} rows — no partial copy")

    # -- coordinator crash + recovery ---------------------------------------------
    delivered = []

    def crash_between_commits(url: str) -> None:
        if delivered:
            raise CoordinatorCrash(url)
        delivered.append(url)

    coordinator.fault_hook = crash_between_commits
    try:
        exchange.replicate_region("TWOMASS", ["SDSS", "FIRST"], AREA)
    except CoordinatorCrash:
        print("\nCoordinator crashed after delivering one commit!")
    in_doubt = log.in_doubt()
    print(f"  Write-ahead log shows {len(in_doubt)} in-doubt transaction(s).")

    fresh = TwoPhaseCoordinator(
        federation.network, federation.portal.hostname, log
    )
    outcomes = fresh.recover()
    print(f"  Recovery replayed: {[(o.txn_id, o.committed) for o in outcomes]}")
    sdss = federation.node("SDSS").db.count_rows("twomass_replica")
    first = federation.node("FIRST").db.count_rows("twomass_replica")
    print(f"  After recovery both targets agree: SDSS={sdss}, FIRST={first}")

    phase_bytes = federation.network.metrics.bytes_by_phase().get(
        "transaction", 0
    )
    print(f"\nAll of it over stateless SOAP: {phase_bytes} bytes of "
          "transaction-phase messages, each carrying its txn_id explicitly.")


if __name__ == "__main__":
    main()
