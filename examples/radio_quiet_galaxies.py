#!/usr/bin/env python3
"""Drop-out search: optically-detected galaxies with no radio counterpart.

The paper's ``!P`` clause ("exclusive outer join") answers questions like
*which galaxies seen by both optical surveys are radio-quiet?* — objects
matched between SDSS and TWOMASS that have NO counterpart in the FIRST
radio survey within the same error bound.

The example runs both the mandatory and the drop-out variants and shows
they partition the optical matches, exactly as Figure 2 illustrates.

Run:  python examples/radio_quiet_galaxies.py
"""

from repro import FederationConfig, SkyField, build_federation, format_table

BASE = """
    SELECT O.object_id, T.obj_id, O.r_flux
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
    WHERE AREA(185.0, -0.5, 900.0) AND XMATCH({terms}) < 3.5
      AND O.type = GALAXY
"""


def main() -> None:
    federation = build_federation(
        FederationConfig(
            n_bodies=1500,
            seed=7,
            sky_field=SkyField(185.0, -0.5, 1800.0),
        )
    )
    client = federation.client()

    radio_loud = client.submit(BASE.format(terms="O, T, P"))
    radio_quiet = client.submit(BASE.format(terms="O, T, !P"))
    all_optical = client.submit(
        """
        SELECT O.object_id, T.obj_id, O.r_flux
        FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
        WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5
          AND O.type = GALAXY
        """
    )

    print(f"Optical (SDSS x TWOMASS) galaxy matches : {len(all_optical)}")
    print(f"  with a FIRST radio counterpart        : {len(radio_loud)}")
    print(f"  radio-quiet (XMATCH(O, T, !P))        : {len(radio_quiet)}")

    loud_ids = {row[0] for row in radio_loud.rows}
    quiet_ids = {row[0] for row in radio_quiet.rows}
    optical_ids = {row[0] for row in all_optical.rows}
    print(
        "\nPartition check: loud + quiet == all optical?",
        loud_ids | quiet_ids == optical_ids,
        "| disjoint?",
        loud_ids.isdisjoint(quiet_ids),
    )

    print("\nSample radio-quiet galaxies:")
    print(format_table(radio_quiet.columns, radio_quiet.rows, max_rows=8))

    plan = radio_quiet.plan
    order = " -> ".join(
        f"{s['alias']}({'dropout' if s['dropout'] else s['count_star']})"
        for s in plan["steps"]
    )
    print(f"\nPlan list (drop-outs first, then descending count): {order}")
    print("(The chain executes the list in reverse, so the drop-out test "
          "runs last, once the optical pairs exist.)")


if __name__ == "__main__":
    main()
