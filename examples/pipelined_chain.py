#!/usr/bin/env python3
"""Pipelined chain execution vs store-and-forward, on the same query.

Builds the same federation twice — once with the classic store-and-forward
chain (`PerformXMatch`: each SkyNode finishes its whole step before the
partial results move one hop) and once in pipelined mode
(`OpenStream`/`PullBatch`: the seed node partitions its tuples into
batches whose chain traversals run as parallel branches, shipped in the
compact columnar wire encoding) — then verifies the two modes return
*identical rows in identical order* and compares their simulated makespans
and chain bytes.

The link is deliberately slowed (250 kB/s) so payload transfer, not
per-hop latency, dominates: the regime pipelining exists for.

Run:  python examples/pipelined_chain.py
"""

from repro import FederationConfig, SkyField, build_federation

SQL = """
    SELECT O.object_id, O.ra, T.obj_id
    FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T,
         FIRST:Primary_Object P
    WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T, P) < 3.5
"""

CHAIN_PHASES = ("crossmatch-chain", "batch-transfer", "chunk-transfer")


def run_mode(chain_mode):
    federation = build_federation(
        FederationConfig(
            n_bodies=4000,
            seed=42,
            sky_field=SkyField(center_ra_deg=185.0, center_dec_deg=-0.5,
                               radius_arcsec=1800.0),
            default_bandwidth_bps=250_000.0,
            chain_mode=chain_mode,
            stream_batch_size=200,
        )
    )
    client = federation.client()
    start = federation.network.clock.now
    result = client.submit(SQL)
    makespan = federation.network.clock.now - start
    metrics = federation.network.metrics
    chain_bytes = sum(
        metrics.total_bytes(phase=phase) for phase in CHAIN_PHASES
    )
    return result, makespan, chain_bytes


def main() -> None:
    print("Same 3-archive query, two chain execution modes (250 kB/s link).\n")
    classic, classic_s, classic_b = run_mode("store-forward")
    pipelined, pipelined_s, pipelined_b = run_mode("pipelined")

    # The pipelined mode is a pure performance transform: not one byte of
    # the answer may differ.
    assert pipelined.columns == classic.columns
    assert pipelined.rows == classic.rows
    assert pipelined.matched_tuples == classic.matched_tuples
    print(f"Rows identical across modes? True ({len(classic)} matches, "
          "same order)")

    print(f"\n{'mode':<16} {'makespan':>10} {'chain bytes':>12}")
    print(f"{'store-forward':<16} {classic_s:>9.3f}s {classic_b:>12}")
    print(f"{'pipelined':<16} {pipelined_s:>9.3f}s {pipelined_b:>12}")
    print(f"\nPipelined speedup: {classic_s / pipelined_s:.2f}x "
          f"(columnar wire saves {classic_b / pipelined_b:.2f}x chain bytes)")

    print("\nPer-node batch accounting (pipelined run):")
    for stats in pipelined.node_stats:
        print(
            f"  {stats['archive']:<8} role={stats['role']:<6} "
            f"batches={stats['batches']:<3} "
            f"rows/batch={stats['batch_rows']}"
        )


if __name__ == "__main__":
    main()
