#!/usr/bin/env python3
"""Quickstart: build a federation and run your first cross-match query.

Builds the paper's three-archive federation (SDSS + TWOMASS + FIRST) over a
synthetic sky, then submits a two-archive XMATCH query through the full
stack: client -> Portal (SOAP) -> count-star performance queries -> ordered
daisy chain across SkyNodes -> result relay.

Run:  python examples/quickstart.py
"""

from repro import FederationConfig, SkyField, build_federation, format_table


def main() -> None:
    print("Building the federation (3 archives, 1000 synthetic bodies)...")
    federation = build_federation(
        FederationConfig(
            n_bodies=1000,
            seed=42,
            sky_field=SkyField(center_ra_deg=185.0, center_dec_deg=-0.5,
                               radius_arcsec=1800.0),
        )
    )
    print(f"Registered archives: {federation.portal.catalog.archives()}")

    client = federation.client()
    sql = """
        SELECT O.object_id, O.ra, O.dec, T.obj_id
        FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
        WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5
    """
    print("\nSubmitting:")
    print(sql)
    result = client.submit(sql)

    print(f"Count-star estimates: {result.counts}")
    print(f"Cross matches found: {len(result)}\n")
    print(format_table(result.columns, result.rows, max_rows=10))

    print("\nPer-node execution stats (computation order):")
    for stats in result.node_stats:
        print(
            f"  {stats['archive']:<8} role={stats['role']:<6} "
            f"tuples in={stats['tuples_in']:<4} out={stats['tuples_out']:<4} "
            f"rows examined={stats['rows_examined']}"
        )

    metrics = federation.network.metrics
    print("\nNetwork bytes by phase:")
    for phase, total in sorted(metrics.bytes_by_phase().items()):
        print(f"  {phase:<18} {total:>8} B")
    print(f"Simulated wall time: {metrics.simulated_seconds:.3f} s")


if __name__ == "__main__":
    main()
