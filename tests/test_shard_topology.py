"""Shard topology, registration validation, fingerprint, and config.

The layout's plumbing contracts, pinned at the unit level:

* ownership and :class:`ShardSet` wire codecs round-trip exactly — the
  layout travels the wire once, at registration, and never again;
* registration rejects layouts the Planner cannot route (malformed
  ownership, repeated names, members without a crossmatch endpoint);
* :meth:`ShardSet.layout_signature` is content-based — replica URL
  substitution is fingerprint-neutral, re-sharding is not — and
  ``execution_profile()`` folds it in so the semantic cache never
  serves one layout's bytes to another;
* ``FederationConfig`` validation refuses nonsense shard counts, bogus
  shard keys, and the shards+ingest combination (ownership is planned
  once at provisioning; live ingest would route new rows nowhere);
* the CLI exposes ``--shards`` / ``--shard-key``.
"""

import pytest

from repro.errors import ConfigurationError, PlanningError, RegistrationError
from repro.federation.builder import FederationConfig, build_federation
from repro.portal.registration import RegistrationService
from repro.shard import (
    HTMRangeOwnership,
    ZoneRangeOwnership,
    ownership_from_wire,
)
from repro.shard.topology import ShardMember, ShardSet


def _member(name="s1", *, ownership=None, endpoints=None):
    return ShardMember(
        name=name,
        ownership=ownership
        or ZoneRangeOwnership(zone_lo=0, zone_hi=100, htm_depth=8),
        endpoints=endpoints
        if endpoints is not None
        else (
            {
                "query": f"http://{name}.skyquery.net/q",
                "crossmatch": f"http://{name}.skyquery.net/x",
            },
        ),
    )


class TestWireCodecs:
    def test_zone_ownership_round_trip(self):
        own = ZoneRangeOwnership(
            zone_lo=12, zone_hi=340, zone_height_deg=0.1, htm_depth=9
        )
        assert ownership_from_wire(own.to_wire()) == own

    def test_htm_ownership_round_trip(self):
        own = HTMRangeOwnership(id_lo=8 << 16, id_hi=(9 << 16) - 1, htm_depth=8)
        assert ownership_from_wire(own.to_wire()) == own

    def test_unknown_ownership_kind_rejected(self):
        with pytest.raises(PlanningError):
            ownership_from_wire({"kind": "voronoi"})

    def test_shard_set_round_trip(self):
        original = ShardSet(
            members=(
                _member("a"),
                _member(
                    "b",
                    ownership=ZoneRangeOwnership(
                        zone_lo=101, zone_hi=1799, htm_depth=8
                    ),
                ),
            )
        )
        assert ShardSet.from_wire(original.to_wire()) == original

    def test_candidate_urls_preserve_order_and_skip_gaps(self):
        member = _member(
            "s1",
            endpoints=(
                {"query": "http://p/q", "crossmatch": "http://p/x"},
                {"query": "http://r1/q"},  # mirror without crossmatch
                {"query": "http://r2/q", "crossmatch": "http://r2/x"},
            ),
        )
        assert member.candidate_urls("query") == (
            "http://p/q", "http://r1/q", "http://r2/q",
        )
        assert member.candidate_urls("crossmatch") == (
            "http://p/x", "http://r2/x",
        )


class TestRegistrationValidation:
    def _wire(self, members):
        return ShardSet(members=tuple(members)).to_wire()

    def test_valid_layout_passes_through(self):
        wire = self._wire([_member("a")])
        assert RegistrationService._validate_shards("SDSS", wire) == wire

    def test_empty_layout_is_none(self):
        assert RegistrationService._validate_shards("SDSS", None) is None
        assert RegistrationService._validate_shards("SDSS", []) is None

    def test_mixed_ownership_kinds_rejected(self):
        wire = self._wire([
            _member("a"),
            _member(
                "b",
                ownership=HTMRangeOwnership(id_lo=0, id_hi=1, htm_depth=4),
            ),
        ])
        with pytest.raises(RegistrationError, match="malformed shard layout"):
            RegistrationService._validate_shards("SDSS", wire)

    def test_repeated_member_names_rejected(self):
        wire = self._wire([_member("a"), _member("a")])
        with pytest.raises(RegistrationError, match="repeats member names"):
            RegistrationService._validate_shards("SDSS", wire)

    def test_member_without_crossmatch_endpoint_rejected(self):
        wire = self._wire([
            _member("a", endpoints=({"query": "http://a/q"},))
        ])
        with pytest.raises(
            RegistrationError, match="no crossmatch endpoint"
        ):
            RegistrationService._validate_shards("SDSS", wire)

    def test_garbage_ownership_struct_rejected(self):
        wire = self._wire([_member("a")])
        del wire[0]["ownership"]["zone_lo"]
        with pytest.raises(RegistrationError, match="malformed shard layout"):
            RegistrationService._validate_shards("SDSS", wire)


class TestLayoutSignature:
    def test_signature_ignores_endpoint_urls(self):
        """Replica substitution (different URLs, same ownership) must not
        move the fingerprint — exactly like archive-level failover."""
        a = ShardSet(members=(_member("a"),))
        b = ShardSet(
            members=(
                _member(
                    "a",
                    endpoints=(
                        {"query": "http://other/q",
                         "crossmatch": "http://other/x"},
                        {"query": "http://mirror/q",
                         "crossmatch": "http://mirror/x"},
                    ),
                ),
            )
        )
        assert a.layout_signature() == b.layout_signature()

    def test_signature_tracks_ownership_bounds(self):
        a = ShardSet(members=(_member("a"),))
        b = ShardSet(
            members=(
                _member(
                    "a",
                    ownership=ZoneRangeOwnership(
                        zone_lo=0, zone_hi=99, htm_depth=8
                    ),
                ),
            )
        )
        assert a.layout_signature() != b.layout_signature()

    def test_profile_folds_layout_per_archive(self):
        mono = build_federation(FederationConfig(n_bodies=80, seed=7))
        sharded = build_federation(
            FederationConfig(n_bodies=80, seed=7, shards=2)
        )
        resharded = build_federation(
            FederationConfig(n_bodies=80, seed=7, shards=4)
        )
        mono_keys = dict(mono.portal.execution_profile())
        shard_profile = dict(sharded.portal.execution_profile())
        assert not any(k.startswith("shard_layout:") for k in mono_keys)
        for archive in sharded.nodes:
            assert f"shard_layout:{archive}" in shard_profile
        assert (
            sharded.portal.execution_profile()
            != resharded.portal.execution_profile()
        )

    def test_sharded_cache_exact_hit_stays_exact(self):
        """Two identical submissions on a sharded federation: the second
        is a zero-wire exact hit with the first's bytes."""
        fed = build_federation(
            FederationConfig(n_bodies=150, seed=9, shards=3, cache=True)
        )
        sql = (
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
        )
        first = fed.portal.submit(sql)
        second = fed.portal.submit(sql)
        assert fed.portal.cache.stats.hits == 1
        assert list(second.rows) == list(first.rows)
        assert dict(second.epochs) == dict(first.epochs)


class TestConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            build_federation(FederationConfig(n_bodies=10, shards=-1))

    def test_unknown_shard_key_rejected(self):
        with pytest.raises(ConfigurationError, match="shard_key"):
            build_federation(
                FederationConfig(n_bodies=10, shards=2, shard_key="voronoi")
            )

    def test_shards_with_ingest_rejected(self):
        with pytest.raises(ConfigurationError, match="ingest"):
            build_federation(
                FederationConfig(n_bodies=10, shards=2, ingest=True)
            )

    def test_single_shard_is_legal_and_sharded(self):
        """shards=1 still exercises the scatter-gather path: one member
        owning the whole sky."""
        fed = build_federation(FederationConfig(n_bodies=60, seed=3, shards=1))
        for archive in fed.nodes:
            record = fed.portal.catalog.node(archive)
            assert record.shard_set is not None
            assert len(record.shard_set.members) == 1
            assert len(fed.shards[archive]) == 1

    def test_shard_tables_partition_the_primary(self):
        """Disjoint union: shard row counts sum to the primary's table,
        and a shard+its mirror hold identical slices."""
        fed = build_federation(
            FederationConfig(n_bodies=120, seed=5, shards=4, replicas=1)
        )
        for archive, shard_nodes in fed.shards.items():
            primary = fed.nodes[archive]
            table = primary.info.primary_table
            total = sum(len(node.db.table(table)) for node in shard_nodes)
            assert total == len(primary.db.table(table))
            for index, shard_node in enumerate(shard_nodes, 1):
                mirrors = fed.shard_replicas[archive][f"{archive}-shard{index}"]
                assert mirrors
                for mirror in mirrors:
                    assert len(mirror.db.table(table)) == len(
                        shard_node.db.table(table)
                    )


class TestCLIFlags:
    def test_cli_accepts_shard_flags(self, capsys):
        from repro.cli import main

        code = main([
            "query",
            "SELECT O.object_id, T.obj_id FROM SDSS:Photo_Object O, "
            "TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5",
            "--bodies", "200", "--shards", "2", "--shard-key", "htm",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "object_id" in out or "rows" in out
