"""The zone-merge kernel against the scalar reference oracle.

Numpy-only (no scipy, no hypothesis) so the clean-install CI job can run
this suite after a bare ``pip install .`` — the zone engine is part of the
core package, not an optional extra.
"""

import random

import pytest

from repro.errors import GeometryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.units import arcsec_to_rad
from repro.xmatch.chi2 import Accumulator
from repro.xmatch.kernel import batch_dropout_step, batch_match_step
from repro.xmatch.stream import (
    dropout_step,
    in_memory_search,
    match_step,
    run_chain,
    seed_tuples,
)
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.xmatch.zone import ZoneObjects, zone_dropout_step, zone_match_step

#: Sky fields that stress the zone window math: an ordinary mid-sky field,
#: a field straddling RA 0/360, and fields hugging each celestial pole
#: (where the RA window must fall back to the full circle).
FIELDS = [
    (185.0, -0.5),
    (0.002, 0.0),
    (359.998, 10.0),
    (100.0, 89.995),
    (200.0, -89.995),
]


def make_sky(
    n_bodies=40,
    seed=0,
    sigmas=(0.1, 0.3, 1.0),
    detection=(1.0, 1.0, 1.0),
    center=(185.0, -0.5),
):
    rng = random.Random(seed)
    c = radec_to_vector(*center)
    bodies = [
        random_in_cap(rng, c, arcsec_to_rad(600.0)) for _ in range(n_bodies)
    ]
    archives = []
    for sigma_arcsec, rate in zip(sigmas, detection):
        objects = []
        for body_id, true in enumerate(bodies):
            if rng.random() >= rate:
                continue
            objects.append(
                LocalObject(
                    object_id=body_id,
                    position=perturb_gaussian(
                        rng, true, arcsec_to_rad(sigma_arcsec)
                    ),
                    attributes={"flux": float(body_id)},
                )
            )
        archives.append((objects, arcsec_to_rad(sigma_arcsec)))
    return archives


def assert_same_tuples(zone, scalar):
    """Same survivors in the same order with bitwise-equal accumulators."""
    assert [t.members for t in zone] == [t.members for t in scalar]
    assert [t.attributes for t in zone] == [t.attributes for t in scalar]
    for z, s in zip(zone, scalar):
        assert (z.acc.a, z.acc.ax, z.acc.ay, z.acc.az) == (
            s.acc.a, s.acc.ax, s.acc.ay, s.acc.az
        )


@pytest.mark.parametrize("center", FIELDS)
def test_zone_match_step_equals_scalar(center):
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(
        n_bodies=30, seed=1, center=center
    )
    tuples = seed_tuples("A", obj_a, sig_a)
    scalar = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    zone = zone_match_step(tuples, "B", ZoneObjects(obj_b), sig_b, 3.5)
    assert scalar  # the scenario actually matches something
    assert_same_tuples(zone, scalar)


def test_zone_match_step_equals_broadcast_kernel():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=30, seed=2)
    tuples = seed_tuples("A", obj_a, sig_a)
    batch = batch_match_step(tuples, "B", obj_b, sig_b, 3.5)
    zone = zone_match_step(tuples, "B", obj_b, sig_b, 3.5)
    assert batch
    assert_same_tuples(zone, batch)


def test_zone_match_step_accepts_plain_object_list():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=10, seed=3)
    tuples = seed_tuples("A", obj_a, sig_a)
    scalar = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    assert_same_tuples(
        zone_match_step(tuples, "B", obj_b, sig_b, 3.5), scalar
    )


@pytest.mark.parametrize("center", FIELDS)
def test_zone_dropout_step_equals_scalar(center):
    archives = make_sky(
        n_bodies=25, seed=4, detection=(1.0, 1.0, 0.5), center=center
    )
    (obj_a, sig_a), (obj_b, sig_b), (obj_c, sig_c) = archives
    tuples = match_step(
        seed_tuples("A", obj_a, sig_a), "B", in_memory_search(obj_b), sig_b, 3.5
    )
    scalar = dropout_step(tuples, in_memory_search(obj_c), sig_c, 3.5)
    zone = zone_dropout_step(tuples, ZoneObjects(obj_c), sig_c, 3.5)
    assert scalar
    assert_same_tuples(zone, scalar)
    batch = batch_dropout_step(tuples, obj_c, sig_c, 3.5)
    assert_same_tuples(zone, batch)


def test_zone_steps_with_empty_inputs():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=5, seed=5)
    tuples = seed_tuples("A", obj_a, sig_a)
    assert zone_match_step([], "B", obj_b, sig_b, 3.5) == []
    assert zone_match_step(tuples, "B", [], sig_b, 3.5) == []
    assert zone_dropout_step([], obj_b, sig_b, 3.5) == []
    # An empty drop-out archive excludes nothing.
    assert zone_dropout_step(tuples, [], sig_b, 3.5) == tuples


def test_zone_objects_reusable_across_steps():
    """Prebuilt ZoneObjects give the same answer as rebuild-per-call."""
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=20, seed=6)
    tuples = seed_tuples("A", obj_a, sig_a)
    zoned = ZoneObjects(obj_b)
    first = zone_match_step(tuples, "B", zoned, sig_b, 3.5)
    second = zone_match_step(tuples, "B", zoned, sig_b, 3.5)
    assert_same_tuples(first, second)
    assert_same_tuples(first, zone_match_step(tuples, "B", obj_b, sig_b, 3.5))


@pytest.mark.parametrize("center", FIELDS)
def test_run_chain_zone_engine_equals_scalar(center):
    archives = make_sky(
        n_bodies=35, seed=7, detection=(1.0, 0.9, 0.6), center=center
    )
    (obj_a, sig_a), (obj_b, sig_b), (obj_c, sig_c) = archives
    chain = [
        ("A", obj_a, sig_a, False),
        ("B", obj_b, sig_b, False),
        ("C", obj_c, sig_c, True),
    ]
    scalar = run_chain(chain, 3.5, engine="scalar")
    zone = run_chain(chain, 3.5, engine="zone")
    assert scalar
    assert_same_tuples(zone, scalar)


def test_run_chain_zone_engine_batched_is_equivalent():
    archives = make_sky(n_bodies=40, seed=8)
    chain = [
        (alias, objs, sigma, False)
        for alias, (objs, sigma) in zip("ABC", archives)
    ]
    whole = run_chain(chain, 3.5, engine="zone")
    batched = run_chain(chain, 3.5, engine="zone", batch_size=7)
    assert whole
    assert_same_tuples(batched, whole)


def test_run_chain_rejects_unknown_engine():
    (obj_a, sig_a), _, _ = make_sky(n_bodies=3, seed=9)
    with pytest.raises(ValueError, match="unknown xmatch engine"):
        run_chain([("A", obj_a, sig_a, False)], 3.5, engine="quadtree")


# ------------------------- S1: batch errors identify the offending tuple


def _bad_batch(obj, n_good=3):
    """A batch whose last tuple has an empty (degenerate) accumulator."""
    good = [
        PartialTuple(
            members=(("A", i),),
            acc=Accumulator.of_observation(obj.position, arcsec_to_rad(0.1)),
        )
        for i in range(n_good)
    ]
    bad = PartialTuple(members=(("A", 99),), acc=Accumulator.empty())
    return good + [bad]


@pytest.mark.parametrize("step", [zone_match_step, batch_match_step])
def test_batch_geometry_error_names_offending_tuple(step):
    """A degenerate accumulator is reported by batch index and members,
    not as an anonymous whole-batch failure."""
    (obj_a, _), (obj_b, sig_b), _ = make_sky(n_bodies=5, seed=10)
    tuples = _bad_batch(obj_a[0])
    with pytest.raises(GeometryError) as excinfo:
        step(tuples, "B", obj_b, sig_b, 3.5)
    message = str(excinfo.value)
    assert "tuple 3 of 4 in the batch" in message
    assert "members (('A', 99),)" in message


def test_batch_geometry_error_zero_vector_names_tuple():
    from repro.xmatch.kernel import best_positions
    import numpy as np

    a = np.asarray([1.0, 1.0])
    avec = np.asarray([[0.5, 0.5, 0.5], [0.0, 0.0, 0.0]])
    tuples = [
        PartialTuple(members=(("A", 7),), acc=Accumulator(a=1.0)),
        PartialTuple(members=(("A", 8),), acc=Accumulator(a=1.0)),
    ]
    with pytest.raises(GeometryError) as excinfo:
        best_positions(a, avec, tuples=tuples)
    message = str(excinfo.value)
    assert "cannot normalize a zero vector" in message
    assert "tuple 1 of 2 in the batch" in message
    assert "members (('A', 8),)" in message


def test_batch_geometry_error_without_tuples_still_has_index():
    from repro.xmatch.kernel import best_positions
    import numpy as np

    a = np.asarray([1.0, 0.0])
    avec = np.asarray([[0.5, 0.5, 0.5], [0.5, 0.5, 0.5]])
    with pytest.raises(GeometryError) as excinfo:
        best_positions(a, avec)
    message = str(excinfo.value)
    assert "tuple 1 of 2 in the batch" in message
    assert "members" not in message
