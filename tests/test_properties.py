"""Property-based tests (hypothesis) on the core invariants."""

import math

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.htm.cover import cover
from repro.htm.index import id_for_point
from repro.htm.mesh import depth_of_id, id_to_name, name_to_id
from repro.htm.ranges import HTMRanges
from repro.soap.encoding import WireRowSet, decode_binary_rowset, decode_value, \
    encode_binary_rowset, encode_value
from repro.soap.xmlparser import parse_xml
from repro.soap.xmlwriter import render
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.distance import angular_separation
from repro.sphere.regions import Cap
from repro.units import arcsec_to_rad
from repro.xmatch.chi2 import Accumulator

ra_strategy = st.floats(min_value=0.0, max_value=359.999999, allow_nan=False)
dec_strategy = st.floats(min_value=-89.999, max_value=89.999, allow_nan=False)


@given(ra=ra_strategy, dec=dec_strategy)
def test_radec_vector_roundtrip(ra, dec):
    back_ra, back_dec = vector_to_radec(radec_to_vector(ra, dec))
    # Angular distance between original and roundtripped position ~ 0.
    sep = angular_separation(
        radec_to_vector(ra, dec), radec_to_vector(back_ra, back_dec)
    )
    assert sep < 1e-9


@given(ra=ra_strategy, dec=dec_strategy, depth=st.integers(0, 14))
def test_htm_point_inside_own_trixel(ra, dec, depth):
    from repro.htm.mesh import trixel_by_id

    v = radec_to_vector(ra, dec)
    hid = id_for_point(v, depth)
    assert depth_of_id(hid) == depth
    assert trixel_by_id(hid).contains(v)


@given(ra=ra_strategy, dec=dec_strategy, depth=st.integers(0, 12))
def test_htm_name_roundtrip(ra, dec, depth):
    hid = id_for_point(radec_to_vector(ra, dec), depth)
    assert name_to_id(id_to_name(hid)) == hid


@given(
    ranges=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=20
    ),
    probe=st.integers(0, 1000),
)
def test_htm_ranges_membership_matches_naive(ranges, probe):
    rset = HTMRanges(ranges)
    naive = any(lo <= probe <= hi for lo, hi in ranges if lo <= hi)
    assert rset.contains(probe) == naive


@given(
    a=st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)), max_size=10),
    b=st.lists(st.tuples(st.integers(0, 500), st.integers(0, 500)), max_size=10),
    probe=st.integers(0, 500),
)
def test_htm_ranges_union_is_set_union(a, b, probe):
    ra, rb = HTMRanges(a), HTMRanges(b)
    assert ra.union(rb).contains(probe) == (ra.contains(probe) or rb.contains(probe))


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    ra=ra_strategy,
    dec=st.floats(min_value=-85.0, max_value=85.0, allow_nan=False),
    radius=st.floats(min_value=1.0, max_value=7200.0, allow_nan=False),
    probe_ra=ra_strategy,
    probe_dec=dec_strategy,
    depth=st.integers(2, 10),
)
def test_cover_never_loses_points(ra, dec, radius, probe_ra, probe_dec, depth):
    cap = Cap.from_radec(ra, dec, radius)
    probe = radec_to_vector(probe_ra, probe_dec)
    result = cover(cap, depth)
    hid = id_for_point(probe, depth)
    if cap.contains(probe):
        assert result.full.contains(hid) or result.partial.contains(hid)
    if result.full.contains(hid):
        assert cap.contains(probe)


scalar_strategy = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)


@given(value=scalar_strategy)
def test_soap_scalar_roundtrip(value):
    back = decode_value(parse_xml(render(encode_value("v", value))))
    assert back == value
    assert type(back) is type(value)


@given(
    value=st.recursive(
        scalar_strategy,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(
                st.text(
                    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                    min_size=1,
                    max_size=8,
                ),
                children,
                max_size=4,
            ),
        ),
        max_leaves=12,
    )
)
def test_soap_nested_roundtrip(value):
    back = decode_value(parse_xml(render(encode_value("v", value))))
    if isinstance(value, tuple):
        value = list(value)
    assert back == value


row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(min_value=-(2**50), max_value=2**50)),
    st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)),
    st.one_of(st.none(), st.text(max_size=30)),
    st.one_of(st.none(), st.booleans()),
)


@given(rows=st.lists(row_strategy, max_size=15))
def test_rowset_xml_roundtrip(rows):
    rowset = WireRowSet(
        [("i", "int"), ("d", "double"), ("s", "string"), ("b", "boolean")],
        rows,
    )
    back = decode_value(parse_xml(render(encode_value("v", rowset))))
    assert back.columns == rowset.columns
    assert back.rows == rowset.rows


@given(rows=st.lists(row_strategy, max_size=15))
def test_rowset_binary_roundtrip(rows):
    rowset = WireRowSet(
        [("i", "int"), ("d", "double"), ("s", "string"), ("b", "boolean")],
        rows,
    )
    back = decode_binary_rowset(encode_binary_rowset(rowset))
    assert back.columns == rowset.columns
    assert back.rows == rowset.rows


@given(text=st.text(max_size=200))
def test_xml_text_roundtrip(text):
    from repro.soap.xmlwriter import Element

    assume("\r" not in text)  # XML parsers normalize CR; ours keeps LF only
    el = Element("t", text=text)
    parsed = parse_xml(render(el))
    assert parsed.text == text


@settings(max_examples=50)
@given(
    observations=st.lists(
        st.tuples(ra_strategy, dec_strategy, st.floats(0.05, 5.0)),
        min_size=1,
        max_size=6,
    )
)
def test_chi2_nonnegative_and_permutation_invariant(observations):
    import itertools

    def accumulate(order):
        acc = Accumulator.empty()
        for ra, dec, sigma in order:
            acc = acc.with_observation(
                radec_to_vector(ra, dec), arcsec_to_rad(sigma)
            )
        return acc

    forward = accumulate(observations)
    assert forward.chi2() >= 0.0
    reverse = accumulate(list(reversed(observations)))
    scale = max(1.0, forward.acc_scale if hasattr(forward, "acc_scale") else forward.a)
    # Permutation invariance up to the documented cancellation bound.
    assert math.isclose(
        forward.chi2(), reverse.chi2(),
        rel_tol=1e-6, abs_tol=1e-4 * max(1.0, forward.a / 1e10),
    )


@given(
    sql_ident=st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True),
    number=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)
def test_sql_expression_print_parse_fixpoint(sql_ident, number):
    from repro.sql.lexer import KEYWORDS
    from repro.sql.parser import parse_expression
    from repro.sql.printer import to_sql

    assume(sql_ident.upper() not in KEYWORDS)
    text = f"{sql_ident} + {number!r} > 2"
    expr = parse_expression(text)
    assert parse_expression(to_sql(expr)) == expr
