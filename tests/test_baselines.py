"""Baselines: pull-to-portal mediator."""

import pytest

from repro.baselines.pull_mediator import PullMediator

PAPER_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
    "AND O.type = GALAXY"
)


def test_pull_matches_chain_results(small_federation):
    chain = small_federation.client().submit(PAPER_SQL)
    pull = PullMediator(small_federation.portal).execute(PAPER_SQL)
    assert sorted(chain.rows) == sorted(pull.rows)
    assert chain.columns == pull.columns


def test_pull_matches_chain_on_dropout(small_federation):
    sql = PAPER_SQL.replace("XMATCH(O, T, P)", "XMATCH(O, T, !P)")
    chain = small_federation.client().submit(sql)
    pull = PullMediator(small_federation.portal).execute(sql)
    assert sorted(chain.rows) == sorted(pull.rows)


def test_pull_applies_cross_conjuncts(small_federation):
    sql = PAPER_SQL + " AND O.i_flux - T.i_flux > 2"
    pull = PullMediator(small_federation.portal).execute(sql)
    chain = small_federation.client().submit(sql)
    assert sorted(chain.rows) == sorted(pull.rows)


def test_pull_traffic_tagged(small_federation):
    small_federation.network.metrics.reset()
    PullMediator(small_federation.portal).execute(PAPER_SQL)
    metrics = small_federation.network.metrics
    assert metrics.total_bytes(phase="pull-mediator") > 0
    # One ExecuteQuery round trip per archive in the XMATCH clause.
    assert metrics.message_count(phase="pull-mediator") == 6


def test_pull_ships_more_for_unselective_queries(small_federation):
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T) < 3.5"
    )
    metrics = small_federation.network.metrics
    metrics.reset()
    small_federation.client().submit(sql)
    chain_bytes = metrics.total_bytes(phase="crossmatch-chain")
    metrics.reset()
    PullMediator(small_federation.portal).execute(sql)
    pull_bytes = metrics.total_bytes(phase="pull-mediator")
    # Over the whole survey footprint, pulling both archives wholesale
    # costs more than chaining the surviving tuples.
    assert pull_bytes > chain_bytes * 0.5  # shapes vary; pull is never tiny


def test_pull_respects_limit(small_federation):
    pull = PullMediator(small_federation.portal).execute(PAPER_SQL + " LIMIT 2")
    assert len(pull.rows) == 2
