"""The chi-squared accumulator math."""

import math

import pytest

from repro.errors import GeometryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import perturb_gaussian
from repro.units import arcsec_to_rad
from repro.xmatch.chi2 import Accumulator


def test_empty_accumulator():
    acc = Accumulator.empty()
    assert acc.a == 0.0
    with pytest.raises(GeometryError):
        acc.best_position()
    with pytest.raises(GeometryError):
        acc.effective_sigma()


def test_single_observation_perfect_fit():
    v = radec_to_vector(185.0, -0.5)
    acc = Accumulator.of_observation(v, arcsec_to_rad(0.1))
    assert acc.chi2() == pytest.approx(0.0, abs=1e-3)
    assert acc.best_position() == pytest.approx(v)


def test_sigma_must_be_positive():
    v = radec_to_vector(0.0, 0.0)
    with pytest.raises(GeometryError):
        Accumulator.empty().with_observation(v, 0.0)
    with pytest.raises(GeometryError):
        Accumulator.empty().with_observation(v, -1.0)


def test_two_equal_sigma_observations_chi2():
    # Two observations separated by d with equal sigma: chi2 = d^2/(2 sigma^2).
    sigma = arcsec_to_rad(1.0)
    d_arcsec = 2.0
    a = radec_to_vector(185.0, 0.0)
    b = radec_to_vector(185.0, d_arcsec / 3600.0)
    acc = Accumulator.of_observation(a, sigma).with_observation(b, sigma)
    expected = (arcsec_to_rad(d_arcsec) ** 2) / (2 * sigma**2)
    # abs tolerance per the documented cancellation bound in chi2.py
    assert acc.chi2() == pytest.approx(expected, abs=1e-3)


def test_best_position_weighted_mean():
    # Much tighter sigma pulls the best position toward its observation.
    a = radec_to_vector(185.0, 0.0)
    b = radec_to_vector(185.0, 10.0 / 3600.0)
    acc = Accumulator.of_observation(a, arcsec_to_rad(0.1)).with_observation(
        b, arcsec_to_rad(10.0)
    )
    from repro.sphere.distance import separation_arcsec

    assert separation_arcsec(acc.best_position(), a) < 0.1


def test_log_likelihood_is_minus_half_chi2():
    sigma = arcsec_to_rad(1.0)
    a = radec_to_vector(185.0, 0.0)
    b = radec_to_vector(185.0, 1.5 / 3600.0)
    acc = Accumulator.of_observation(a, sigma).with_observation(b, sigma)
    assert acc.log_likelihood() == pytest.approx(-acc.chi2() / 2.0, rel=1e-9)


def test_accepts_thresholds():
    sigma = arcsec_to_rad(1.0)
    a = radec_to_vector(185.0, 0.0)
    b = radec_to_vector(185.0, 2.0 / 3600.0)  # chi2 = 2.0
    acc = Accumulator.of_observation(a, sigma).with_observation(b, sigma)
    assert acc.accepts(3.5)
    assert acc.accepts(math.sqrt(2.01))  # just above the boundary
    assert not acc.accepts(1.0)


def test_effective_sigma_shrinks_with_observations():
    v = radec_to_vector(185.0, -0.5)
    sigma = arcsec_to_rad(1.0)
    one = Accumulator.of_observation(v, sigma)
    two = one.with_observation(v, sigma)
    assert two.effective_sigma() == pytest.approx(
        one.effective_sigma() / math.sqrt(2.0)
    )


def test_search_radius_superset_bound():
    """Any observation that keeps the tuple alive must be inside the
    search radius around the current best position."""
    import random

    rng = random.Random(5)
    sigma1 = arcsec_to_rad(0.5)
    sigma2 = arcsec_to_rad(1.5)
    threshold = 3.5
    true = radec_to_vector(185.0, -0.5)
    for _ in range(200):
        acc = Accumulator.of_observation(
            perturb_gaussian(rng, true, sigma1), sigma1
        )
        candidate = perturb_gaussian(rng, true, sigma2 * 2.0)
        extended = acc.with_observation(candidate, sigma2)
        if extended.accepts(threshold):
            from repro.sphere.distance import angular_separation

            separation = angular_separation(acc.best_position(), candidate)
            assert separation <= acc.search_radius(sigma2, threshold) + 1e-12


def test_search_radius_whole_sky_when_empty():
    assert Accumulator.empty().search_radius(1e-6, 3.5) == math.pi


def test_accumulator_immutable():
    acc = Accumulator.empty()
    extended = acc.with_observation(radec_to_vector(0.0, 0.0), 1e-6)
    assert acc.a == 0.0
    assert extended.a > 0.0


def test_order_independence_of_accumulation():
    sigma = [arcsec_to_rad(s) for s in (0.1, 0.5, 1.0)]
    points = [
        radec_to_vector(185.0, 0.0),
        radec_to_vector(185.0001, 0.0001),
        radec_to_vector(184.9999, -0.0001),
    ]
    forward = Accumulator.empty()
    for p, s in zip(points, sigma):
        forward = forward.with_observation(p, s)
    backward = Accumulator.empty()
    for p, s in zip(reversed(points), reversed(sigma)):
        backward = backward.with_observation(p, s)
    # abs tolerance: the 0.1-arcsec archive's 1/sigma^2 weight is ~4e12,
    # so the cumulative-value cancellation bound is ~1e-2 here.
    assert forward.chi2() == pytest.approx(backward.chi2(), abs=0.05)
    assert forward.best_position() == pytest.approx(backward.best_position())
