"""The archive database engine."""

import random

import pytest

from repro.db.engine import Database, ResultSet
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import QueryError, SchemaError
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.distance import angular_separation
from repro.sphere.random import random_in_cap
from repro.units import arcsec_to_rad


@pytest.fixture()
def db():
    database = Database("sdss", page_size=8, buffer_pages=64)
    database.create_table(
        "Photo_Object",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
            Column("type", ColumnType.STRING),
            Column("i_flux", ColumnType.FLOAT),
        ],
        spatial=SpatialSpec("ra", "dec", htm_depth=10),
    )
    rng = random.Random(7)
    center = radec_to_vector(185.0, -0.5)
    rows = []
    for i in range(300):
        ra, dec = vector_to_radec(random_in_cap(rng, center, 0.01))
        rows.append((i, ra, dec, "GALAXY" if i % 3 else "STAR", 10.0 + i % 10))
    database.insert("Photo_Object", rows)
    database._test_rows = rows  # for brute-force comparison
    return database


def test_count_star(db):
    result = db.execute("SELECT count(*) FROM Photo_Object o")
    assert result.scalar() == 300


def test_count_star_with_predicate(db):
    result = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE o.type = 'STAR'"
    )
    assert result.scalar() == 100


def test_projection_and_aliases(db):
    result = db.execute(
        "SELECT o.object_id, o.i_flux AS flux FROM Photo_Object o LIMIT 3"
    )
    assert result.columns == ["o.object_id", "flux"]
    assert len(result) == 3


def test_star_projection(db):
    result = db.execute("SELECT * FROM Photo_Object o LIMIT 1")
    assert result.columns == ["object_id", "ra", "dec", "type", "i_flux"]


def test_expression_projection(db):
    result = db.execute("SELECT o.i_flux + 1 AS up FROM Photo_Object o LIMIT 1")
    assert result.rows[0][0] == pytest.approx(db._test_rows[0][4] + 1)


def test_limit(db):
    result = db.execute("SELECT o.object_id FROM Photo_Object o LIMIT 5")
    assert len(result) == 5


def test_area_query_matches_brute_force(db):
    radius = 900.0
    result = db.execute(
        f"SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, {radius})"
    )
    center = radec_to_vector(185.0, -0.5)
    brute = sum(
        1
        for row in db._test_rows
        if angular_separation(radec_to_vector(row[1], row[2]), center)
        <= arcsec_to_rad(radius)
    )
    assert result.scalar() == brute


def test_area_with_index_examines_fewer_rows(db):
    result = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, 300.0)"
    )
    assert result.stats.used_spatial_index
    assert result.stats.rows_examined < 300


def test_full_scan_when_index_disabled(db):
    db.use_spatial_index = False
    result = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, 300.0)"
    )
    assert not result.stats.used_spatial_index
    assert result.stats.rows_examined == 300
    db.use_spatial_index = True
    indexed = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, 300.0)"
    )
    assert indexed.scalar() == result.scalar()


def test_stats_buffer_accounting(db):
    db.buffer.clear()
    db.buffer.reset_stats()
    first = db.execute("SELECT count(*) FROM Photo_Object o")
    assert first.stats.physical_reads > 0
    second = db.execute("SELECT count(*) FROM Photo_Object o")
    assert second.stats.physical_reads == 0
    assert second.stats.logical_reads == first.stats.logical_reads


def test_multi_table_rejected(db):
    with pytest.raises(QueryError):
        db.execute("SELECT a.x FROM t1 a, t2 b")


def test_xmatch_rejected_at_engine(db):
    with pytest.raises(QueryError):
        db.execute(
            "SELECT o.object_id FROM Photo_Object o "
            "WHERE XMATCH(o, o) < 3.5"
        )


def test_unknown_table(db):
    with pytest.raises(SchemaError):
        db.execute("SELECT x.a FROM Nope x")


def test_area_on_non_spatial_table():
    db = Database("d")
    db.create_table("t", [Column("a", ColumnType.INT)])
    db.insert("t", [(1,)])
    with pytest.raises(QueryError):
        db.execute("SELECT t.a FROM t WHERE AREA(0.0, 0.0, 10.0)")


def test_temp_table_lifecycle():
    db = Database("d")
    temp = db.create_temp_table("xm", [Column("seq", ColumnType.INT)])
    assert db.has_table(temp.name)
    assert temp.temporary
    assert temp.name not in db.table_names()  # hidden from catalog
    db.drop_table(temp.name)
    assert not db.has_table(temp.name)


def test_temp_table_names_unique():
    db = Database("d")
    t1 = db.create_temp_table("xm", [Column("a", ColumnType.INT)])
    t2 = db.create_temp_table("xm", [Column("a", ColumnType.INT)])
    assert t1.name != t2.name


def test_duplicate_table_rejected(db):
    with pytest.raises(SchemaError):
        db.create_table("Photo_Object", [Column("a", ColumnType.INT)])


def test_drop_missing_table():
    with pytest.raises(SchemaError):
        Database("d").drop_table("nope")


def test_procedures():
    db = Database("d")
    db.register_procedure("double", lambda _db, value: value * 2)
    assert db.call_procedure("double", value=21) == 42
    assert db.has_procedure("DOUBLE")
    with pytest.raises(SchemaError):
        db.register_procedure("double", lambda _db: None)
    with pytest.raises(QueryError):
        db.call_procedure("nope")


def test_scalar_requires_1x1(db):
    result = db.execute("SELECT o.object_id FROM Photo_Object o LIMIT 2")
    with pytest.raises(QueryError):
        result.scalar()


def test_to_dicts(db):
    result = db.execute("SELECT o.object_id FROM Photo_Object o LIMIT 2")
    dicts = result.to_dicts()
    assert dicts[0]["o.object_id"] == 0


def test_named_constant_in_query(db):
    quoted = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE o.type = 'GALAXY'"
    ).scalar()
    constant = db.execute(
        "SELECT count(*) FROM Photo_Object o WHERE o.type = GALAXY"
    ).scalar()
    assert quoted == constant == 200
