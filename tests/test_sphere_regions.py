"""Spherical regions: caps and convex polygons."""

import math
import random

import pytest

from repro.errors import GeometryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import random_in_cap, random_on_sphere
from repro.sphere.regions import Cap, ConvexPolygon, TrixelRelation


class TestCap:
    def test_contains_center(self):
        cap = Cap.from_radec(185.0, -0.5, 4.5)
        assert cap.contains(radec_to_vector(185.0, -0.5))

    def test_contains_point_just_inside(self):
        cap = Cap.from_radec(185.0, 0.0, 10.0)
        assert cap.contains(radec_to_vector(185.0, 9.9 / 3600.0))

    def test_excludes_point_just_outside(self):
        cap = Cap.from_radec(185.0, 0.0, 10.0)
        assert not cap.contains(radec_to_vector(185.0, 10.5 / 3600.0))

    def test_negative_radius_rejected(self):
        with pytest.raises(GeometryError):
            Cap.from_radec(0.0, 0.0, -1.0)

    def test_radius_beyond_pi_rejected(self):
        with pytest.raises(GeometryError):
            Cap(radec_to_vector(0.0, 0.0), math.pi + 0.1)

    def test_whole_sphere_cap(self):
        cap = Cap(radec_to_vector(0.0, 0.0), math.pi)
        rng = random.Random(1)
        assert all(cap.contains(random_on_sphere(rng)) for _ in range(50))

    def test_center_normalized(self):
        cap = Cap((2.0, 0.0, 0.0), 0.1)
        assert cap.center == pytest.approx((1.0, 0.0, 0.0))

    def test_classify_triangle_far_away(self):
        cap = Cap.from_radec(0.0, 0.0, 10.0)
        corners = [
            radec_to_vector(180.0, 10.0),
            radec_to_vector(182.0, 10.0),
            radec_to_vector(181.0, 12.0),
        ]
        assert cap.classify_triangle(corners) is TrixelRelation.OUTSIDE

    def test_classify_triangle_containing_cap(self):
        # Tiny cap strictly inside a big triangle: must be PARTIAL, not OUTSIDE.
        cap = Cap.from_radec(45.0, 45.0, 1.0)
        corners = [
            radec_to_vector(0.0, 0.0),
            radec_to_vector(90.0, 0.0),
            radec_to_vector(45.0, 89.0),
        ]
        assert cap.classify_triangle(corners) is TrixelRelation.PARTIAL

    def test_classify_triangle_inside_cap(self):
        cap = Cap.from_radec(45.0, 45.0, 36000.0)  # 10 degrees
        corners = [
            radec_to_vector(45.0, 45.0),
            radec_to_vector(45.5, 45.0),
            radec_to_vector(45.25, 45.4),
        ]
        assert cap.classify_triangle(corners) is TrixelRelation.INSIDE

    def test_classify_triangle_straddling(self):
        cap = Cap.from_radec(45.0, 45.0, 3600.0)
        corners = [
            radec_to_vector(45.0, 45.0),  # inside
            radec_to_vector(50.0, 45.0),  # outside
            radec_to_vector(47.0, 48.0),  # outside
        ]
        assert cap.classify_triangle(corners) is TrixelRelation.PARTIAL

    def test_cap_poking_through_edge(self):
        # Cap centered just outside an edge but overlapping it.
        cap = Cap.from_radec(45.0, 0.05, 600.0)  # center north of the edge
        corners = [
            radec_to_vector(44.0, 0.0),
            radec_to_vector(46.0, 0.0),
            radec_to_vector(45.0, -2.0),
        ]
        assert cap.classify_triangle(corners) is not TrixelRelation.OUTSIDE

    def test_bounding_cap_is_self(self):
        cap = Cap.from_radec(1.0, 2.0, 3.0)
        assert cap.bounding_cap() is cap


class TestConvexPolygon:
    def _square(self):
        return ConvexPolygon.from_radec(
            [(10.0, 10.0), (20.0, 10.0), (20.0, 20.0), (10.0, 20.0)]
        )

    def test_contains_centroid(self):
        poly = self._square()
        assert poly.contains(radec_to_vector(15.0, 15.0))

    def test_excludes_outside_point(self):
        poly = self._square()
        assert not poly.contains(radec_to_vector(30.0, 15.0))

    def test_too_few_vertices(self):
        with pytest.raises(GeometryError):
            ConvexPolygon.from_radec([(0.0, 0.0), (1.0, 1.0)])

    def test_wrong_winding_rejected(self):
        with pytest.raises(GeometryError):
            ConvexPolygon.from_radec(
                [(10.0, 20.0), (20.0, 20.0), (20.0, 10.0), (10.0, 10.0)]
            )

    def test_bounding_cap_contains_vertices(self):
        poly = self._square()
        bound = poly.bounding_cap()
        assert all(bound.contains(v) for v in poly.vertices)

    def test_classify_triangle_inside(self):
        poly = self._square()
        corners = [
            radec_to_vector(14.0, 14.0),
            radec_to_vector(16.0, 14.0),
            radec_to_vector(15.0, 16.0),
        ]
        assert poly.classify_triangle(corners) is TrixelRelation.INSIDE

    def test_classify_triangle_outside(self):
        poly = self._square()
        corners = [
            radec_to_vector(180.0, -40.0),
            radec_to_vector(182.0, -40.0),
            radec_to_vector(181.0, -42.0),
        ]
        assert poly.classify_triangle(corners) is TrixelRelation.OUTSIDE

    def test_membership_against_sampling(self):
        poly = self._square()
        rng = random.Random(5)
        center = radec_to_vector(15.0, 15.0)
        for _ in range(300):
            p = random_in_cap(rng, center, math.radians(10.0))
            from repro.sphere.coords import vector_to_radec

            ra, dec = vector_to_radec(p)
            manual = 10.0 <= ra <= 20.0 and 10.0 <= dec <= 20.0
            # Spherical quadrilateral edges are great circles, not
            # iso-latitude lines, so allow disagreement near the boundary.
            near_edge = (
                min(abs(ra - 10), abs(ra - 20)) < 0.2
                or min(abs(dec - 10), abs(dec - 20)) < 0.2
            )
            if not near_edge:
                assert poly.contains(p) == manual
