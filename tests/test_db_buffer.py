"""The simulated buffer pool."""

import pytest

from repro.db.buffer import BufferPool


def test_first_access_is_miss():
    pool = BufferPool(4)
    assert pool.access("t", 0) is False
    assert pool.stats.physical_reads == 1
    assert pool.stats.logical_reads == 1


def test_second_access_is_hit():
    pool = BufferPool(4)
    pool.access("t", 0)
    assert pool.access("t", 0) is True
    assert pool.stats.physical_reads == 1
    assert pool.stats.logical_reads == 2


def test_lru_eviction():
    pool = BufferPool(2)
    pool.access("t", 0)
    pool.access("t", 1)
    pool.access("t", 2)  # evicts page 0
    assert pool.stats.evictions == 1
    assert pool.access("t", 0) is False  # miss again


def test_lru_touch_order():
    pool = BufferPool(2)
    pool.access("t", 0)
    pool.access("t", 1)
    pool.access("t", 0)  # 0 becomes most recent
    pool.access("t", 2)  # evicts 1, not 0
    assert pool.access("t", 0) is True
    assert pool.access("t", 1) is False


def test_tables_are_distinct():
    pool = BufferPool(4)
    pool.access("a", 0)
    assert pool.access("b", 0) is False


def test_invalidate_table():
    pool = BufferPool(8)
    pool.access("a", 0)
    pool.access("b", 0)
    pool.invalidate_table("a")
    assert pool.access("a", 0) is False
    assert pool.access("b", 0) is True


def test_clear_keeps_counters():
    pool = BufferPool(4)
    pool.access("t", 0)
    pool.clear()
    assert pool.resident_pages == 0
    assert pool.stats.physical_reads == 1


def test_reset_stats_keeps_pages():
    pool = BufferPool(4)
    pool.access("t", 0)
    pool.reset_stats()
    assert pool.stats.logical_reads == 0
    assert pool.access("t", 0) is True


def test_hit_ratio():
    pool = BufferPool(4)
    assert pool.stats.hit_ratio == 0.0
    pool.access("t", 0)
    pool.access("t", 0)
    pool.access("t", 0)
    assert pool.stats.hit_ratio == pytest.approx(2 / 3)


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferPool(0)
