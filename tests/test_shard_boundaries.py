"""Boundary correctness: ownership edges, straddling circles, RA wrap.

Sharding partitions the sky; the dangerous rows live exactly on the
partition edges. These tests pin the three edge contracts:

* **Exactly-one-owner.** Ownership planning covers the *entire* key
  space with inclusive, non-overlapping ranges — a body whose
  declination sits exactly on a zone cut, or whose HTM id is exactly a
  shard's ``id_lo``/``id_hi``, has exactly one owner. Two owners would
  duplicate pairs; zero would drop them.
* **Straddling circles.** A query AREA centered exactly on a shard
  boundary fans out to 2+ shards and still merges to the monolithic
  bytes — no pair duplicated at the seam, none lost.
* **RA 0/360 wrap.** Zone and HTM ownership key on declination and
  trixel id respectively, so a field wrapping the RA origin must shard
  as cleanly as any other; the gathered result stays byte-identical.
"""

import os

from repro.federation.builder import FederationConfig, build_federation
from repro.htm.index import id_for_point
from repro.services.retry import RetryPolicy
from repro.shard import (
    HTMRangeOwnership,
    ZoneRangeOwnership,
    merge_match_lists,
    merge_seed_rows,
    plan_htm_ownership,
    plan_zone_ownership,
    prune_members,
)
from repro.shard.topology import ShardMember, ShardSet
from repro.sphere.coords import radec_to_vector
from repro.sql.ast import AreaClause
from repro.workloads.skysim import SkyField
from repro.zone.index import DEFAULT_ZONE_HEIGHT_DEG, zone_count, zone_of

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))


def _build(center_ra, center_dec, *, shards=0, shard_key="zone", seed=23):
    return build_federation(
        FederationConfig(
            n_bodies=260,
            seed=seed,
            sky_field=SkyField(center_ra, center_dec, 1800.0),
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=seed + CHAOS_SEED,
            ),
            shards=shards,
            shard_key=shard_key,
        )
    )


def _xmatch_sql(ra, dec, radius_arcsec=900.0):
    return (
        "SELECT O.object_id, O.ra, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        f"WHERE AREA({ra}, {dec}, {radius_arcsec}) AND XMATCH(O, T) < 3.5"
    )


def _owners(ownerships, dec, hid):
    return [own for own in ownerships if own.owns(dec, hid)]


class TestExactlyOneOwner:
    def test_zone_cut_boundaries_have_one_owner(self):
        """A declination exactly on a zone cut belongs to the shard whose
        range *starts* there — never to both neighbours, never to none."""
        decs = [-1.4 + i * 0.011 for i in range(200)]
        ownerships = plan_zone_ownership(decs, 4, htm_depth=8)
        h = ownerships[0].zone_height_deg
        for left, right in zip(ownerships, ownerships[1:]):
            if right.empty:
                continue
            boundary_dec = right.zone_lo * h - 90.0
            owners = _owners(ownerships, boundary_dec, 0)
            assert owners == [right]
            # A hair below the cut still belongs to the left neighbour.
            below = boundary_dec - h / 4.0
            if not left.empty and left.owns(below, 0):
                assert _owners(ownerships, below, 0) == [left]

    def test_zone_space_fully_covered_at_poles(self):
        ownerships = plan_zone_ownership([-0.5, 0.5], 3)
        for dec in (-90.0, 90.0, -89.999, 89.999, 0.0):
            assert len(_owners(ownerships, dec, 0)) == 1
        assert ownerships[0].zone_lo == 0
        assert ownerships[-1].zone_hi == zone_count(DEFAULT_ZONE_HEIGHT_DEG) - 1

    def test_htm_interval_endpoints_have_one_owner(self):
        depth = 8
        hids = [
            id_for_point(radec_to_vector(ra, dec), depth)
            for ra in (0.0, 90.0, 185.0, 275.0, 359.9)
            for dec in (-45.0, -0.5, 0.5, 45.0)
        ]
        ownerships = plan_htm_ownership(hids, 4, depth)
        assert ownerships[0].id_lo == 8 << (2 * depth)
        assert ownerships[-1].id_hi == (16 << (2 * depth)) - 1
        for own in ownerships:
            if own.empty:
                continue
            for hid in (own.id_lo, own.id_hi):
                assert len(_owners(ownerships, 0.0, hid)) == 1
        # The id just past a shard's id_hi starts the next non-empty shard.
        non_empty = [o for o in ownerships if not o.empty]
        for left, right in zip(non_empty, non_empty[1:]):
            assert right.id_lo == left.id_hi + 1
            assert _owners(ownerships, 0.0, left.id_hi + 1) == [right]

    def test_htm_cuts_align_to_coarse_trixels(self):
        depth = 8
        hids = list(range(8 << (2 * depth), (8 << (2 * depth)) + 5000, 7))
        ownerships = plan_htm_ownership(hids, 4, depth)
        block = 1 << (2 * 3)  # align_depth = depth - 3 -> 64-id blocks
        for own in ownerships[1:]:
            if not own.empty:
                assert own.id_lo % block == 0


class TestStraddlingCircles:
    def _boundary_dec(self, fed, archive="SDSS"):
        members = fed.portal.catalog.node(archive).shard_set.members
        non_empty = [m for m in members if not m.ownership.empty]
        assert len(non_empty) >= 2, "need a real partition to straddle"
        # The seam between the first two populated shards.
        return non_empty[1].ownership.dec_interval()[0]

    def test_circle_on_zone_seam_matches_monolithic(self):
        """Center the AREA exactly on a shard boundary: 2+ shards answer,
        the merge drops nothing and duplicates nothing."""
        sharded_fed = _build(185.0, -0.5, shards=4, shard_key="zone")
        boundary = self._boundary_dec(sharded_fed)
        sql = _xmatch_sql(185.0, boundary)
        mono = _build(185.0, -0.5).portal.submit(sql)
        sharded = sharded_fed.portal.submit(sql)
        record = sharded_fed.portal.catalog.node("SDSS")
        area = AreaClause(
            ra_deg=185.0, dec_deg=boundary, radius_arcsec=900.0
        )
        assert len(prune_members(record.shard_set.members, area)) >= 2
        assert list(sharded.rows) == list(mono.rows)
        assert sharded.rows, "a seam query must still find pairs"
        assert len(set(sharded.rows)) == len(sharded.rows)
        assert list(sharded.warnings) == list(mono.warnings)

    def test_circle_spanning_every_shard(self):
        """A radius wider than the whole field touches every populated
        shard and still merges to the oracle bytes."""
        for shard_key in ("zone", "htm"):
            sharded_fed = _build(185.0, -0.5, shards=4, shard_key=shard_key)
            sql = _xmatch_sql(185.0, -0.5, radius_arcsec=7200.0)
            mono = _build(185.0, -0.5).portal.submit(sql)
            sharded = sharded_fed.portal.submit(sql)
            assert list(sharded.rows) == list(mono.rows), shard_key
            assert sharded.rows, shard_key
            assert len(set(sharded.rows)) == len(sharded.rows), shard_key


class TestRAWrap:
    def test_field_wrapping_ra_origin(self):
        """Bodies scattered across the RA 0/360 seam shard and merge to
        the monolithic bytes under both shard keys."""
        for shard_key in ("zone", "htm"):
            sql = _xmatch_sql(0.02, -0.5)
            mono = _build(0.02, -0.5).portal.submit(sql)
            sharded = _build(
                0.02, -0.5, shards=4, shard_key=shard_key
            ).portal.submit(sql)
            assert mono.rows, "wrap field must produce pairs"
            assert list(sharded.rows) == list(mono.rows), shard_key
            assert len(set(sharded.rows)) == len(sharded.rows), shard_key

    def test_area_centered_across_the_seam(self):
        """An AREA centered just *west* of 0 (at RA 359.98) over the same
        wrapped field: pruning and merge remain exact."""
        for shard_key in ("zone", "htm"):
            sql = _xmatch_sql(359.98, -0.5)
            mono = _build(0.02, -0.5).portal.submit(sql)
            sharded = _build(
                0.02, -0.5, shards=4, shard_key=shard_key
            ).portal.submit(sql)
            assert list(sharded.rows) == list(mono.rows), shard_key


class TestMergeOrder:
    """The canonical gather order, pinned at the unit level."""

    def test_full_scan_merge_is_position_order(self):
        rows = [("b", 10.0, 1.0, 2), ("a", 11.0, 2.0, 0), ("c", 12.0, 3.0, 1)]
        merged = merge_seed_rows(rows, htm_depth=8, full_ranges=None)
        assert [row[-1] for row in merged] == [0, 1, 2]

    def test_match_merge_sorts_seq_then_position(self):
        rows = [
            (2, 5, "x"), (1, 9, "y"), (2, 1, "z"), (1, 3, "w"),
        ]
        merged = merge_match_lists(rows)
        assert [seq for seq, _ in merged] == [1, 2]
        assert [[r[1] for r in group] for _, group in merged] == [
            [3, 9], [1, 5],
        ]

    def test_prune_keeps_boundary_shard_via_trixel_pad(self):
        """A zone shard owning only the far side of a boundary trixel must
        survive pruning: the pad rounds the cap window outward."""
        h = DEFAULT_ZONE_HEIGHT_DEG
        area = AreaClause(ra_deg=185.0, dec_deg=-0.5, radius_arcsec=60.0)
        edge_zone = zone_of(-0.5 - 60.0 / 3600.0, h) - 1
        member = ShardMember(
            name="edge",
            ownership=ZoneRangeOwnership(
                zone_lo=0, zone_hi=edge_zone, htm_depth=8
            ),
            endpoints=({"query": "http://edge.skyquery.net/q"},),
        )
        assert prune_members([member], area) == [member]

    def test_prune_drops_far_away_zone_shard(self):
        area = AreaClause(ra_deg=185.0, dec_deg=-0.5, radius_arcsec=60.0)
        far = ShardMember(
            name="far",
            ownership=ZoneRangeOwnership(
                zone_lo=zone_of(60.0), zone_hi=zone_of(89.0), htm_depth=8
            ),
            endpoints=({"query": "http://far.skyquery.net/q"},),
        )
        assert prune_members([far], area) == []

    def test_prune_is_exact_for_htm_shards(self):
        depth = 8
        area = AreaClause(ra_deg=185.0, dec_deg=-0.5, radius_arcsec=60.0)
        hid = id_for_point(radec_to_vector(185.0, -0.5), depth)
        containing = ShardMember(
            name="hit",
            ownership=HTMRangeOwnership(
                id_lo=hid, id_hi=hid, htm_depth=depth
            ),
            endpoints=({"query": "http://hit.skyquery.net/q"},),
        )
        opposite = id_for_point(radec_to_vector(5.0, 0.5), depth)
        elsewhere = ShardMember(
            name="miss",
            ownership=HTMRangeOwnership(
                id_lo=opposite, id_hi=opposite, htm_depth=depth
            ),
            endpoints=({"query": "http://miss.skyquery.net/q"},),
        )
        kept = prune_members([containing, elsewhere], area)
        assert kept == [containing]

    def test_empty_shards_are_never_contacted(self):
        empty_zone = ShardMember(
            name="ez",
            ownership=ZoneRangeOwnership(zone_lo=5, zone_hi=4, htm_depth=8),
            endpoints=({"query": "http://ez.skyquery.net/q"},),
        )
        empty_htm = ShardMember(
            name="eh",
            ownership=HTMRangeOwnership(id_lo=9, id_hi=8, htm_depth=8),
            endpoints=({"query": "http://eh.skyquery.net/q"},),
        )
        assert prune_members([empty_zone, empty_htm], None) == []

    def test_shard_set_rejects_mixed_ownership_kinds(self):
        import pytest

        from repro.errors import PlanningError

        mixed = ShardSet(
            members=(
                ShardMember(
                    name="a",
                    ownership=ZoneRangeOwnership(zone_lo=0, zone_hi=1),
                    endpoints=({"query": "http://a/q"},),
                ),
                ShardMember(
                    name="b",
                    ownership=HTMRangeOwnership(
                        id_lo=0, id_hi=1, htm_depth=4
                    ),
                    endpoints=({"query": "http://b/q"},),
                ),
            )
        )
        with pytest.raises(PlanningError):
            mixed.shard_key
