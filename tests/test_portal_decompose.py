"""Query decomposition against a live catalog."""

import pytest

from repro.errors import ValidationError
from repro.portal.decompose import decompose
from repro.sql.parser import parse_query


@pytest.fixture()
def catalog(small_federation):
    return small_federation.portal.catalog


def paper_query():
    return parse_query(
        "SELECT O.object_id, O.ra, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
        "FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
        "AND O.type = GALAXY AND O.i_flux - T.i_flux > 2"
    )


def test_subqueries_per_alias(catalog):
    decomposed = decompose(paper_query(), catalog)
    assert set(decomposed.subqueries) == {"O", "T", "P"}
    assert decomposed.mandatory_aliases == ["O", "T", "P"]
    assert decomposed.dropout_aliases == []


def test_local_conjunct_pushed_to_sdss(catalog):
    decomposed = decompose(paper_query(), catalog)
    assert decomposed.subqueries["O"].residual_sql == "O.type = GALAXY"
    assert decomposed.subqueries["T"].residual_sql == ""


def test_cross_conjunct_kept_at_portal(catalog):
    decomposed = decompose(paper_query(), catalog)
    from repro.sql.printer import to_sql

    cross = [to_sql(c) for c in decomposed.analysis.cross_conjuncts]
    assert cross == ["O.i_flux - T.i_flux > 2"]


def test_attr_select_covers_select_and_cross(catalog):
    decomposed = decompose(paper_query(), catalog)
    o_attrs = {wire for _, wire, _ in decomposed.subqueries["O"].attr_select}
    t_attrs = {wire for _, wire, _ in decomposed.subqueries["T"].attr_select}
    assert {"O.object_id", "O.ra", "O.i_flux"} <= o_attrs
    assert {"T.obj_id", "T.i_flux"} <= t_attrs


def test_attr_typecodes_from_catalog(catalog):
    decomposed = decompose(paper_query(), catalog)
    types = {
        wire: code for _, wire, code in decomposed.subqueries["O"].attr_select
    }
    assert types["O.object_id"] == "int"
    assert types["O.i_flux"] == "double"


def test_perf_sql_only_for_mandatory(catalog):
    sql = (
        "SELECT O.object_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T, FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
    )
    decomposed = decompose(parse_query(sql), catalog)
    assert decomposed.subqueries["O"].perf_sql is not None
    assert decomposed.subqueries["P"].perf_sql is None
    assert decomposed.subqueries["P"].dropout


def test_perf_sql_shape(catalog):
    decomposed = decompose(paper_query(), catalog)
    perf = decomposed.subqueries["O"].perf_sql
    assert perf.startswith("SELECT COUNT(*) FROM Photo_Object O")
    assert "AREA(185.0, -0.5, 900.0)" in perf
    assert "O.type = GALAXY" in perf


def test_unknown_archive_rejected(catalog):
    sql = (
        "SELECT a.x FROM NOPE:T1 a, SDSS:Photo_Object b "
        "WHERE XMATCH(a, b) < 1"
    )
    from repro.errors import RegistrationError

    with pytest.raises(RegistrationError):
        decompose(parse_query(sql), catalog)


def test_unknown_table_rejected(catalog):
    sql = (
        "SELECT a.x FROM SDSS:Nope a, TWOMASS:Photo_Primary b "
        "WHERE XMATCH(a, b) < 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_unknown_column_in_select_rejected(catalog):
    sql = (
        "SELECT O.nonexistent FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_unknown_column_in_residual_rejected(catalog):
    sql = (
        "SELECT O.object_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T WHERE XMATCH(O, T) < 1 AND O.bogus = 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_missing_archive_qualifier_rejected(catalog):
    sql = (
        "SELECT O.object_id FROM Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE XMATCH(O, T) < 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_from_table_not_in_xmatch_rejected(catalog):
    sql = (
        "SELECT O.object_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T, FIRST:Primary_Object P "
        "WHERE XMATCH(O, T) < 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_select_star_rejected(catalog):
    sql = (
        "SELECT * FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE XMATCH(O, T) < 1"
    )
    with pytest.raises(ValidationError):
        decompose(parse_query(sql), catalog)


def test_single_archive_query_not_decomposed(catalog):
    with pytest.raises(ValidationError):
        decompose(parse_query("SELECT t.ra FROM SDSS:Photo_Object t"), catalog)


def test_node_sql_display(catalog):
    decomposed = decompose(paper_query(), catalog)
    node_sql = decomposed.subqueries["T"].node_sql
    assert "Photo_Primary" in node_sql
    assert "AREA(185.0, -0.5, 900.0)" in node_sql
