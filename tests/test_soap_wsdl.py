"""WSDL generation and parsing."""

import pytest

from repro.errors import SoapError
from repro.soap.wsdl import (
    OperationSpec,
    ServiceDescription,
    generate_wsdl,
    parse_wsdl,
)


def make_description():
    return ServiceDescription(
        name="QueryService",
        url="http://sdss.skyquery.net/query",
        operations=[
            OperationSpec(
                "ExecuteQuery", (("sql", "string"),), "rowset", doc="run SQL"
            ),
            OperationSpec(
                "Ping", (), "boolean",
            ),
        ],
    )


def test_roundtrip():
    description = make_description()
    parsed = parse_wsdl(generate_wsdl(description))
    assert parsed.name == description.name
    assert parsed.url == description.url
    assert [op.name for op in parsed.operations] == ["ExecuteQuery", "Ping"]
    assert parsed.operations[0].params == (("sql", "string"),)
    assert parsed.operations[0].returns == "rowset"
    assert parsed.operations[0].doc == "run SQL"


def test_operation_lookup():
    description = make_description()
    assert description.operation("Ping") is not None
    assert description.operation("Nope") is None


def test_wsdl_contains_soap_binding():
    text = generate_wsdl(make_description())
    assert "wsdl:binding" in text
    assert 'transport="http://schemas.xmlsoap.org/soap/http"' in text
    assert 'soapAction="urn:skyquery#ExecuteQuery"' in text


def test_wsdl_contains_address():
    text = generate_wsdl(make_description())
    assert 'location="http://sdss.skyquery.net/query"' in text


def test_parse_rejects_non_wsdl():
    with pytest.raises(SoapError):
        parse_wsdl("<notwsdl/>")


def test_parse_requires_name():
    with pytest.raises(SoapError):
        parse_wsdl('<wsdl:definitions xmlns:wsdl="x"/>')


def test_empty_operations():
    description = ServiceDescription("Empty", "http://h/e", [])
    parsed = parse_wsdl(generate_wsdl(description))
    assert parsed.operations == []
