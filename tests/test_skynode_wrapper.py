"""The archive wrapper: info, schema wire structs, dialect rendering."""

import pytest

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import SchemaError
from repro.skynode.wrapper import ArchiveInfo, ArchiveWrapper


def make_db(dialect="sqlserver"):
    db = Database("sdss", dialect=dialect)
    db.create_table(
        "Photo_Object",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
            Column("type", ColumnType.STRING),
            Column("i_flux", ColumnType.FLOAT),
            Column("saturated", ColumnType.BOOL),
        ],
        spatial=SpatialSpec("ra", "dec"),
    )
    db.insert("Photo_Object", [(1, 185.0, -0.5, "GALAXY", 12.0, False)])
    return db


def make_info():
    return ArchiveInfo(
        archive="SDSS",
        sigma_arcsec=0.1,
        primary_table="Photo_Object",
        object_id_column="object_id",
        ra_column="ra",
        dec_column="dec",
    )


def test_wrapper_validates_columns():
    db = make_db()
    bad = ArchiveInfo("SDSS", 0.1, "Photo_Object", "missing", "ra", "dec")
    with pytest.raises(SchemaError):
        ArchiveWrapper(db, bad)


def test_wrapper_requires_spatial_primary():
    db = Database("d")
    db.create_table(
        "t",
        [
            Column("object_id", ColumnType.INT),
            Column("ra", ColumnType.FLOAT),
            Column("dec", ColumnType.FLOAT),
        ],
    )
    info = ArchiveInfo("D", 0.1, "t", "object_id", "ra", "dec")
    with pytest.raises(SchemaError):
        ArchiveWrapper(db, info)


def test_info_wire_contents():
    wrapper = ArchiveWrapper(make_db(), make_info())
    wire = wrapper.info_wire()
    assert wire["archive"] == "SDSS"
    assert wire["sigma_arcsec"] == 0.1
    assert wire["primary_table"] == "Photo_Object"
    assert wire["object_count"] == 1
    assert wire["dialect"] == "sqlserver"


def test_info_wire_roundtrip():
    info = make_info()
    assert ArchiveInfo.from_wire(info.to_wire()) == info


def test_schema_wire_types():
    wrapper = ArchiveWrapper(make_db(), make_info())
    wire = wrapper.schema_wire()
    table = wire["tables"][0]
    assert table["name"] == "Photo_Object"
    types = {c["name"]: c["type"] for c in table["columns"]}
    assert types == {
        "object_id": "int",
        "ra": "double",
        "dec": "double",
        "type": "string",
        "i_flux": "double",
        "saturated": "boolean",
    }


def test_execute_sql_logs_dialect_rendering():
    wrapper = ArchiveWrapper(make_db("sqlserver"), make_info())
    wrapper.execute_sql("SELECT o.object_id FROM Photo_Object o")
    assert "[object_id]" in wrapper.statement_log[-1]
    assert "[Photo_Object]" in wrapper.statement_log[-1]


def test_execute_sql_returns_rows():
    wrapper = ArchiveWrapper(make_db(), make_info())
    result = wrapper.execute_sql("SELECT o.i_flux FROM Photo_Object o")
    assert result.rows == [(12.0,)]


def test_resultset_to_wire_uses_schema_types():
    wrapper = ArchiveWrapper(make_db(), make_info())
    from repro.sql.parser import parse_query

    query = parse_query("SELECT o.object_id, o.i_flux FROM Photo_Object o")
    rowset = wrapper.resultset_to_wire(wrapper.execute_ast(query), query)
    assert rowset.columns == [("o.object_id", "int"), ("o.i_flux", "double")]


def test_resultset_to_wire_infers_expression_types():
    wrapper = ArchiveWrapper(make_db(), make_info())
    from repro.sql.parser import parse_query

    query = parse_query("SELECT o.i_flux + 1 AS up FROM Photo_Object o")
    rowset = wrapper.resultset_to_wire(wrapper.execute_ast(query), query)
    assert rowset.columns == [("up", "double")]


def test_resultset_to_wire_count():
    wrapper = ArchiveWrapper(make_db(), make_info())
    from repro.sql.parser import parse_query

    query = parse_query("SELECT count(*) FROM Photo_Object o")
    rowset = wrapper.resultset_to_wire(wrapper.execute_ast(query), query)
    assert rowset.rows == [(1,)]
    assert rowset.columns[0][1] == "int"
