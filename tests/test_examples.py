"""The example scripts must run clean and print what they promise."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "radio_quiet_galaxies.py",
        "multispectral_photometry.py",
        "federation_growth.py",
        "polygon_search.py",
        "archive_replication.py",
        "pipelined_chain.py",
        "trace_chain.py",
        "live_ingest.py",
    ],
)
def test_example_runs(script):
    proc = run_example(script)
    assert proc.returncode == 0, proc.stderr


def test_quickstart_output():
    out = run_example("quickstart.py").stdout
    assert "Registered archives: ['FIRST', 'SDSS', 'TWOMASS']" in out
    assert "Cross matches found:" in out
    assert "crossmatch-chain" in out


def test_radio_quiet_partition_holds():
    out = run_example("radio_quiet_galaxies.py").stdout
    assert "loud + quiet == all optical? True | disjoint? True" in out


def test_multispectral_precision_table():
    out = run_example("multispectral_photometry.py").stdout
    assert "precision" in out
    assert "3.5" in out


def test_federation_growth_registers_third_node():
    out = run_example("federation_growth.py").stdout
    assert "federation size is now 3" in out
    assert "Register" in out and "GetSchema" in out and "GetInfo" in out
    assert "3-archive cross match after joining:" in out


def test_polygon_search_output():
    out = run_example("polygon_search.py").stdout
    assert "Triangular AREA(POLYGON, ...)" in out
    assert "<VOTABLE" in out


def test_pipelined_chain_identical_and_faster():
    out = run_example("pipelined_chain.py").stdout
    # The example asserts row identity itself; the test pins the printed
    # proof and that the slow-link scenario actually shows a speedup.
    assert "Rows identical across modes? True" in out
    speedup = float(out.split("Pipelined speedup: ")[1].split("x")[0])
    assert speedup > 1.0
    assert "role=seed" in out and "batches=" in out


def test_live_ingest_snapshot_and_atomicity():
    out = run_example("live_ingest.py").stdout
    assert "as epoch 1" in out
    assert "(lockstep)" in out
    assert "byte-identical to the before answer: True" in out
    assert "aborts cleanly: committed=False" in out


def test_archive_replication_atomicity_and_recovery():
    out = run_example("archive_replication.py").stdout
    assert "committed=True" in out
    assert "committed=False (reason: 'disk full')" in out
    assert "no partial copy" in out
    assert "Coordinator crashed" in out
    assert "After recovery both targets agree" in out
