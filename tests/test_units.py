"""Unit conversions."""

import math

import pytest

from repro import units


def test_deg_rad_roundtrip():
    assert units.rad_to_deg(units.deg_to_rad(123.456)) == pytest.approx(123.456)


def test_arcsec_rad_roundtrip():
    assert units.rad_to_arcsec(units.arcsec_to_rad(4.5)) == pytest.approx(4.5)


def test_arcmin_rad_roundtrip():
    assert units.rad_to_arcmin(units.arcmin_to_rad(30.0)) == pytest.approx(30.0)


def test_degree_is_3600_arcsec():
    assert units.arcsec_to_rad(3600.0) == pytest.approx(units.deg_to_rad(1.0))


def test_pi_radians_is_180_degrees():
    assert units.rad_to_deg(math.pi) == pytest.approx(180.0)


def test_normalize_ra_wraps_positive():
    assert units.normalize_ra_deg(370.0) == pytest.approx(10.0)


def test_normalize_ra_wraps_negative():
    assert units.normalize_ra_deg(-10.0) == pytest.approx(350.0)


def test_normalize_ra_identity_in_range():
    assert units.normalize_ra_deg(185.0) == pytest.approx(185.0)


def test_validate_dec_accepts_poles():
    assert units.validate_dec_deg(90.0) == 90.0
    assert units.validate_dec_deg(-90.0) == -90.0


def test_validate_dec_rejects_out_of_range():
    with pytest.raises(ValueError):
        units.validate_dec_deg(90.001)
    with pytest.raises(ValueError):
        units.validate_dec_deg(-91.0)
