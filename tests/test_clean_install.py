"""The install story: everything works without scipy.

The original default matcher imported scipy unconditionally, so a bare
``pip install`` produced a package whose quickstart crashed. These tests
block scipy (``sys.modules["scipy"] = None`` makes any import raise
ImportError) and run the full federation quickstart end-to-end to pin the
fix: the default vectorized kernel needs only numpy, and the k-d-tree
extra fails with an actionable message instead of a bare ImportError.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

BLOCK_SCIPY = (
    "import sys\n"
    "sys.modules['scipy'] = None\n"
    "sys.modules['scipy.spatial'] = None\n"
)


def run_blocked(script_body):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-c", BLOCK_SCIPY + script_body],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
        timeout=600,
    )


def test_quickstart_runs_without_scipy():
    proc = run_blocked(
        "import runpy\n"
        f"runpy.run_path({str(REPO_ROOT / 'examples' / 'quickstart.py')!r}, "
        "run_name='__main__')\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert "Cross matches found" in proc.stdout


def test_chain_and_pull_baseline_run_without_scipy():
    proc = run_blocked(
        "from repro.baselines.pull_mediator import PullMediator\n"
        "from repro.federation.builder import FederationConfig, "
        "build_federation\n"
        "fed = build_federation(FederationConfig(n_bodies=200, seed=5))\n"
        "sql = (\"SELECT O.object_id FROM SDSS:Photo_Object O, \"\n"
        "       \"TWOMASS:Photo_Primary T \"\n"
        "       \"WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5\")\n"
        "chain = fed.client().submit(sql)\n"
        "pulled = PullMediator(fed.portal).execute(sql)\n"
        "assert sorted(r[0] for r in chain.rows) == "
        "sorted(r[0] for r in pulled.rows)\n"
        "assert len(chain) > 0\n"
        "print('rows', len(chain))\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.startswith("rows ")


def test_kdtree_engine_fails_with_actionable_error_without_scipy():
    proc = run_blocked(
        "from repro.xmatch.kdtree import kdtree_search\n"
        "try:\n"
        "    kdtree_search([])\n"
        "except ImportError as exc:\n"
        "    print('MSG:', exc)\n"
        "else:\n"
        "    raise SystemExit('expected ImportError')\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert "skyquery-repro[kdtree]" in proc.stdout
    assert "pip install" in proc.stdout


def test_importing_xmatch_package_needs_no_scipy():
    proc = run_blocked(
        "import repro.xmatch\n"
        "import repro.xmatch.kdtree\n"
        "from repro.xmatch import batch_match_step, ColumnarObjects\n"
        "print('ok')\n"
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == "ok"


def test_kdtree_error_message_in_process(monkeypatch):
    monkeypatch.setitem(sys.modules, "scipy", None)
    monkeypatch.setitem(sys.modules, "scipy.spatial", None)
    from repro.xmatch.kdtree import KDTreeSearch

    with pytest.raises(ImportError, match=r"skyquery-repro\[kdtree\]"):
        KDTreeSearch([])
