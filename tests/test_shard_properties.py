"""Property-based tests: sharded federations are byte-identical twins.

The tentpole contract, stated as a property: for ANY random federation
(body count, seed), ANY shard count in {1, 2, 4, 7}, EITHER shard key
(zone-range or HTM trixel-prefix), EITHER chain mode, and EITHER match
engine, a sharded federation answers every query with *exactly* the
bytes its monolithic twin produces — same rows in the same order, same
columns, same warnings, same per-archive epochs, and same per-node
statistics. The single permitted divergence is buffer-pool accounting
(``logical_reads`` / ``physical_reads``): shards own private buffer
pools, so page-hit patterns differ even though every row examined and
every pair compared is identical. Chaos seeds (``SKYQUERY_CHAOS_SEED``)
vary simulated retry timings like the other property suites.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.workloads.skysim import SkyField

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)

FULL_SCAN_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE XMATCH(O, T) < 3.5"
)

DROPOUT_SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
)

COUNT_SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 2400.0) AND XMATCH(O, T) < 3.0"
)


def _build(n_bodies, seed, *, shards=0, shard_key="zone",
           chain_mode="store-forward", match_engine="htm"):
    return build_federation(
        FederationConfig(
            n_bodies=n_bodies,
            seed=seed,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=seed + CHAOS_SEED,
            ),
            shards=shards,
            shard_key=shard_key,
            chain_mode=chain_mode,
            match_engine=match_engine,
        )
    )


def _strip_buffer_stats(node_stats):
    """Node stats minus the buffer-pool counters shards legitimately skew."""
    return [
        {k: v for k, v in stats.items()
         if k not in ("logical_reads", "physical_reads")}
        for stats in node_stats
    ]


def _observe(n_bodies, seed, sql, **kwargs):
    """Everything externally observable about one federated query."""
    fed = _build(n_bodies, seed, **kwargs)
    result = fed.portal.submit(sql)
    return (
        list(result.rows),
        list(result.columns),
        list(result.warnings),
        result.degraded,
        dict(result.epochs),
        _strip_buffer_stats(result.node_stats),
    )


class TestShardOracle:
    """Sharded runs must match the monolithic twin byte for byte."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shards=st.sampled_from([1, 2, 4, 7]),
        shard_key=st.sampled_from(["zone", "htm"]),
        n_bodies=st.integers(60, 220),
        seed=st.integers(0, 10_000),
    )
    def test_xmatch_identical_to_monolithic(self, shards, shard_key,
                                            n_bodies, seed):
        mono = _observe(n_bodies, seed, XMATCH_SQL)
        sharded = _observe(n_bodies, seed, XMATCH_SQL,
                           shards=shards, shard_key=shard_key)
        assert sharded == mono
        assert mono[0], "oracle must exercise a non-trivial match"

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shards=st.sampled_from([2, 4, 7]),
        shard_key=st.sampled_from(["zone", "htm"]),
        chain_mode=st.sampled_from(["store-forward", "pipelined"]),
        match_engine=st.sampled_from(["htm", "zone"]),
        seed=st.integers(0, 10_000),
    )
    def test_chain_mode_and_engine_composition(self, shards, shard_key,
                                               chain_mode, match_engine,
                                               seed):
        mono = _observe(150, seed, XMATCH_SQL, chain_mode=chain_mode,
                        match_engine=match_engine)
        sharded = _observe(150, seed, XMATCH_SQL, shards=shards,
                           shard_key=shard_key, chain_mode=chain_mode,
                           match_engine=match_engine)
        assert sharded == mono

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shards=st.sampled_from([2, 4, 7]),
        shard_key=st.sampled_from(["zone", "htm"]),
        seed=st.integers(0, 10_000),
    )
    def test_full_scan_identical(self, shards, shard_key, seed):
        """No AREA: every non-empty shard is contacted, order still holds."""
        mono = _observe(140, seed, FULL_SCAN_SQL)
        sharded = _observe(140, seed, FULL_SCAN_SQL,
                           shards=shards, shard_key=shard_key)
        assert sharded == mono
        assert mono[0]

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shards=st.sampled_from([2, 4]),
        shard_key=st.sampled_from(["zone", "htm"]),
        chain_mode=st.sampled_from(["store-forward", "pipelined"]),
        seed=st.integers(0, 10_000),
    )
    def test_dropout_chain_identical(self, shards, shard_key, chain_mode,
                                     seed):
        """Negated (dropout) hops scatter-gather to the same bytes too."""
        mono = _observe(180, seed, DROPOUT_SQL, chain_mode=chain_mode)
        sharded = _observe(180, seed, DROPOUT_SQL, shards=shards,
                           shard_key=shard_key, chain_mode=chain_mode)
        assert sharded == mono

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        shards=st.sampled_from([2, 7]),
        shard_key=st.sampled_from(["zone", "htm"]),
        seed=st.integers(0, 10_000),
    )
    def test_count_probes_agree_with_monolithic(self, shards, shard_key,
                                                seed):
        """Scatter-gather count-star probes sum to the monolithic counts,
        so both planners order the chain identically."""
        mono_fed = _build(200, seed)
        shard_fed = _build(200, seed, shards=shards, shard_key=shard_key)
        mono = mono_fed.portal.explain(COUNT_SQL)
        sharded = shard_fed.portal.explain(COUNT_SQL)
        assert sharded["counts"] == mono["counts"]
        assert sharded["epochs"] == mono["epochs"]
        assert [s["archive"] for s in sharded["plan"]["steps"]] == [
            s["archive"] for s in mono["plan"]["steps"]
        ]
        assert [s["count_star"] for s in sharded["plan"]["steps"]] == [
            s["count_star"] for s in mono["plan"]["steps"]
        ]
