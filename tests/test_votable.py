"""VOTable export."""

from repro.client.formatting import to_votable
from repro.soap.xmlparser import parse_xml


def sample():
    return to_votable(
        ["object_id", "ra", "name", "ok"],
        [(1, 185.5, "a <b>", True), (2, -0.25, None, False)],
        table_name="matches",
        description="cross matches",
    )


def test_votable_structure():
    doc = parse_xml(sample())
    assert doc.local_name() == "VOTABLE"
    table = doc.require("RESOURCE").require("TABLE")
    assert table.get("name") == "matches"
    fields = table.find_all("FIELD")
    assert [f.get("name") for f in fields] == ["object_id", "ra", "name", "ok"]
    assert [f.get("datatype") for f in fields] == [
        "long", "double", "char", "boolean",
    ]


def test_votable_rows_and_escaping():
    doc = parse_xml(sample())
    trs = doc.require("RESOURCE").require("TABLE").require("DATA") \
        .require("TABLEDATA").find_all("TR")
    assert len(trs) == 2
    cells = [td.text for td in trs[0].find_all("TD")]
    assert cells == ["1", "185.5", "a <b>", "true"]
    # NULL travels as an empty cell.
    assert trs[1].find_all("TD")[2].text == ""


def test_votable_string_fields_have_arraysize():
    doc = parse_xml(sample())
    fields = doc.require("RESOURCE").require("TABLE").find_all("FIELD")
    by_name = {f.get("name"): f for f in fields}
    assert by_name["name"].get("arraysize") == "*"
    assert by_name["ra"].get("arraysize") is None


def test_votable_from_client_result(small_federation):
    result = small_federation.client().submit(
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 300.0) AND XMATCH(O, T) < 3.5"
    )
    doc = parse_xml(to_votable(result.columns, result.rows))
    table = doc.require("RESOURCE").require("TABLE")
    trs = table.require("DATA").require("TABLEDATA").find_all("TR")
    assert len(trs) == len(result)


def test_votable_empty():
    doc = parse_xml(to_votable(["a"], []))
    assert doc.require("RESOURCE").require("TABLE").require("DATA") \
        .require("TABLEDATA").find_all("TR") == []
