"""The compact column-major wire form ("colset").

A :class:`ColumnarRowSet` must be a pure wire-shape choice: whatever the
sender wraps, the receiver decodes back to a plain :class:`WireRowSet`
with identical schema and rows — through the raw element codec and through
a full SOAP RPC envelope — while spending measurably fewer bytes on the
payloads the streaming chain actually ships.
"""

import pytest

from repro.errors import SoapError
from repro.soap.encoding import (
    ColumnarRowSet,
    WireRowSet,
    decode_value,
    encode_value,
)
from repro.soap.envelope import build_rpc_response, parse_rpc_response
from repro.soap.xmlparser import parse_xml
from repro.soap.xmlwriter import render


def roundtrip(value):
    return decode_value(parse_xml(render(encode_value("v", value))))


def make_rowset():
    return WireRowSet(
        [("id", "int"), ("ra", "double"), ("name", "string"), ("ok", "boolean")],
        [
            (1, 185.5, "a <b> & 'c'", True),
            (2, -0.25, None, False),
            (None, 1.0, "x", None),
        ],
    )


def test_colset_roundtrips_to_plain_rowset():
    rowset = make_rowset()
    back = roundtrip(ColumnarRowSet(rowset))
    assert isinstance(back, WireRowSet)  # receivers never see the wrapper
    assert back.columns == rowset.columns
    assert back.rows == rowset.rows


def test_colset_wire_element_is_colset_typed():
    xml = render(encode_value("v", ColumnarRowSet(make_rowset())))
    assert 'xsi:type="colset"' in xml
    assert "<r>" not in xml  # no per-row elements


def test_colset_through_soap_envelope():
    rowset = make_rowset()
    envelope = build_rpc_response("PullBatch", ColumnarRowSet(rowset))
    decoded = parse_rpc_response(envelope)
    assert isinstance(decoded, WireRowSet)
    assert decoded.rows == rowset.rows


def test_colset_empty_rowset():
    empty = WireRowSet([("id", "int"), ("name", "string")])
    back = roundtrip(ColumnarRowSet(empty))
    assert back.columns == empty.columns
    assert back.rows == []


def test_colset_all_null_column():
    rowset = WireRowSet(
        [("id", "int"), ("flag", "boolean")],
        [(1, None), (2, None), (3, None)],
    )
    back = roundtrip(ColumnarRowSet(rowset))
    assert back.rows == rowset.rows


def test_delta_encoding_restores_after_null_gaps():
    # Deltas are taken against the previous *non-NULL* value; decode must
    # mirror that convention exactly.
    rowset = WireRowSet(
        [("id", "int")], [(100,), (None,), (103,), (None,), (None,), (90,)]
    )
    back = roundtrip(ColumnarRowSet(rowset))
    assert back.rows == rowset.rows


def test_delta_encoding_handles_negative_and_unsorted_ids():
    rowset = WireRowSet([("id", "int")], [(-5,), (1000,), (-1000,), (0,)])
    back = roundtrip(ColumnarRowSet(rowset))
    assert back.rows == rowset.rows


def test_dictionary_encoding_keeps_xml_unsafe_strings_intact():
    rowset = WireRowSet(
        [("s", "string")],
        [("a <b> & 'c'",), ("_",), ("",), ("a <b> & 'c'",), ("  padded  ",)],
    )
    back = roundtrip(ColumnarRowSet(rowset))
    assert back.rows == rowset.rows


def test_dictionary_deduplicates_repeated_strings():
    repeated = WireRowSet([("s", "string")], [("GALAXY",)] * 200)
    distinct = WireRowSet(
        [("s", "string")], [(f"GALAXY-{i}",) for i in range(200)]
    )
    repeated_xml = render(encode_value("v", ColumnarRowSet(repeated)))
    distinct_xml = render(encode_value("v", ColumnarRowSet(distinct)))
    assert repeated_xml.count("GALAXY") == 1
    assert len(repeated_xml) < len(distinct_xml) / 2


def test_float_precision_preserved_through_colset():
    values = [0.1 + 0.2, 1e-300, -1.5e300, 3.141592653589793]
    rowset = WireRowSet([("x", "double")], [(v,) for v in values])
    back = roundtrip(ColumnarRowSet(rowset))
    assert [row[0] for row in back.rows] == values


def test_colset_smaller_than_rowset_on_chain_shaped_payload():
    # The payload shape the streaming chain ships: near-sorted id columns,
    # accumulator doubles, a low-cardinality string attribute.
    rowset = WireRowSet(
        [
            ("id_O", "int"),
            ("id_T", "int"),
            ("acc_a", "double"),
            ("type", "string"),
        ],
        [
            (1000 + i, 5000 + 2 * i, 1.0 + i / 7.0, ("GALAXY", "STAR")[i % 2])
            for i in range(500)
        ],
    )
    rowset_xml = render(encode_value("v", rowset))
    colset_xml = render(encode_value("v", ColumnarRowSet(rowset)))
    assert roundtrip(ColumnarRowSet(rowset)).rows == rowset.rows
    assert len(colset_xml) < 0.5 * len(rowset_xml)


def test_colset_slice_stays_columnar():
    sliced = ColumnarRowSet(make_rowset()).slice(0, 2)
    assert isinstance(sliced, ColumnarRowSet)
    assert len(sliced) == 2
    assert roundtrip(sliced).rows == make_rowset().rows[:2]


def test_colset_type_mismatch_rejected_on_encode():
    rowset = WireRowSet([("id", "int")], [("not-an-int",)])
    with pytest.raises(SoapError):
        render(encode_value("v", ColumnarRowSet(rowset)))


def test_colset_wrong_width_rejected_on_encode():
    rowset = WireRowSet([("id", "int"), ("ra", "double")])
    rowset.rows.append((1,))
    with pytest.raises(SoapError):
        render(encode_value("v", ColumnarRowSet(rowset)))
