"""Two-phase commit data exchange between archives."""

import pytest

from repro.errors import SoapFaultError, TransactionError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.client import ServiceProxy
from repro.soap.encoding import WireRowSet
from repro.sql.ast import AreaClause
from repro.transactions import (
    CoordinatorCrash,
    CoordinatorLog,
    DataExchange,
    TwoPhaseCoordinator,
)
from repro.workloads.skysim import SkyField


@pytest.fixture()
def fed():
    federation = build_federation(
        FederationConfig(
            n_bodies=300, seed=31, sky_field=SkyField(185.0, -0.5, 1200.0)
        )
    )
    for node in federation.nodes.values():
        node.enable_transactions()
    return federation


def txn_url(fed, archive):
    return fed.node(archive).enable_transactions()


def txn_urls(fed):
    return {name: txn_url(fed, name) for name in fed.nodes}


def proxy(fed, archive):
    return ServiceProxy(fed.network, "tester", txn_url(fed, archive))


AREA = AreaClause(185.0, -0.5, 600.0)


class TestParticipant:
    def test_begin_stage_prepare_commit(self, fed):
        p = proxy(fed, "TWOMASS")
        p.call("Begin", txn_id="t1")
        p.call("EnsureTable", table="incoming",
               columns=[{"name": "x", "type": "int"}])
        staged = p.call("StageRows", txn_id="t1", table="incoming",
                        rows=WireRowSet([("x", "int")], [(1,), (2,)]))
        assert staged == 2
        # Staged rows are invisible before commit.
        db = fed.node("TWOMASS").db
        assert db.count_rows("incoming") == 0
        assert p.call("Prepare", txn_id="t1")["vote"] == "commit"
        assert db.count_rows("incoming") == 0
        assert p.call("Commit", txn_id="t1") is True
        assert db.count_rows("incoming") == 2

    def test_commit_idempotent(self, fed):
        p = proxy(fed, "TWOMASS")
        p.call("Begin", txn_id="t2")
        p.call("EnsureTable", table="inc2", columns=[{"name": "x", "type": "int"}])
        p.call("StageRows", txn_id="t2", table="inc2",
               rows=WireRowSet([("x", "int")], [(1,)]))
        p.call("Prepare", txn_id="t2")
        p.call("Commit", txn_id="t2")
        p.call("Commit", txn_id="t2")  # redelivery is safe
        assert fed.node("TWOMASS").db.count_rows("inc2") == 1

    def test_commit_without_prepare_rejected(self, fed):
        p = proxy(fed, "SDSS")
        p.call("Begin", txn_id="t3")
        with pytest.raises(SoapFaultError) as err:
            p.call("Commit", txn_id="t3")
        assert "two-phase" in str(err.value)

    def test_abort_discards_staged(self, fed):
        p = proxy(fed, "SDSS")
        p.call("Begin", txn_id="t4")
        p.call("EnsureTable", table="inc4", columns=[{"name": "x", "type": "int"}])
        p.call("StageRows", txn_id="t4", table="inc4",
               rows=WireRowSet([("x", "int")], [(9,)]))
        p.call("Abort", txn_id="t4")
        assert fed.node("SDSS").db.count_rows("inc4") == 0
        assert p.call("GetStatus", txn_id="t4") == "aborted"

    def test_abort_unknown_txn_is_presumed_abort(self, fed):
        p = proxy(fed, "SDSS")
        assert p.call("Abort", txn_id="never-began") is True

    def test_abort_committed_rejected(self, fed):
        p = proxy(fed, "FIRST")
        p.call("Begin", txn_id="t5")
        p.call("Prepare", txn_id="t5")
        p.call("Commit", txn_id="t5")
        with pytest.raises(SoapFaultError):
            p.call("Abort", txn_id="t5")

    def test_prepare_validates_schema(self, fed):
        p = proxy(fed, "SDSS")
        p.call("Begin", txn_id="t6")
        p.call("EnsureTable", table="inc6", columns=[{"name": "x", "type": "int"}])
        p.call("StageRows", txn_id="t6", table="inc6",
               rows=WireRowSet([("y", "int")], [(1,)]))  # unknown column
        reply = p.call("Prepare", txn_id="t6")
        assert reply["vote"] == "abort"
        assert "no column" in reply["reason"]

    def test_stage_unknown_txn_rejected(self, fed):
        p = proxy(fed, "SDSS")
        with pytest.raises(SoapFaultError):
            p.call("StageRows", txn_id="nope", table="t",
                   rows=WireRowSet([("x", "int")], []))

    def test_status_unknown(self, fed):
        assert proxy(fed, "SDSS").call("GetStatus", txn_id="zz") == "unknown"

    def test_crash_loses_active_keeps_prepared(self, fed):
        node = fed.node("TWOMASS")
        p = proxy(fed, "TWOMASS")
        p.call("Begin", txn_id="active1")
        p.call("Begin", txn_id="prepared1")
        p.call("Prepare", txn_id="prepared1")
        node.transaction.simulate_crash()
        assert p.call("GetStatus", txn_id="active1") == "unknown"
        assert p.call("GetStatus", txn_id="prepared1") == "prepared"
        assert p.call("Commit", txn_id="prepared1") is True


class TestExchange:
    def test_replicate_region_happy_path(self, fed):
        exchange = DataExchange(fed.portal, txn_urls(fed))
        result = exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
        assert result.committed
        assert result.rows_copied > 0
        for archive in ("TWOMASS", "FIRST"):
            db = fed.node(archive).db
            assert db.count_rows(result.replica_table) == result.rows_copied
        # Source count inside the AREA matches what was copied.
        source_count = fed.node("SDSS").db.execute(
            "SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, 600.0)"
        ).scalar()
        assert result.rows_copied == source_count

    def test_one_abort_vote_rolls_back_everyone(self, fed):
        exchange = DataExchange(fed.portal, txn_urls(fed))
        fed.node("FIRST").transaction.fail_next_prepare = "disk full"
        result = exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
        assert not result.committed
        assert result.abort_reason == "disk full"
        for archive in ("TWOMASS", "FIRST"):
            db = fed.node(archive).db
            if db.has_table(result.replica_table):
                assert db.count_rows(result.replica_table) == 0

    def test_atomic_visibility(self, fed):
        """No target sees rows until the global commit."""
        exchange = DataExchange(fed.portal, txn_urls(fed))
        result = exchange.replicate_region("FIRST", ["SDSS"], AREA)
        assert result.committed
        # A second, aborted exchange leaves the replica untouched.
        before = fed.node("SDSS").db.count_rows(result.replica_table)
        fed.node("SDSS").transaction.fail_next_prepare = "nope"
        second = exchange.replicate_region("FIRST", ["SDSS"], AREA)
        assert not second.committed
        assert fed.node("SDSS").db.count_rows(result.replica_table) == before

    def test_unknown_target_rejected(self, fed):
        exchange = DataExchange(fed.portal, {"SDSS": txn_url(fed, "SDSS")})
        with pytest.raises(TransactionError):
            exchange.replicate_region("SDSS", ["TWOMASS"], AREA)


class TestCoordinatorRecovery:
    def test_coordinator_crash_then_recovery_commits_everyone(self, fed):
        log = CoordinatorLog()
        coordinator = TwoPhaseCoordinator(
            fed.network, fed.portal.hostname, log
        )
        exchange = DataExchange(
            fed.portal, txn_urls(fed), coordinator=coordinator
        )

        # Crash after the decision is logged and the FIRST commit delivered.
        delivered = []

        def crash_on_second(url):
            if delivered:
                raise CoordinatorCrash(url)
            delivered.append(url)

        coordinator.fault_hook = crash_on_second
        with pytest.raises(CoordinatorCrash):
            exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)

        # One target committed, one is still in doubt (prepared).
        states = {
            archive: proxy(fed, archive).call(
                "GetStatus", txn_id=log.records[-1].txn_id
            )
            for archive in ("TWOMASS", "FIRST")
        }
        assert sorted(states.values()) == ["committed", "prepared"]

        # A new coordinator over the same log finishes the job.
        recovered = TwoPhaseCoordinator(fed.network, fed.portal.hostname, log)
        outcomes = recovered.recover()
        assert len(outcomes) == 1 and outcomes[0].committed
        txn_id = outcomes[0].txn_id
        for archive in ("TWOMASS", "FIRST"):
            assert proxy(fed, archive).call(
                "GetStatus", txn_id=txn_id
            ) == "committed"
        counts = {
            archive: fed.node(archive).db.count_rows("sdss_replica")
            for archive in ("TWOMASS", "FIRST")
        }
        assert counts["TWOMASS"] == counts["FIRST"] > 0

    def test_partitioned_participant_recovers_after_restore(self, fed):
        log = CoordinatorLog()
        coordinator = TwoPhaseCoordinator(fed.network, fed.portal.hostname, log)
        exchange = DataExchange(
            fed.portal, txn_urls(fed), coordinator=coordinator
        )
        target = fed.node("TWOMASS")

        # Partition the target between its Prepare vote and the Commit
        # delivery: the coordinator's decision cannot reach it.
        original_hook_state = {"partitioned": False}

        def partition_before_commit(url):
            if target.hostname in url and not original_hook_state["partitioned"]:
                fed.network.fail_host(target.hostname)
                original_hook_state["partitioned"] = True

        coordinator.fault_hook = partition_before_commit
        result = exchange.replicate_region("FIRST", ["TWOMASS"], AREA)
        assert result.committed  # decision was commit; delivery pending
        txn_id = result.txn_id
        fed.network.restore_host(target.hostname)
        assert proxy(fed, "TWOMASS").call("GetStatus", txn_id=txn_id) == "prepared"

        coordinator.fault_hook = None
        coordinator.recover()
        assert proxy(fed, "TWOMASS").call("GetStatus", txn_id=txn_id) == "committed"
        assert target.db.count_rows("first_replica") == result.rows_copied

    def test_recover_noop_when_log_complete(self, fed):
        log = CoordinatorLog()
        coordinator = TwoPhaseCoordinator(fed.network, fed.portal.hostname, log)
        exchange = DataExchange(
            fed.portal, txn_urls(fed), coordinator=coordinator
        )
        exchange.replicate_region("SDSS", ["TWOMASS"], AREA)
        assert coordinator.recover() == []


class TestFaultInjectedTwoPhase:
    """Scripted crash injection against the 2PC exchange (FaultPlan)."""

    def test_participant_lost_before_prepare_aborts_cleanly(self, fed):
        from repro.transport.faults import FaultPlan

        target = fed.node("TWOMASS")
        network = fed.network

        class LosesContact(TwoPhaseCoordinator):
            """Crashes the target after staging, before its Prepare."""

            def complete(self, txn_id, participants):
                network.set_fault_plan(
                    FaultPlan().crash(target.hostname, at_s=network.clock.now)
                )
                return super().complete(txn_id, participants)

        coordinator = LosesContact(fed.network, fed.portal.hostname)
        exchange = DataExchange(
            fed.portal, txn_urls(fed), coordinator=coordinator
        )
        result = exchange.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)

        # One unreachable participant forces a global abort...
        assert not result.committed
        assert "unreachable" in result.votes.values()
        assert result.rows_copied == 0
        # ...and the abort path leaves no partial replica table anywhere:
        # the table may exist (EnsureTable ran while staging) but holds
        # zero rows on every target, crashed or not.
        for archive in ("TWOMASS", "FIRST"):
            db = fed.node(archive).db
            if db.has_table(result.replica_table):
                assert db.count_rows(result.replica_table) == 0
        assert proxy(fed, "FIRST").call(
            "GetStatus", txn_id=result.txn_id
        ) == "aborted"

    def test_retried_exchange_after_abort_is_idempotent(self, fed):
        from repro.transport.faults import FaultPlan

        target = fed.node("TWOMASS")
        network = fed.network

        class LosesContact(TwoPhaseCoordinator):
            def complete(self, txn_id, participants):
                network.set_fault_plan(
                    FaultPlan().crash(target.hostname, at_s=network.clock.now)
                )
                return super().complete(txn_id, participants)

        failed = DataExchange(
            fed.portal, txn_urls(fed),
            coordinator=LosesContact(fed.network, fed.portal.hostname),
        ).replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
        assert not failed.committed

        # The host is repaired; the retried exchange must converge to
        # exactly one copy of the region — the aborted attempt left no
        # residue that a retry could double-apply.
        network.set_fault_plan(None)
        retry = DataExchange(fed.portal, txn_urls(fed))
        second = retry.replicate_region("SDSS", ["TWOMASS", "FIRST"], AREA)
        assert second.committed
        source_count = fed.node("SDSS").db.execute(
            "SELECT count(*) FROM Photo_Object o WHERE AREA(185.0, -0.5, 600.0)"
        ).scalar()
        assert second.rows_copied == source_count
        for archive in ("TWOMASS", "FIRST"):
            assert fed.node(archive).db.count_rows(
                second.replica_table
            ) == source_count

    def test_participant_lost_between_prepare_and_commit_recovers(self, fed):
        from repro.transport.faults import FaultPlan

        target = fed.node("TWOMASS")
        network = fed.network
        log = CoordinatorLog()
        coordinator = TwoPhaseCoordinator(fed.network, fed.portal.hostname, log)

        def crash_target_before_delivery(url):
            if target.hostname in url and network.fault_plan is None:
                network.set_fault_plan(
                    FaultPlan().crash(target.hostname, at_s=network.clock.now)
                )

        coordinator.fault_hook = crash_target_before_delivery
        exchange = DataExchange(
            fed.portal, txn_urls(fed), coordinator=coordinator
        )
        result = exchange.replicate_region("FIRST", ["TWOMASS"], AREA)
        # Every vote was commit, so the decision is commit — but the
        # delivery never reached the crashed participant: in doubt.
        assert result.committed
        assert log.in_doubt()

        network.set_fault_plan(None)
        coordinator.fault_hook = None
        assert proxy(fed, "TWOMASS").call(
            "GetStatus", txn_id=result.txn_id
        ) == "prepared"
        outcomes = coordinator.recover()
        assert len(outcomes) == 1 and outcomes[0].committed
        assert target.db.count_rows(result.replica_table) == result.rows_copied
        # Replaying recovery again redelivers Commit; idempotent.
        assert coordinator.recover() == []
        assert target.db.count_rows(result.replica_table) == result.rows_copied
