"""Aggregates: COUNT/SUM/AVG/MIN/MAX, GROUP BY, HAVING."""

import pytest

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.types import ColumnType
from repro.errors import QueryError, ValidationError
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.sql.validate import validate_query


@pytest.fixture()
def db():
    database = Database("agg")
    database.create_table(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("type", ColumnType.STRING, nullable=False),
            Column("flux", ColumnType.FLOAT),
        ],
    )
    database.insert(
        "objects",
        [
            (1, "GALAXY", 10.0),
            (2, "GALAXY", 20.0),
            (3, "GALAXY", None),
            (4, "STAR", 5.0),
            (5, "STAR", 15.0),
            (6, "QSO", None),
        ],
    )
    return database


def test_count_column_skips_nulls(db):
    result = db.execute("SELECT COUNT(o.flux) FROM objects o")
    assert result.rows == [(4,)]


def test_count_star_vs_count_column(db):
    star = db.execute("SELECT COUNT(*) FROM objects o").scalar()
    col = db.execute("SELECT COUNT(o.flux) FROM objects o").rows[0][0]
    assert (star, col) == (6, 4)


def test_sum_avg_min_max(db):
    result = db.execute(
        "SELECT SUM(o.flux), AVG(o.flux), MIN(o.flux), MAX(o.flux) "
        "FROM objects o"
    )
    assert result.rows == [(50.0, 12.5, 5.0, 20.0)]


def test_aggregates_on_empty_input(db):
    result = db.execute(
        "SELECT COUNT(*), COUNT(o.flux), SUM(o.flux), AVG(o.flux), "
        "MIN(o.flux) FROM objects o WHERE o.object_id > 100"
    )
    assert result.rows == [(0, 0, None, None, None)]


def test_group_by_counts(db):
    result = db.execute(
        "SELECT o.type, COUNT(*) AS n FROM objects o "
        "GROUP BY o.type ORDER BY o.type"
    )
    assert result.columns == ["o.type", "n"]
    assert result.rows == [("GALAXY", 3), ("QSO", 1), ("STAR", 2)]


def test_group_by_with_aggregate_expression(db):
    result = db.execute(
        "SELECT o.type, MAX(o.flux) - MIN(o.flux) AS spread FROM objects o "
        "WHERE o.flux IS NOT NULL GROUP BY o.type ORDER BY o.type"
    )
    assert result.rows == [("GALAXY", 10.0), ("STAR", 10.0)]


def test_having_filters_groups(db):
    result = db.execute(
        "SELECT o.type, COUNT(*) AS n FROM objects o "
        "GROUP BY o.type HAVING COUNT(*) >= 2 ORDER BY o.type"
    )
    assert result.rows == [("GALAXY", 3), ("STAR", 2)]


def test_order_by_aggregate(db):
    result = db.execute(
        "SELECT o.type FROM objects o GROUP BY o.type "
        "ORDER BY COUNT(*) DESC, o.type"
    )
    assert [r[0] for r in result.rows] == ["GALAXY", "STAR", "QSO"]


def test_group_by_limit(db):
    result = db.execute(
        "SELECT o.type FROM objects o GROUP BY o.type ORDER BY o.type LIMIT 2"
    )
    assert len(result.rows) == 2


def test_ungrouped_column_rejected(db):
    with pytest.raises(QueryError):
        db.execute("SELECT o.type, COUNT(*) FROM objects o")


def test_nested_aggregate_rejected(db):
    with pytest.raises(QueryError):
        db.execute("SELECT SUM(COUNT(*)) FROM objects o")


def test_sum_star_rejected(db):
    from repro.errors import SQLSyntaxError

    # `*` is only grammatical inside COUNT(...); SUM(*) fails at parse time.
    with pytest.raises((QueryError, SQLSyntaxError)):
        db.execute("SELECT SUM(*) FROM objects o")


def test_sum_non_numeric_rejected(db):
    with pytest.raises(QueryError):
        db.execute("SELECT SUM(o.type) FROM objects o")


def test_where_applies_before_grouping(db):
    result = db.execute(
        "SELECT o.type, COUNT(*) FROM objects o WHERE o.flux > 9 "
        "GROUP BY o.type ORDER BY o.type"
    )
    assert result.rows == [("GALAXY", 2), ("STAR", 1)]


def test_default_column_label_is_sql(db):
    result = db.execute("SELECT MAX(o.flux) FROM objects o")
    assert result.columns == ["MAX(o.flux)"]


def test_group_by_expression_key(db):
    result = db.execute(
        "SELECT o.object_id / 3, COUNT(*) FROM objects o "
        "GROUP BY o.object_id / 3 ORDER BY o.object_id / 3"
    )
    # Keys: 1/3, 2/3, 1.0, 4/3, 5/3, 2.0 — all distinct true division values.
    assert len(result.rows) == 6


def test_grouped_sql_printing_roundtrip():
    sql = (
        "SELECT o.type, COUNT(*) AS n FROM objects o WHERE o.flux > 1 "
        "GROUP BY o.type HAVING COUNT(*) >= 2 ORDER BY n DESC LIMIT 3"
    )
    query = parse_query(sql)
    assert parse_query(to_sql(query)) == query


def test_federated_aggregates_rejected():
    query = parse_query(
        "SELECT COUNT(*) FROM S:T1 a, W:T2 b WHERE XMATCH(a, b) < 3.5"
    )
    with pytest.raises(ValidationError):
        validate_query(query)


def test_single_archive_aggregate_via_portal(small_federation):
    result = small_federation.client().submit(
        "SELECT t.type, COUNT(*) AS n FROM SDSS:Photo_Object t "
        "GROUP BY t.type ORDER BY t.type"
    )
    direct = small_federation.node("SDSS").db.execute(
        "SELECT t.type, COUNT(*) AS n FROM Photo_Object t "
        "GROUP BY t.type ORDER BY t.type"
    )
    assert result.rows == direct.rows
