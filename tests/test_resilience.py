"""Fault injection, retries, circuit breakers, graceful degradation.

The resilience contract (docs/RESILIENCE.md): seeded fault plans replay
identically, transient faults are survived by retries with backoff on the
simulated clock, repeatedly-dead endpoints trip a breaker, and a federation
that loses a node degrades (warnings + partial results) instead of raising.
"""

import pytest

from repro.errors import (
    CircuitOpenError,
    RequestTimeoutError,
    SoapFaultError,
    TransportError,
)
from repro.federation.builder import FederationConfig, build_federation
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost, WebService
from repro.services.retry import BreakerRegistry, CircuitBreaker, RetryPolicy
from repro.transport.faults import FaultPlan
from repro.transport.http import HttpResponse
from repro.transport.network import SimulatedNetwork
from repro.workloads.skysim import SkyField

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)

DROPOUT_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
)


def echo_service_net():
    """A network with one Calc service and a client host name 'cli'."""
    net = SimulatedNetwork(default_latency_s=0.01,
                           default_bandwidth_bps=1e9)
    service = WebService("Calc")
    service.register(
        "Add", lambda a, b: a + b,
        params=(("a", "int"), ("b", "int")), returns="int",
    )

    host = ServiceHost("svc")
    url = host.mount("/calc", service)
    net.add_host("svc", host.handle)
    return net, url


def quick_policy(**overrides):
    defaults = dict(
        max_attempts=4, timeout_s=1.0, base_backoff_s=0.1,
        backoff_multiplier=2.0, max_backoff_s=2.0, jitter=0.0, seed=7,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# -- FaultPlan -----------------------------------------------------------------


class TestFaultPlan:
    def synthetic_stream(self, plan, n=200):
        decisions = []
        for i in range(n):
            verdict = plan.on_message("request", "a", "b", float(i))
            decisions.append(
                None if verdict is None
                else (verdict.drop, verdict.extra_latency_s)
            )
        return decisions

    def test_same_seed_replays_identically(self):
        def build():
            return (
                FaultPlan(seed=5)
                .drop_requests(rate=0.2, label="drops")
                .latency_spikes(rate=0.1, extra_s=3.0, label="spikes")
            )

        assert self.synthetic_stream(build()) == self.synthetic_stream(build())

    def test_different_seeds_differ(self):
        one = FaultPlan(seed=1).drop_requests(rate=0.3)
        two = FaultPlan(seed=2).drop_requests(rate=0.3)
        assert self.synthetic_stream(one) != self.synthetic_stream(two)

    def test_adding_a_rule_keeps_earlier_draws(self):
        # Per-rule RNGs: scripting an extra rule must not perturb rule 0.
        lone = FaultPlan(seed=5).drop_requests(rate=0.2)
        paired = FaultPlan(seed=5).drop_requests(rate=0.2).drop_responses(
            rate=0.5
        )
        lone_hits = [lone._rules[0].fires() for _ in range(100)]
        paired_hits = [paired._rules[0].fires() for _ in range(100)]
        assert lone_hits == paired_hits

    def test_first_n_takes_precedence_over_rate(self):
        plan = FaultPlan().drop_requests(rate=0.0, first_n=3)
        hits = [
            plan.on_message("request", "a", "b", 0.0) is not None
            for _ in range(5)
        ]
        assert hits == [True, True, True, False, False]

    def test_rules_scope_to_link(self):
        plan = FaultPlan().drop_requests(src="a", dst="b")
        assert plan.on_message("request", "a", "b", 0.0).drop
        assert plan.on_message("request", "b", "a", 0.0) is None
        assert plan.on_message("response", "a", "b", 0.0) is None

    def test_drop_wins_over_delay(self):
        plan = (
            FaultPlan()
            .latency_spikes(rate=1.0, extra_s=2.0)
            .drop_requests(rate=1.0)
        )
        verdict = plan.on_message("request", "a", "b", 0.0)
        assert verdict.drop

    def test_outage_windows_on_sim_clock(self):
        plan = FaultPlan().outage("svc", 10.0, 20.0)
        assert not plan.host_in_outage("svc", 9.9)
        assert plan.host_in_outage("svc", 10.0)
        assert plan.host_in_outage("svc", 19.9)
        assert not plan.host_in_outage("svc", 20.0)
        assert not plan.host_in_outage("other", 15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().drop_requests(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan().latency_spikes(extra_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan().outage("svc", 5.0, 5.0)

    def test_injection_summary_counts(self):
        plan = FaultPlan().drop_requests(first_n=2, label="warmup")
        for _ in range(5):
            plan.on_message("request", "a", "b", 0.0)
        assert plan.injection_summary() == {"warmup": 2}


# -- transport-level faults --------------------------------------------------------


class TestNetworkFaults:
    def test_dropped_request_times_out(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc"))
        proxy = ServiceProxy(net, "cli", url)
        before = net.clock.now
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        # The caller waited out the default timeout on the sim clock.
        assert net.clock.now - before >= net.default_timeout_s
        assert net.metrics.timeouts == 1
        assert net.metrics.fault_count("request-drop") == 1

    def test_dropped_response_times_out_after_handler_ran(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_responses(src="svc"))
        proxy = ServiceProxy(net, "cli", url)
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        assert net.metrics.fault_count("response-drop") == 1

    def test_latency_spike_below_timeout_just_slows(self):
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan().latency_spikes(dst="svc", rate=1.0, extra_s=0.5)
        )
        proxy = ServiceProxy(net, "cli", url,
                             retry_policy=quick_policy(timeout_s=5.0))
        before = net.clock.now
        assert proxy.call("Add", a=20, b=22) == 42
        assert net.clock.now - before >= 0.5
        assert net.metrics.fault_count("latency-spike") == 1
        assert net.metrics.timeouts == 0

    def test_latency_spike_above_timeout_raises(self):
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan().latency_spikes(dst="svc", rate=1.0, extra_s=10.0)
        )
        proxy = ServiceProxy(
            net, "cli", url,
            retry_policy=quick_policy(max_attempts=1, timeout_s=1.0),
        )
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        # A single attempt, a single timeout.
        assert net.metrics.timeouts == 1

    def test_outage_window_refuses_then_recovers(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().outage("svc", 0.0, 50.0))
        proxy = ServiceProxy(net, "cli", url)
        with pytest.raises(TransportError):
            proxy.call("Add", a=1, b=2)
        assert net.metrics.fault_count("outage") == 1
        net.sleep(60.0)
        assert proxy.call("Add", a=20, b=22) == 42

    def test_non_soap_http_error_raises_transport_error(self):
        # Satellite: a plain HTTP error (no SOAP envelope) must surface as
        # a TransportError naming the status, not a parse failure.
        net = SimulatedNetwork()
        net.add_host(
            "svc", lambda request: HttpResponse(
                503, body=b"Service Unavailable"
            )
        )
        proxy = ServiceProxy(net, "cli", "http://svc/x")
        with pytest.raises(TransportError) as excinfo:
            proxy.call("Ping")
        assert "503" in str(excinfo.value)
        assert not isinstance(excinfo.value, RequestTimeoutError)


# -- retries --------------------------------------------------------------------


class TestRetries:
    def test_backoff_schedule_grows_and_caps(self):
        policy = quick_policy()
        rng = policy.rng_for("cli", "http://svc/x")
        schedule = [policy.backoff_s(n, rng) for n in range(1, 7)]
        assert schedule == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.6, 2.0])

    def test_jitter_is_seeded(self):
        policy = quick_policy(jitter=0.5)
        one = policy.backoff_s(1, policy.rng_for("cli", "http://svc/x"))
        two = policy.backoff_s(1, policy.rng_for("cli", "http://svc/x"))
        assert one == two
        assert 0.1 <= one <= 0.15

    def test_flaky_first_n_recovers(self):
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan().drop_requests(dst="svc", first_n=2, label="warmup")
        )
        proxy = ServiceProxy(net, "cli", url, retry_policy=quick_policy())
        assert proxy.call("Add", a=20, b=22) == 42
        assert net.metrics.retries == 2
        assert net.metrics.timeouts == 2
        assert net.metrics.fault_count("request-drop") == 2
        assert net.metrics.backoff_seconds > 0

    def test_attempts_are_bounded(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc"))
        proxy = ServiceProxy(
            net, "cli", url, retry_policy=quick_policy(max_attempts=3)
        )
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        assert net.metrics.timeouts == 3
        assert net.metrics.retries == 2

    def test_deadline_stops_retrying_early(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc"))
        proxy = ServiceProxy(
            net, "cli", url,
            retry_policy=quick_policy(max_attempts=10, deadline_s=2.5),
        )
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        # timeout_s=1.0 per attempt: only a couple of attempts fit.
        assert net.metrics.timeouts < 10

    def test_retry_waits_ride_the_sim_clock(self):
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan().drop_requests(dst="svc", first_n=1)
        )
        proxy = ServiceProxy(net, "cli", url, retry_policy=quick_policy())
        before = net.clock.now
        proxy.call("Add", a=1, b=2)
        # 1 timeout (1.0s) + first backoff (0.1s) + the real round trip.
        assert net.clock.now - before >= 1.1

    def test_retried_parallel_branches_overlap(self):
        # Retries inside a parallel block serialize within their branch but
        # still overlap with sibling branches.
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan()
            .drop_requests(src="cli-a", dst="svc", first_n=1)
            .drop_requests(src="cli-b", dst="svc", first_n=1)
        )
        slow = ServiceProxy(net, "cli-a", url, retry_policy=quick_policy())
        also = ServiceProxy(net, "cli-b", url, retry_policy=quick_policy())
        start = net.clock.now
        with net.parallel():
            slow.call("Add", a=1, b=1)
            also.call("Add", a=2, b=2)
        elapsed = net.clock.now - start
        # Each branch pays ~1.1s (timeout + backoff); overlapped, not summed.
        assert elapsed < 1.6


# -- circuit breakers ---------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker("u", failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure(1.0)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check(5.0)
        assert excinfo.value.retry_at_s == pytest.approx(11.0)
        breaker.check(11.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success(11.5)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("u", failure_threshold=2, cooldown_s=10.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.check(11.0)
        breaker.record_failure(11.5)
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check(12.0)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("u", failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_breaker_fails_fast_through_proxy(self):
        net, url = echo_service_net()
        breaker = CircuitBreaker(
            url, failure_threshold=2, cooldown_s=10.0,
            metrics=lambda: net.metrics,
        )
        proxy = ServiceProxy(
            net, "cli", url,
            retry_policy=quick_policy(max_attempts=1),
            breaker=breaker,
        )
        net.fail_host("svc")
        for _ in range(2):
            with pytest.raises(TransportError):
                proxy.call("Add", a=1, b=2)
        # Open: the next call fails fast with no wire traffic or clock cost.
        before_clock = net.clock.now
        before_msgs = net.metrics.message_count()
        with pytest.raises(CircuitOpenError):
            proxy.call("Add", a=1, b=2)
        assert net.clock.now == before_clock
        assert net.metrics.message_count() == before_msgs

        # Cooldown, recovery, half-open probe, close.
        net.restore_host("svc")
        net.sleep(10.0)
        assert proxy.call("Add", a=20, b=22) == 42
        states = [
            (event.old_state, event.new_state)
            for event in net.metrics.breaker_transitions()
        ]
        assert states == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "closed")
        ]

    def test_soap_fault_counts_as_breaker_success(self):
        # An application-level fault proves the endpoint is alive.
        net, url = echo_service_net()
        breaker = CircuitBreaker(url, failure_threshold=1)
        proxy = ServiceProxy(net, "cli", url, breaker=breaker)
        with pytest.raises(SoapFaultError):
            proxy.call("NoSuchOperation")
        assert breaker.state == CircuitBreaker.CLOSED

    def test_registry_shares_breakers_per_endpoint(self):
        registry = BreakerRegistry(failure_threshold=2)
        one = registry.breaker_for("http://a/x")
        assert registry.breaker_for("http://a/x") is one
        assert registry.breaker_for("http://b/x") is not one
        one.record_failure(0.0)
        one.record_failure(0.0)
        assert registry.states() == {
            "http://a/x": "open", "http://b/x": "closed"
        }


# -- federation-level resilience -------------------------------------------------


def _resilient_config(fault_plan=None):
    return FederationConfig(
        n_bodies=250,
        seed=9,
        sky_field=SkyField(185.0, -0.5, 1800.0),
        retry_policy=RetryPolicy(
            max_attempts=4, timeout_s=8.0, base_backoff_s=0.2,
            max_backoff_s=2.0, seed=9,
        ),
        fault_plan=fault_plan,
    )


def _drop_plan():
    # 10% of all requests vanish, federation-wide. (A whole cross-match is
    # only ~10 request messages, so the seed is chosen to actually fire.)
    return FaultPlan(seed=2).drop_requests(rate=0.10, label="drops")


@pytest.fixture(scope="module")
def baseline_federation():
    """Fault-free reference run (same sky as the faulty federations)."""
    return build_federation(_resilient_config())


@pytest.fixture(scope="module")
def faulty_federation():
    return build_federation(_resilient_config(fault_plan=_drop_plan()))


class TestFederationResilience:
    def test_ten_percent_drops_complete_with_identical_rows(
        self, baseline_federation, faulty_federation
    ):
        clean = baseline_federation.client().submit(XMATCH_SQL)
        assert len(clean) > 0

        faulty = faulty_federation.client().submit(XMATCH_SQL)
        metrics = faulty_federation.network.metrics
        assert sorted(faulty.rows) == sorted(clean.rows)
        assert not faulty.degraded
        # The faults really happened and really were retried.
        assert metrics.fault_count("request-drop") > 0
        assert metrics.retries > 0
        assert metrics.timeouts > 0

    def test_fault_runs_replay_identically(self, faulty_federation):
        replay = build_federation(_resilient_config(fault_plan=_drop_plan()))
        first = faulty_federation
        # Both federations saw the same scripted faults... (the fixture
        # already ran one query; replay it to align the rule streams)
        first_rows = first.client().submit(XMATCH_SQL).rows
        replay.client().submit(XMATCH_SQL)
        replay_rows = replay.client().submit(XMATCH_SQL).rows
        assert sorted(first_rows) == sorted(replay_rows)

    def test_health_probe_traffic_is_phased(self, baseline_federation):
        fed = baseline_federation
        fed.client().submit(XMATCH_SQL)
        assert fed.network.metrics.message_count(phase="health-probe") > 0

    def test_dead_dropout_archive_degrades_with_partial_result(
        self, baseline_federation
    ):
        fed = baseline_federation
        node = fed.node("FIRST")
        fed.network.fail_host(node.hostname)
        try:
            result = fed.client().submit(DROPOUT_SQL)
        finally:
            fed.network.restore_host(node.hostname)
        # The !P drop-out archive is gone: the match completes without it.
        assert result.degraded
        assert len(result) > 0
        assert any("FIRST" in warning for warning in result.warnings)

    def test_dead_mandatory_archive_degrades_empty(self, baseline_federation):
        fed = baseline_federation
        node = fed.node("TWOMASS")
        fed.network.fail_host(node.hostname)
        try:
            result = fed.client().submit(XMATCH_SQL)
        finally:
            fed.network.restore_host(node.hostname)
        assert result.degraded
        assert result.rows == []
        assert any("TWOMASS" in warning for warning in result.warnings)


# -- deadline clamping (regression) ---------------------------------------------


class TestDeadlineClamp:
    def test_last_attempt_timeout_is_clamped_to_deadline(self):
        # Regression: the final attempt used to run with the full
        # per-attempt timeout even when the deadline budget had less left,
        # overrunning the caller's deadline by up to one whole timeout.
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc"))
        policy = quick_policy(max_attempts=10, timeout_s=1.0, deadline_s=2.5)
        proxy = ServiceProxy(net, "cli", url, retry_policy=policy)
        before = net.clock.now
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        elapsed = net.clock.now - before
        # attempt(1.0) + backoff(0.1) + attempt(1.0) + backoff(0.2) +
        # clamped final attempt(0.2) = 2.5 exactly; never a full extra 1.0.
        assert elapsed <= policy.deadline_s + 1e-9
        assert net.metrics.timeouts == 3

    def test_deadline_without_timeout_bounds_each_attempt(self):
        # With no per-attempt timeout at all, the deadline alone must bound
        # every attempt instead of falling back to the network default.
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc"))
        policy = quick_policy(
            max_attempts=10, timeout_s=None, deadline_s=1.5
        )
        proxy = ServiceProxy(net, "cli", url, retry_policy=policy)
        before = net.clock.now
        with pytest.raises(RequestTimeoutError):
            proxy.call("Add", a=1, b=2)
        assert net.clock.now - before <= 1.5 + 1e-9


# -- WSDL fetch resilience ------------------------------------------------------


class TestWsdlFetchResilience:
    def test_fetch_wsdl_retries_transient_drops(self):
        net, url = echo_service_net()
        net.set_fault_plan(
            FaultPlan().drop_requests(dst="svc", first_n=2, label="warmup")
        )
        proxy = ServiceProxy(net, "cli", url, retry_policy=quick_policy())
        description = proxy.fetch_wsdl()
        assert description.operation("Add") is not None
        assert net.metrics.retries == 2
        assert net.metrics.fault_count("request-drop") == 2

    def test_fetch_wsdl_counts_against_the_breaker(self):
        net, url = echo_service_net()
        breaker = CircuitBreaker(url, failure_threshold=2, cooldown_s=10.0)
        proxy = ServiceProxy(
            net, "cli", url,
            retry_policy=quick_policy(max_attempts=1),
            breaker=breaker,
        )
        net.fail_host("svc")
        for _ in range(2):
            with pytest.raises(TransportError):
                proxy.fetch_wsdl()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            proxy.fetch_wsdl()

    def test_fetch_wsdl_without_policy_stays_single_shot(self):
        net, url = echo_service_net()
        net.set_fault_plan(FaultPlan().drop_requests(dst="svc", first_n=1))
        proxy = ServiceProxy(net, "cli", url)
        with pytest.raises(TransportError):
            proxy.fetch_wsdl()
        assert net.metrics.retries == 0
