"""The pipelined streaming chain: equivalence, ordering, faults, hygiene.

The pipelined mode must be a pure performance transform: byte-identical
rows in identical order, same matched-tuple set, same per-node counters —
with the stream protocol enforcing in-order batch delivery, idempotent
retry of the batch just served, and TTL reclamation of abandoned state.
"""

import pytest

from repro.errors import SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.transport.faults import FaultPlan
from repro.workloads.skysim import SkyField

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id, O.i_flux - T.i_flux AS color "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
    "AND O.type = GALAXY"
)

DROPOUT_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
)


def make_fed(**kw):
    config = dict(
        n_bodies=500,
        seed=11,
        sky_field=SkyField(185.0, -0.5, 1800.0),
    )
    config.update(kw)
    return build_federation(FederationConfig(**config))


def submit(fed, sql):
    start = fed.network.clock.now
    result = fed.portal.submit(sql)
    return result, fed.network.clock.now - start


# -- result equivalence ---------------------------------------------------------


@pytest.mark.parametrize("sql", [XMATCH_SQL, DROPOUT_SQL])
@pytest.mark.parametrize("wire_format", ["columnar", "rows"])
def test_modes_return_identical_results(sql, wire_format):
    reference, _ = submit(make_fed(), sql)
    pipelined, _ = submit(
        make_fed(
            chain_mode="pipelined",
            stream_batch_size=32,
            stream_wire_format=wire_format,
        ),
        sql,
    )
    assert pipelined.columns == reference.columns
    assert pipelined.rows == reference.rows  # byte-identical, same order
    assert pipelined.matched_tuples == reference.matched_tuples


def test_streaming_stats_match_store_forward_counters():
    reference, _ = submit(make_fed(), XMATCH_SQL)
    pipelined, _ = submit(
        make_fed(chain_mode="pipelined", stream_batch_size=16), XMATCH_SQL
    )
    assert len(pipelined.node_stats) == len(reference.node_stats)
    for stream_stats, classic in zip(
        pipelined.node_stats, reference.node_stats
    ):
        assert stream_stats["archive"] == classic["archive"]
        assert stream_stats["role"] == classic["role"]
        assert stream_stats["tuples_in"] == classic["tuples_in"]
        assert stream_stats["tuples_out"] == classic["tuples_out"]
        # Batch-granular accounting: per-batch rows sum to the total.
        assert stream_stats["batches"] >= 1
        assert sum(stream_stats["batch_rows"]) == stream_stats["tuples_out"]
        assert len(stream_stats["batch_rows"]) == stream_stats["batches"]


def test_batch_size_one_still_identical():
    reference, _ = submit(make_fed(n_bodies=120), XMATCH_SQL)
    pipelined, _ = submit(
        make_fed(n_bodies=120, chain_mode="pipelined", stream_batch_size=1),
        XMATCH_SQL,
    )
    assert pipelined.rows == reference.rows


# -- the makespan claim ---------------------------------------------------------


def test_pipelined_strictly_faster_when_transfer_dominates():
    # A slow link and a wide unfiltered query make payload bytes, not
    # per-hop latency, the bottleneck: the regime pipelining exists for.
    sql = (
        "SELECT O.object_id, O.ra, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
        "FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T, P) < 3.5"
    )
    slow = dict(default_bandwidth_bps=25_000.0)
    _, classic_makespan = submit(make_fed(**slow), sql)
    _, stream_makespan = submit(
        make_fed(chain_mode="pipelined", stream_batch_size=64, **slow), sql
    )
    assert stream_makespan < classic_makespan


def test_makespan_is_clock_delta_not_summed_seconds():
    fed = make_fed(chain_mode="pipelined", stream_batch_size=32)
    _, makespan = submit(fed, XMATCH_SQL)
    # parallel() pools batch branches: the clock advances by the slowest
    # branch while simulated_seconds sums every message regardless.
    assert makespan < fed.network.metrics.simulated_seconds


# -- stream protocol ordering ----------------------------------------------------


def open_stream(fed, sql, batch_size=8):
    plan_wire = fed.portal.explain(sql)["plan"]
    url = plan_wire["steps"][0]["url"]
    proxy = fed.portal.proxy(url)
    opened = proxy.call(
        "OpenStream",
        plan=plan_wire,
        position=0,
        batch_size=batch_size,
        wire_format="columnar",
    )
    return proxy, opened["stream_id"], opened["batch_count"]


def test_out_of_order_pull_rejected():
    fed = make_fed()
    proxy, stream_id, batch_count = open_stream(fed, XMATCH_SQL)
    assert batch_count >= 2
    with pytest.raises(SoapFaultError, match="out of order"):
        proxy.call("PullBatch", stream_id=stream_id, seq=1)
    # The stream is still usable at the expected sequence afterwards.
    response = proxy.call("PullBatch", stream_id=stream_id, seq=0)
    assert response["batch"] == 0


def test_duplicate_pull_served_from_cache_without_reprocessing():
    fed = make_fed()
    proxy, stream_id, batch_count = open_stream(fed, XMATCH_SQL)
    first = proxy.call("PullBatch", stream_id=stream_id, seq=0)
    again = proxy.call("PullBatch", stream_id=stream_id, seq=0)
    assert again["rows"].rows == first["rows"].rows  # idempotent re-serve
    # Drain the rest; the final stats must count every batch exactly once
    # even though batch 0 was delivered twice.
    for seq in range(1, batch_count):
        final = proxy.call("PullBatch", stream_id=stream_id, seq=seq)
    stats = final["stats"][-1]
    assert sum(stats["batch_rows"]) == stats["tuples_out"]


def test_stale_duplicate_and_overrun_pulls_rejected():
    fed = make_fed()
    proxy, stream_id, batch_count = open_stream(fed, XMATCH_SQL)
    for seq in range(batch_count):
        proxy.call("PullBatch", stream_id=stream_id, seq=seq)
    # A batch older than the cached one is gone for good.
    if batch_count >= 2:
        with pytest.raises(SoapFaultError, match="out of order"):
            proxy.call("PullBatch", stream_id=stream_id, seq=0)
    # Pulling past the end is out of order too.
    with pytest.raises(SoapFaultError, match="out of order"):
        proxy.call("PullBatch", stream_id=stream_id, seq=batch_count)


def test_unknown_stream_rejected():
    fed = make_fed()
    proxy, _, _ = open_stream(fed, XMATCH_SQL)
    with pytest.raises(SoapFaultError, match="unknown stream"):
        proxy.call("PullBatch", stream_id="nope-s99", seq=0)


# -- faults and retries ----------------------------------------------------------


def retry_config(**kw):
    return dict(
        retry_policy=RetryPolicy(
            max_attempts=4, timeout_s=5.0, base_backoff_s=0.1,
            max_backoff_s=1.0, jitter=0.0, seed=3,
        ),
        chain_mode="pipelined",
        stream_batch_size=32,
        **kw,
    )


def test_dropped_batch_response_retried_without_duplication():
    baseline, _ = submit(make_fed(**retry_config()), XMATCH_SQL)

    fed = make_fed(**retry_config())
    order = fed.portal.explain(XMATCH_SQL)["plan"]["steps"]
    first = fed.nodes[order[0]["archive"]].hostname
    second = fed.nodes[order[1]["archive"]].hostname
    # Drop the next two responses on the first chain hop: the OpenStream
    # cascade's and the first PullBatch's. Each retry must resume the
    # stream (cached re-serve) rather than restart the whole chain.
    fed.network.set_fault_plan(
        FaultPlan(seed=1).drop_responses(src=second, dst=first, first_n=2)
    )
    result, _ = submit(fed, XMATCH_SQL)

    assert result.rows == baseline.rows
    assert result.columns == baseline.columns
    metrics = fed.network.metrics
    assert metrics.fault_count("response-drop") == 2
    assert metrics.retries > 0
    # A retried OpenStream may orphan a downstream stream; the TTL reaps
    # it instead of pinning tuples forever.
    fed.network.clock.advance(601.0)
    for node in fed.nodes.values():
        node.crossmatch._reap_streams()
        assert node.crossmatch.open_streams == 0


def test_pipelined_whole_chain_retry_on_unretried_fault():
    # Without a per-hop retry policy a dropped response kills the stream;
    # the executor's chain-level recovery must still answer correctly.
    fed = make_fed(chain_mode="pipelined", stream_batch_size=32)
    baseline, _ = submit(make_fed(chain_mode="pipelined",
                                  stream_batch_size=32), XMATCH_SQL)
    order = fed.portal.explain(XMATCH_SQL)["plan"]["steps"]
    first = fed.nodes[order[0]["archive"]].hostname
    second = fed.nodes[order[1]["archive"]].hostname
    # Inter-node links carry only chain traffic, so the drop hits the
    # stream itself (not the portal's probes or performance queries).
    fed.network.set_fault_plan(
        FaultPlan(seed=1).drop_responses(src=second, dst=first, first_n=1)
    )
    result, _ = submit(fed, XMATCH_SQL)
    assert result.rows == baseline.rows
    assert fed.network.metrics.fault_count("response-drop") == 1


# -- server-side stream hygiene --------------------------------------------------


def test_clean_run_leaves_no_stream_state():
    fed = make_fed(chain_mode="pipelined", stream_batch_size=32)
    submit(fed, XMATCH_SQL)
    for node in fed.nodes.values():
        assert node.crossmatch.open_streams == 0
        assert node.crossmatch.sender.pending_transfers == 0
        assert node.query.sender.pending_transfers == 0
    assert fed.network.metrics.reclaimed_transfers == 0


def test_abort_stream_cascades_down_the_chain():
    fed = make_fed()
    proxy, stream_id, _ = open_stream(fed, XMATCH_SQL)
    assert sum(n.crossmatch.open_streams for n in fed.nodes.values()) == 3
    assert proxy.call("AbortStream", stream_id=stream_id)["aborted"] is True
    assert sum(n.crossmatch.open_streams for n in fed.nodes.values()) == 0
    assert fed.network.metrics.reclaimed_transfers == 3
    # Idempotent: aborting again is a no-op, not an error.
    assert proxy.call("AbortStream", stream_id=stream_id)["aborted"] is False


def test_abandoned_stream_expires_against_the_clock():
    fed = make_fed()
    proxy, stream_id, _ = open_stream(fed, XMATCH_SQL)
    fed.network.clock.advance(601.0)
    with pytest.raises(SoapFaultError, match="unknown stream"):
        proxy.call("PullBatch", stream_id=stream_id, seq=0)
    assert fed.network.metrics.reclaimed_transfers >= 1
