"""Direct tests of the sp_xmatch stored procedure."""

import random

import pytest

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import QueryError
from repro.skynode.xmatch_proc import PROCEDURE_NAME, register_xmatch_procedure
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.random import perturb_gaussian
from repro.sphere.regions import Cap
from repro.sql.parser import parse_expression
from repro.units import arcsec_to_rad
from repro.xmatch.chi2 import Accumulator


@pytest.fixture()
def db():
    database = Database("arch", page_size=16)
    database.create_table(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
            Column("flux", ColumnType.FLOAT),
        ],
        spatial=SpatialSpec("ra", "dec", htm_depth=12),
    )
    register_xmatch_procedure(database)
    return database


def insert_objects(db, positions, fluxes=None):
    rows = []
    for i, position in enumerate(positions, start=1):
        ra, dec = vector_to_radec(position)
        flux = fluxes[i - 1] if fluxes else 10.0
        rows.append((i, ra, dec, flux))
    db.insert("objects", rows)


def make_temp(db, accumulators):
    temp = db.create_temp_table(
        "xm",
        [
            Column("seq", ColumnType.INT, nullable=False),
            Column("a", ColumnType.FLOAT, nullable=False),
            Column("ax", ColumnType.FLOAT, nullable=False),
            Column("ay", ColumnType.FLOAT, nullable=False),
            Column("az", ColumnType.FLOAT, nullable=False),
        ],
    )
    for seq, acc in enumerate(accumulators):
        temp.insert((seq, acc.a, acc.ax, acc.ay, acc.az))
    return temp


def call_proc(db, temp, **overrides):
    params = dict(
        temp_table=temp.name,
        primary_table="objects",
        id_column="object_id",
        ra_column="ra",
        dec_column="dec",
        alias="X",
        sigma_arcsec=0.5,
        threshold=3.5,
        area=None,
        residual=None,
        attr_columns=(),
    )
    params.update(overrides)
    return db.call_procedure(PROCEDURE_NAME, **params)


def test_finds_nearby_object(db):
    rng = random.Random(1)
    true = radec_to_vector(185.0, -0.5)
    sigma = arcsec_to_rad(0.5)
    insert_objects(db, [perturb_gaussian(rng, true, sigma)])
    incoming = Accumulator.of_observation(
        perturb_gaussian(rng, true, sigma), sigma
    )
    temp = make_temp(db, [incoming])
    result = call_proc(db, temp)
    assert 0 in result.matches
    assert result.matches[0][0].object_id == 1
    assert result.stats.tuples_in == 1


def test_rejects_distant_object(db):
    sigma = arcsec_to_rad(0.5)
    insert_objects(db, [radec_to_vector(185.1, -0.5)])  # 360 arcsec away
    incoming = Accumulator.of_observation(radec_to_vector(185.0, -0.5), sigma)
    temp = make_temp(db, [incoming])
    result = call_proc(db, temp)
    assert result.matches == {}


def test_area_filters_candidates(db):
    sigma = arcsec_to_rad(0.5)
    position = radec_to_vector(185.0, -0.5)
    insert_objects(db, [position])
    incoming = Accumulator.of_observation(position, sigma)
    temp = make_temp(db, [incoming])
    far_area = Cap.from_radec(10.0, 10.0, 60.0)
    result = call_proc(db, temp, area=far_area)
    assert result.matches == {}


def test_residual_filters_candidates(db):
    sigma = arcsec_to_rad(0.5)
    position = radec_to_vector(185.0, -0.5)
    insert_objects(db, [position], fluxes=[5.0])
    incoming = Accumulator.of_observation(position, sigma)
    temp = make_temp(db, [incoming])
    passing = call_proc(db, temp, residual=parse_expression("X.flux > 1"))
    failing = call_proc(
        db, make_temp(db, [incoming]), residual=parse_expression("X.flux > 9")
    )
    assert 0 in passing.matches
    assert failing.matches == {}


def test_attr_columns_carried(db):
    sigma = arcsec_to_rad(0.5)
    position = radec_to_vector(185.0, -0.5)
    insert_objects(db, [position], fluxes=[7.5])
    temp = make_temp(db, [Accumulator.of_observation(position, sigma)])
    result = call_proc(db, temp, attr_columns=("flux",))
    assert result.matches[0][0].attributes == {"flux": 7.5}


def test_multiple_tuples_and_candidates(db):
    rng = random.Random(3)
    sigma = arcsec_to_rad(0.5)
    a = radec_to_vector(185.0, -0.5)
    b = radec_to_vector(185.05, -0.45)
    insert_objects(
        db,
        [perturb_gaussian(rng, a, sigma), perturb_gaussian(rng, b, sigma)],
    )
    temp = make_temp(
        db,
        [
            Accumulator.of_observation(perturb_gaussian(rng, a, sigma), sigma),
            Accumulator.of_observation(perturb_gaussian(rng, b, sigma), sigma),
        ],
    )
    result = call_proc(db, temp)
    assert set(result.matches) == {0, 1}
    assert result.matches[0][0].object_id == 1
    assert result.matches[1][0].object_id == 2


def test_requires_spatial_primary(db):
    db.create_table("flat", [Column("object_id", ColumnType.INT)])
    temp = make_temp(db, [])
    with pytest.raises(QueryError):
        call_proc(db, temp, primary_table="flat")


def test_stats_counters(db):
    rng = random.Random(4)
    sigma = arcsec_to_rad(0.5)
    true = radec_to_vector(185.0, -0.5)
    insert_objects(db, [perturb_gaussian(rng, true, sigma) for _ in range(5)])
    temp = make_temp(
        db, [Accumulator.of_observation(perturb_gaussian(rng, true, sigma), sigma)]
    )
    result = call_proc(db, temp)
    assert result.stats.tuples_in == 1
    assert result.stats.candidates_tested >= result.stats.matches_found
    assert result.stats.rows_examined >= result.stats.candidates_tested


def make_crowded(db, seed=7, n=40):
    """A crowded field plus incoming tuples over the same bodies."""
    rng = random.Random(seed)
    sigma = arcsec_to_rad(0.5)
    center = radec_to_vector(185.0, -0.5)
    from repro.sphere.random import random_in_cap

    bodies = [random_in_cap(rng, center, arcsec_to_rad(400.0)) for _ in range(n)]
    insert_objects(
        db,
        [perturb_gaussian(rng, b, sigma) for b in bodies],
        fluxes=[float(i) for i in range(n)],
    )
    incoming = [
        Accumulator.of_observation(perturb_gaussian(rng, b, sigma), sigma)
        for b in bodies
    ]
    return incoming


def snapshot(result):
    return (
        {
            seq: [(o.object_id, o.position, sorted(o.attributes.items()))
                  for o in matched]
            for seq, matched in result.matches.items()
        },
        (result.stats.tuples_in, result.stats.candidates_tested,
         result.stats.rows_examined, result.stats.matches_found),
    )


@pytest.mark.parametrize("overrides", [
    {},
    {"area": Cap.from_radec(185.0, -0.5, 300.0)},
    {"residual": parse_expression("X.flux > 10")},
    {"attr_columns": ("flux",)},
])
def test_vectorized_kernel_matches_scalar(db, overrides):
    """Both kernels: identical matches, stats, and buffer-pool traffic."""
    results = {}
    for kernel in ("scalar", "vectorized"):
        database = Database("arch", page_size=16)
        database.create_table(
            "objects",
            [
                Column("object_id", ColumnType.INT, nullable=False),
                Column("ra", ColumnType.FLOAT, nullable=False),
                Column("dec", ColumnType.FLOAT, nullable=False),
                Column("flux", ColumnType.FLOAT),
            ],
            spatial=SpatialSpec("ra", "dec", htm_depth=12),
        )
        register_xmatch_procedure(database)
        incoming = make_crowded(database)
        temp = make_temp(database, incoming)
        result = call_proc(database, temp, kernel=kernel, **overrides)
        stats = database.buffer.stats
        results[kernel] = (
            snapshot(result), stats.logical_reads, stats.physical_reads
        )
    assert results["vectorized"] == results["scalar"]
    (matches, _), _, _ = results["vectorized"]
    assert matches  # the scenario is non-trivial


def test_vectorized_kernel_empty_temp(db):
    temp = make_temp(db, [])
    result = call_proc(db, temp, kernel="vectorized")
    assert result.matches == {} and result.stats.tuples_in == 0


def test_unknown_kernel_rejected(db):
    temp = make_temp(db, [])
    with pytest.raises(QueryError):
        call_proc(db, temp, kernel="simd")


@pytest.mark.parametrize("overrides", [
    {},
    {"area": Cap.from_radec(185.0, -0.5, 300.0)},
    {"residual": parse_expression("X.flux > 10")},
    {"attr_columns": ("flux",)},
])
def test_all_engine_kernel_combos_agree(overrides):
    """htm/zone x scalar/vectorized: identical matches, stats, and
    buffer-pool traffic across all four combinations."""
    results = {}
    for engine in ("htm", "zone"):
        for kernel in ("scalar", "vectorized"):
            database = Database("arch", page_size=16)
            database.create_table(
                "objects",
                [
                    Column("object_id", ColumnType.INT, nullable=False),
                    Column("ra", ColumnType.FLOAT, nullable=False),
                    Column("dec", ColumnType.FLOAT, nullable=False),
                    Column("flux", ColumnType.FLOAT),
                ],
                spatial=SpatialSpec("ra", "dec", htm_depth=12),
            )
            register_xmatch_procedure(database)
            incoming = make_crowded(database)
            temp = make_temp(database, incoming)
            result = call_proc(
                database, temp, kernel=kernel, engine=engine, **overrides
            )
            stats = database.buffer.stats
            results[(engine, kernel)] = (
                snapshot(result), stats.logical_reads, stats.physical_reads
            )
    baseline = results[("htm", "scalar")]
    for combo, outcome in results.items():
        assert outcome == baseline, combo
    (matches, _), _, _ = baseline
    assert matches  # the scenario is non-trivial


def test_zone_engine_empty_temp(db):
    temp = make_temp(db, [])
    result = call_proc(db, temp, engine="zone")
    assert result.matches == {} and result.stats.tuples_in == 0


def test_unknown_engine_rejected(db):
    temp = make_temp(db, [])
    with pytest.raises(QueryError, match="unknown match engine"):
        call_proc(db, temp, engine="rtree")


def test_vectorized_kernel_alternate_position_columns():
    """A caller naming non-spatial position columns takes the row-by-row
    fallback and still agrees with the scalar loop."""
    results = {}
    for kernel in ("scalar", "vectorized"):
        database = Database("arch", page_size=16)
        database.create_table(
            "objects",
            [
                Column("object_id", ColumnType.INT, nullable=False),
                Column("ra", ColumnType.FLOAT, nullable=False),
                Column("dec", ColumnType.FLOAT, nullable=False),
                Column("ra2", ColumnType.FLOAT),
                Column("dec2", ColumnType.FLOAT),
            ],
            spatial=SpatialSpec("ra", "dec", htm_depth=12),
        )
        register_xmatch_procedure(database)
        rng = random.Random(11)
        sigma = arcsec_to_rad(0.5)
        center = radec_to_vector(185.0, -0.5)
        from repro.sphere.random import random_in_cap

        bodies = [random_in_cap(rng, center, arcsec_to_rad(300.0))
                  for _ in range(15)]
        rows = []
        for i, body in enumerate(bodies, start=1):
            ra, dec = vector_to_radec(perturb_gaussian(rng, body, sigma))
            rows.append((i, ra, dec, ra, dec))
        database.insert("objects", rows)
        incoming = [
            Accumulator.of_observation(perturb_gaussian(rng, b, sigma), sigma)
            for b in bodies
        ]
        temp = make_temp(database, incoming)
        result = database.call_procedure(
            PROCEDURE_NAME,
            temp_table=temp.name,
            primary_table="objects",
            id_column="object_id",
            ra_column="ra2",
            dec_column="dec2",
            alias="X",
            sigma_arcsec=0.5,
            threshold=3.5,
            area=None,
            residual=None,
            attr_columns=(),
            kernel=kernel,
        )
        results[kernel] = snapshot(result)
    assert results["vectorized"] == results["scalar"]
