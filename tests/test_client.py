"""The client API and result formatting."""

import pytest

from repro.client.formatting import format_table

SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
)


def test_client_result_fields(small_federation):
    result = small_federation.client().submit(SQL)
    assert result.columns == ["O.object_id", "T.obj_id"]
    assert len(result) == len(result.rows)
    assert result.matched_tuples >= len(result)
    assert set(result.counts) == {"O", "T"}
    assert result.plan is not None
    assert len(result.node_stats) == 2


def test_client_to_dicts(small_federation):
    result = small_federation.client().submit(SQL)
    dicts = result.to_dicts()
    assert len(dicts) == len(result)
    assert set(dicts[0]) == {"O.object_id", "T.obj_id"}


def test_client_traffic_tagged(fresh_metrics):
    fed = fresh_metrics
    fed.client().submit(SQL)
    assert fed.network.metrics.message_count(phase="client") == 2


def test_client_strategy_passthrough(small_federation):
    result = small_federation.client().submit(SQL, strategy="count_asc")
    counts = [
        s["count_star"] for s in result.plan["steps"] if not s["dropout"]
    ]
    assert counts == sorted(counts)


def test_format_table_basic():
    text = format_table(["a", "bb"], [(1, "x"), (22, None)])
    lines = text.splitlines()
    assert lines[0].split("|")[0].strip() == "a"
    assert "NULL" in text
    assert "-+-" in lines[1]


def test_format_table_elision():
    text = format_table(["a"], [(i,) for i in range(10)], max_rows=3)
    assert "7 more rows" in text
    assert text.count("\n") == 5  # header + sep + 3 rows + elision


def test_format_table_floats():
    text = format_table(["v"], [(1.23456789,)])
    assert "1.23457" in text


def test_format_table_empty():
    text = format_table(["a", "b"], [])
    assert "a" in text and "b" in text


def test_federation_info(small_federation):
    info = small_federation.client().federation_info()
    assert info["federation_size"] == 3
    archives = {a["archive"]: a for a in info["archives"]}
    assert set(archives) == {"FIRST", "SDSS", "TWOMASS"}
    sdss = archives["SDSS"]
    assert sdss["primary_table"] == "Photo_Object"
    assert sdss["sigma_arcsec"] == 0.1
    assert "Photo_Object" in sdss["tables"]
    assert sdss["object_count"] > 0
    assert sdss["footprint_ra_deg"] is None  # all-sky in the default build
