"""Property-based tests: deadlines and cancellation leave no trace.

The contract, stated as a property: for ANY deadline placed anywhere in a
query's lifetime, across both chain modes and both match engines, the
outcome is one of exactly two shapes — a complete answer byte-identical
to an unbudgeted oracle twin, or a degraded empty answer carrying a
"deadline exceeded" warning — and in the degraded case the federation
holds ZERO residual state for the cancelled query (no streams, no
checkpoints, no chunked transfers, on primaries or replicas), and a
follow-up query on the same federation returns exactly what the oracle
twin returns. Cancellation never perturbs a neighbour.

Overrun-completed queries (budget spent, but no budget-checked operation
dispatched after expiry) legitimately keep their checkpoints: that is
resume state for a *finished* query, reclaimed by TTL, not a leak.

Seeded via ``SKYQUERY_CHAOS_SEED`` like the other property suites so the
CI chaos matrix explores different bodies and deadline placements.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation.builder import FederationConfig, build_federation
from repro.workloads.skysim import SkyField

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))
N_BODIES = 100

SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)

COMBOS = [
    ("store-forward", "htm"),
    ("store-forward", "zone"),
    ("pipelined", "htm"),
    ("pipelined", "zone"),
]


def _build(chain_mode, match_engine):
    config = FederationConfig(
        n_bodies=N_BODIES,
        seed=37 + CHAOS_SEED,
        sky_field=SkyField(185.0, -0.5, 1800.0),
        chain_mode=chain_mode,
        chunk_budget_bytes=1024,
        replicas=1,
    )
    config.match_engine = match_engine
    federation = build_federation(config)
    # A bounded pull window makes pipelined chains re-check the budget at
    # every batch wave instead of only at stream open.
    federation.portal.stream_pull_window = 2
    return federation


def _all_nodes(federation):
    nodes = list(federation.nodes.values())
    for group in federation.replicas.values():
        nodes.extend(group)
    return nodes


def _residuals(federation, qid):
    leftovers = []
    for node in _all_nodes(federation):
        crossmatch = node.crossmatch
        for sid, stream in crossmatch._streams.items():
            if stream.qid == qid and not stream.done:
                leftovers.append((node.hostname, "stream", sid))
        for key in crossmatch._checkpoints:
            if key.startswith(f"{qid}:"):
                leftovers.append((node.hostname, "checkpoint", key))
        for sender in (crossmatch.sender, node.query.sender):
            for tid, owner in sender._owners.items():
                if owner == qid:
                    leftovers.append((node.hostname, "transfer", tid))
    return leftovers


_oracles = {}


def _oracle(chain_mode, match_engine):
    """One oracle run per combo: the full answer and its wall duration."""
    key = (chain_mode, match_engine)
    if key not in _oracles:
        federation = _build(chain_mode, match_engine)
        t0 = federation.network.clock.now
        result = federation.portal.submit(SQL)
        _oracles[key] = (result, federation.network.clock.now - t0)
    return _oracles[key]


@pytest.mark.parametrize("chain_mode,match_engine", COMBOS)
@given(fraction=st.floats(min_value=0.0, max_value=1.5))
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_deadline_leaves_zero_residual_state(
    chain_mode, match_engine, fraction
):
    oracle_result, duration = _oracle(chain_mode, match_engine)
    federation = _build(chain_mode, match_engine)
    portal = federation.portal
    qid = f"{portal.hostname}-q{portal.queries_served + 1}"
    deadline = federation.network.clock.now + fraction * duration
    result = portal.submit(SQL, deadline_s=deadline)

    expired = result.degraded and any(
        "deadline exceeded" in w for w in result.warnings
    )
    if expired:
        # Shape one: a typed degraded answer, never a partial row set —
        # and nothing left behind anywhere in the federation.
        assert result.rows == []
        assert _residuals(federation, qid) == []
        for node in _all_nodes(federation):
            assert not any(
                not s.done and s.qid == qid
                for s in node.crossmatch._streams.values()
            )
    else:
        # Shape two: the complete oracle answer (possibly a cooperative
        # overrun, but never a truncated one).
        assert result.rows == oracle_result.rows
        assert result.columns == oracle_result.columns
        assert result.counts == oracle_result.counts
        assert not result.warnings

    # Non-perturbation: the same federation still answers a fresh
    # unbudgeted query exactly like the oracle twin did.
    follow_up = portal.submit(SQL)
    assert follow_up.rows == oracle_result.rows
    assert follow_up.counts == oracle_result.counts
    assert not follow_up.degraded and not follow_up.warnings


@pytest.mark.parametrize("chain_mode,match_engine", COMBOS)
def test_generous_deadline_identical_to_oracle(chain_mode, match_engine):
    oracle_result, _ = _oracle(chain_mode, match_engine)
    federation = _build(chain_mode, match_engine)
    result = federation.portal.submit(
        SQL, deadline_s=federation.network.clock.now + 1e9
    )
    assert result.rows == oracle_result.rows
    assert result.columns == oracle_result.columns
    assert result.counts == oracle_result.counts
    assert result.epochs == oracle_result.epochs
    assert result.warnings == oracle_result.warnings
    assert not result.degraded
