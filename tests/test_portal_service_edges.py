"""Portal service edge cases and multi-client behaviour."""

import pytest

from repro.errors import SoapFaultError
from repro.services.client import ServiceProxy

SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
)


def portal_proxy(fed):
    return ServiceProxy(
        fed.network, "tester", fed.portal.service_url("skyquery")
    )


def test_unknown_strategy_faults(small_federation):
    with pytest.raises(SoapFaultError):
        portal_proxy(small_federation).call(
            "SubmitQuery", sql=SQL, strategy="not_a_strategy"
        )


def test_validation_errors_become_client_faults(small_federation):
    with pytest.raises(SoapFaultError) as err:
        portal_proxy(small_federation).call(
            "SubmitQuery",
            sql="SELECT a.x FROM SDSS:Photo_Object a, TWOMASS:Photo_Primary b "
                "WHERE a.x = b.y",  # multi-archive without XMATCH
            strategy="",
        )
    assert "XMATCH" in str(err.value)


def test_portal_wsdl_lists_operations(small_federation):
    proxy = portal_proxy(small_federation)
    description = proxy.fetch_wsdl()
    names = {op.name for op in description.operations}
    assert {"SubmitQuery", "ExplainQuery", "GetFederation"} <= names


def test_registration_wsdl(small_federation):
    proxy = ServiceProxy(
        small_federation.network,
        "tester",
        small_federation.portal.service_url("registration"),
    )
    names = {op.name for op in proxy.fetch_wsdl().operations}
    assert {"Register", "Unregister"} <= names


def test_queries_served_counter(small_federation):
    before = small_federation.portal.queries_served
    small_federation.client().submit(SQL)
    small_federation.client().submit(SQL)
    assert small_federation.portal.queries_served == before + 2


def test_two_clients_interleaved(small_federation):
    """Two client hosts submitting the same query get identical answers."""
    first = small_federation.client("alice.example.org")
    second = small_federation.client("bob.example.org")
    result_a = first.submit(SQL)
    result_b = second.submit(SQL)
    assert sorted(result_a.rows) == sorted(result_b.rows)


def test_concurrent_clients_makespan(small_federation):
    """Under parallel dispatch, two whole queries overlap on the clock."""
    network = small_federation.network
    client_a = small_federation.client("alice.example.org")
    client_b = small_federation.client("bob.example.org")

    start = network.clock.now
    client_a.submit(SQL)
    sequential_elapsed = network.clock.now - start

    start = network.clock.now
    with network.parallel():
        client_a.submit(SQL)
        client_b.submit(SQL)
    parallel_elapsed = network.clock.now - start
    # Two full queries in roughly the time of one (plus noise).
    assert parallel_elapsed < sequential_elapsed * 1.7


def test_unregistered_federation_rejects_queries():
    from repro.portal.portal import Portal
    from repro.transport.network import SimulatedNetwork
    from repro.client.client import SkyQueryClient

    network = SimulatedNetwork()
    portal = Portal()
    portal.attach(network)
    client = SkyQueryClient(network, portal.service_url("skyquery"))
    with pytest.raises(SoapFaultError) as err:
        client.submit(SQL)
    assert "not registered" in str(err.value)
