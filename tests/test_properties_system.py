"""Property-based tests over the higher layers (hypothesis)."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.portal.plan import ExecutionPlan, PlanStep
from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import angular_separation
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.sql.ast import AreaClause, PolygonClause
from repro.units import arcsec_to_rad
from repro.xmatch.stream import in_memory_search, run_chain
from repro.xmatch.tuples import LocalObject


# -- the distributed matcher against a brute-force oracle ----------------------------


def brute_force_matches(archives, threshold):
    """Exhaustive N-way cross product + chi-squared test (the oracle)."""
    from itertools import product

    from repro.xmatch.chi2 import Accumulator

    results = set()
    object_lists = [objs for _, objs, _, _ in archives]
    sigmas = [sigma for _, _, sigma, _ in archives]
    aliases = [alias for alias, _, _, _ in archives]
    for combo in product(*object_lists):
        acc = Accumulator.empty()
        for obj, sigma in zip(combo, sigmas):
            acc = acc.with_observation(obj.position, sigma)
        if acc.accepts(threshold):
            results.add(
                frozenset(zip(aliases, (o.object_id for o in combo)))
            )
    return results


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 10_000),
    n_bodies=st.integers(2, 12),
    threshold=st.sampled_from([1.0, 2.0, 3.5]),
    sigma_scale=st.floats(0.1, 2.0),
)
def test_chain_matches_brute_force_oracle(seed, n_bodies, threshold, sigma_scale):
    """The incremental chain finds exactly the oracle's match set.

    (Chi-squared decisions within ~1e-3 of the threshold boundary can
    legitimately differ due to the documented accumulator cancellation, so
    bodies are kept comfortably separated.)
    """
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    bodies = [
        random_in_cap(rng, center, arcsec_to_rad(120.0))
        for _ in range(n_bodies)
    ]
    archives = []
    for alias, base_sigma in (("A", 0.2), ("B", 0.5), ("C", 1.0)):
        sigma = arcsec_to_rad(base_sigma * sigma_scale)
        objects = [
            LocalObject(i, perturb_gaussian(rng, body, sigma))
            for i, body in enumerate(bodies)
            if rng.random() < 0.8
        ]
        archives.append((alias, objects, sigma, False))
    if not archives[0][1]:
        return  # seeding archive saw nothing; trivially empty either way

    chain = {
        frozenset(t.members)
        for t in run_chain(archives, threshold)
    }
    oracle = brute_force_matches(archives, threshold)
    # Allow knife-edge disagreements only: every symmetric-difference
    # member must sit within 2% of the chi-squared boundary.
    disagreements = chain ^ oracle
    if disagreements:
        from repro.xmatch.chi2 import Accumulator

        lookup = {
            alias: {o.object_id: o for o in objs}
            for alias, objs, _, _ in archives
        }
        sigmas = {alias: sigma for alias, _, sigma, _ in archives}
        for members in disagreements:
            acc = Accumulator.empty()
            for alias, object_id in members:
                obj = lookup[alias][object_id]
                acc = acc.with_observation(obj.position, sigmas[alias])
            assert abs(acc.chi2() - threshold**2) < 0.02 * threshold**2, (
                f"non-boundary disagreement: {members}"
            )


# -- plan wire roundtrip over random plans -------------------------------------------

_ident = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)

_step_strategy = st.builds(
    PlanStep,
    alias=_ident,
    archive=_ident,
    url=st.just("http://node/crossmatch"),
    sigma_arcsec=st.floats(0.01, 10.0, allow_nan=False),
    dropout=st.just(False),
    count_star=st.one_of(st.none(), st.integers(0, 10**9)),
    table=_ident,
    id_column=_ident,
    ra_column=_ident,
    dec_column=_ident,
    residual_sql=st.sampled_from(["", "O.type = GALAXY", "x.flux > 2.5"]),
    attr_select=st.lists(
        st.tuples(_ident, _ident, st.sampled_from(["int", "double", "string"])),
        max_size=4,
    ).map(tuple),
    sql=st.text(max_size=40).filter(lambda s: "\r" not in s),
)

_area_strategy = st.one_of(
    st.none(),
    st.builds(
        AreaClause,
        ra_deg=st.floats(0, 360, allow_nan=False),
        dec_deg=st.floats(-90, 90, allow_nan=False),
        radius_arcsec=st.floats(0.1, 7200, allow_nan=False),
    ),
    st.builds(
        PolygonClause,
        vertices=st.lists(
            st.tuples(
                st.floats(0, 360, allow_nan=False),
                st.floats(-89, 89, allow_nan=False),
            ),
            min_size=3,
            max_size=6,
        ).map(tuple),
    ),
)


@settings(max_examples=50)
@given(
    steps=st.lists(_step_strategy, min_size=1, max_size=5).map(tuple),
    threshold=st.floats(0.1, 10.0, allow_nan=False),
    area=_area_strategy,
)
def test_plan_wire_roundtrip(steps, threshold, area):
    plan = ExecutionPlan(steps=steps, threshold=threshold, area=area)
    # Through the actual SOAP text, not just the struct form.
    from repro.soap.envelope import build_rpc_request, parse_rpc_request

    text = build_rpc_request("PerformXMatch", {"plan": plan.to_wire()})
    _, params = parse_rpc_request(text)
    assert ExecutionPlan.from_wire(params["plan"]) == plan


# -- engine ORDER BY / LIMIT against a python reference ----------------------------


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.one_of(st.none(), st.integers(-100, 100)), min_size=0, max_size=30
    ),
    descending=st.booleans(),
    limit=st.one_of(st.none(), st.integers(0, 10)),
)
def test_engine_order_by_matches_python_sort(values, descending, limit):
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.types import ColumnType

    db = Database("p")
    db.create_table(
        "t",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("v", ColumnType.INT),
        ],
    )
    db.insert("t", [(i, v) for i, v in enumerate(values)])
    direction = " DESC" if descending else ""
    limit_sql = f" LIMIT {limit}" if limit is not None else ""
    result = db.execute(
        f"SELECT t.v FROM t ORDER BY t.v{direction}, t.object_id{limit_sql}"
    )
    got = [row[0] for row in result.rows]

    none_key = (0, 0) if not descending else (1, 0)

    def key(v):
        return (0 if v is None else 1, 0 if v is None else v)

    expected = sorted(values, key=key, reverse=descending)
    if limit is not None:
        expected = expected[:limit]
    assert got == expected


# -- grouped aggregates against a python reference ----------------------------------


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.one_of(st.none(), st.integers(-50, 50)),
        ),
        max_size=30,
    )
)
def test_group_by_aggregates_match_python(rows):
    from collections import defaultdict

    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.types import ColumnType

    db = Database("g")
    db.create_table(
        "t",
        [
            Column("k", ColumnType.STRING, nullable=False),
            Column("v", ColumnType.INT),
        ],
    )
    db.insert("t", rows)
    result = db.execute(
        "SELECT t.k, COUNT(*), COUNT(t.v), SUM(t.v), MIN(t.v), MAX(t.v) "
        "FROM t GROUP BY t.k ORDER BY t.k"
    )
    buckets = defaultdict(list)
    for k, v in rows:
        buckets[k].append(v)
    expected = []
    for k in sorted(buckets):
        values = buckets[k]
        present = [v for v in values if v is not None]
        expected.append(
            (
                k,
                len(values),
                len(present),
                sum(present) if present else None,
                min(present) if present else None,
                max(present) if present else None,
            )
        )
    assert result.rows == expected
