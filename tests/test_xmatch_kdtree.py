"""The cKDTree candidate search vs the brute-force reference."""

import math
import random

import pytest

from repro.sphere.coords import radec_to_vector
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.units import arcsec_to_rad
from repro.xmatch.kdtree import KDTreeSearch, kdtree_search
from repro.xmatch.stream import in_memory_search, run_chain
from repro.xmatch.tuples import LocalObject


def make_objects(n=300, seed=1, radius_arcsec=1200.0):
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    return [
        LocalObject(i, random_in_cap(rng, center, arcsec_to_rad(radius_arcsec)))
        for i in range(n)
    ]


def test_kdtree_matches_brute_force_search():
    objects = make_objects()
    tree = kdtree_search(objects)
    brute = in_memory_search(objects)
    rng = random.Random(2)
    center_base = radec_to_vector(185.0, -0.5)
    for _ in range(50):
        center = random_in_cap(rng, center_base, arcsec_to_rad(1200.0))
        radius = arcsec_to_rad(rng.uniform(1.0, 300.0))
        tree_ids = {o.object_id for o in tree(center, radius)}
        brute_ids = {o.object_id for o in brute(center, radius)}
        assert tree_ids == brute_ids


def test_kdtree_empty_set():
    tree = kdtree_search([])
    assert list(tree(radec_to_vector(0.0, 0.0), 1.0)) == []
    assert len(KDTreeSearch([])) == 0


def test_kdtree_whole_sphere_radius():
    objects = make_objects(n=20)
    tree = kdtree_search(objects)
    found = list(tree(radec_to_vector(0.0, 0.0), math.pi))
    assert len(found) == 20


def test_run_chain_same_results_with_and_without_kdtree():
    rng = random.Random(5)
    center = radec_to_vector(185.0, -0.5)
    bodies = [
        random_in_cap(rng, center, arcsec_to_rad(600.0)) for _ in range(60)
    ]
    archives = []
    for alias, sigma_arcsec in (("A", 0.1), ("B", 0.4), ("C", 1.0)):
        sigma = arcsec_to_rad(sigma_arcsec)
        objects = [
            LocalObject(i, perturb_gaussian(rng, b, sigma))
            for i, b in enumerate(bodies)
            if rng.random() < 0.85
        ]
        archives.append((alias, objects, sigma, False))
    with_tree = {
        frozenset(t.members) for t in run_chain(archives, 3.5, use_kdtree=True)
    }
    without = {
        frozenset(t.members) for t in run_chain(archives, 3.5, use_kdtree=False)
    }
    assert with_tree == without


def test_kdtree_faster_on_large_sets():
    import time

    objects = make_objects(n=20000, radius_arcsec=7200.0)
    tree = kdtree_search(objects)
    brute = in_memory_search(objects)
    center = radec_to_vector(185.0, -0.5)
    radius = arcsec_to_rad(60.0)

    start = time.perf_counter()
    for _ in range(50):
        list(tree(center, radius))
    tree_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(50):
        list(brute(center, radius))
    brute_time = time.perf_counter() - start
    assert tree_time < brute_time
