"""Property-based tests for live ingest: repeatable reads (hypothesis).

The snapshot contract, stated as a property: for ANY interleaving of
ingests and queries, replaying a query pinned at the epochs it originally
read yields the identical answer — same rows, same bytes — no matter how
much the live tables have grown since. Exercised across both chain modes
and (via ``SKYQUERY_CHAOS_SEED`` in the retry seed) different simulated
timings.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.workloads.skysim import SkyField, generate_bodies, observe_survey

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)


def _build(chain_mode):
    return build_federation(
        FederationConfig(
            n_bodies=140,
            seed=11,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=11 + CHAOS_SEED,
            ),
            replicas=1,
            chain_mode=chain_mode,
            ingest=True,
            keep_epochs=8,
        )
    )


def _new_observation(fed, archive, n_rows, seed_offset):
    config = fed.config
    survey = next(s for s in config.surveys if s.archive == archive)
    observation = observe_survey(
        survey,
        generate_bodies(config.sky_field, n_rows, config.seed + seed_offset),
        config.seed + seed_offset,
    )
    columns = list(observation.rows[0].keys())
    rows = [tuple(row[c] for c in columns) for row in observation.rows]
    return survey.primary_table, columns, rows


def _table_rows(node, table_name):
    table = node.db.table(table_name)
    return sorted(tuple(table.row(pos)) for pos in table.iter_positions())


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    chain_mode=st.sampled_from(["store-forward", "pipelined"]),
    ops=st.lists(
        st.sampled_from(["ingest", "query"]), min_size=1, max_size=5
    ),
    rows_per_ingest=st.integers(5, 25),
)
def test_any_interleaving_yields_repeatable_reads(
    chain_mode, ops, rows_per_ingest
):
    """Same pinned epoch => identical rows, whatever happened in between."""
    fed = _build(chain_mode)
    client = fed.ingest_client("SDSS")
    observed = []  # (epochs, sorted rows) at the moment each query ran
    ingests = 0
    for op in ops + ["query"]:  # always at least one read to replay
        if op == "ingest":
            ingests += 1
            table, columns, rows = _new_observation(
                fed, "SDSS", rows_per_ingest, 30 + ingests
            )
            result = client.ingest_rows(
                table, columns, rows, batch_size=10
            )
            assert result.committed
            assert result.epoch == ingests
        else:
            r = fed.client().submit(XMATCH_SQL)
            assert r.epochs["O"] == ingests
            observed.append((dict(r.epochs), sorted(r.rows)))

    # Lockstep first: the mirror agrees with the primary byte for byte.
    primary = fed.node("SDSS")
    replica = fed.replicas["SDSS"][0]
    assert primary.db.committed_epoch == replica.db.committed_epoch == ingests
    table = next(
        s.primary_table for s in fed.config.surveys if s.archive == "SDSS"
    )
    assert _table_rows(primary, table) == _table_rows(replica, table)

    # Repeatable reads: every historical answer replays identically when
    # pinned at the epochs it originally read, even though later ingests
    # may have grown the live tables past it.
    for epochs, rows in observed:
        replay = fed.portal.submit(XMATCH_SQL, pin_epochs=epochs)
        assert replay.epochs == epochs
        assert sorted(replay.rows) == rows
