"""EXPLAIN plans and database persistence."""

import pytest

from repro.db.persist import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.errors import SchemaError

PAPER_SQL = (
    "SELECT O.object_id, T.obj_id, O.i_flux - T.i_flux AS color "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
    "AND O.type = GALAXY AND O.i_flux - T.i_flux > 2"
)


class TestExplain:
    def test_explain_chain_structure(self, small_federation):
        plan = small_federation.client().explain(PAPER_SQL)
        assert plan["type"] == "chain"
        assert plan["strategy"] == "count_desc"
        assert set(plan["counts"]) == {"O", "T", "P"}
        assert plan["would_execute"] is True
        assert set(plan["performance_queries"]) == {"O", "T", "P"}
        assert "COUNT(*)" in plan["performance_queries"]["O"]
        assert "O.type = GALAXY" in plan["performance_queries"]["O"]
        assert plan["cross_conjuncts"] == ["O.i_flux - T.i_flux > 2"]
        steps = plan["plan"]["steps"]
        counts = [s["count_star"] for s in steps]
        assert counts == sorted(counts, reverse=True)

    def test_explain_runs_no_chain(self, fresh_metrics):
        fed = fresh_metrics
        fed.client().explain(PAPER_SQL)
        metrics = fed.network.metrics
        assert metrics.message_count(phase="performance-query") > 0
        assert metrics.message_count(phase="crossmatch-chain") == 0

    def test_explain_zero_count_flags_no_execution(self, small_federation):
        plan = small_federation.client().explain(
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(10.0, 40.0, 300.0) AND XMATCH(O, T) < 3.5"
        )
        assert plan["would_execute"] is False

    def test_explain_bytes_strategy_includes_calibration(self, small_federation):
        plan = small_federation.client().explain(
            PAPER_SQL, strategy="bytes_desc"
        )
        assert plan["calibration"] is not None
        assert plan["calibration"]["O"]["bytes_per_row"] > 0

    def test_explain_direct_query(self, small_federation):
        plan = small_federation.client().explain(
            "SELECT t.object_id FROM SDSS:Photo_Object t LIMIT 1"
        )
        assert plan["type"] == "direct"
        assert plan["archive"] == "SDSS"
        assert plan["query_service"].endswith("/query")

    def test_explain_matches_actual_plan(self, small_federation):
        client = small_federation.client()
        explained = client.explain(PAPER_SQL)
        executed = client.submit(PAPER_SQL)
        assert [s["alias"] for s in explained["plan"]["steps"]] == [
            s["alias"] for s in executed.plan["steps"]
        ]


class TestPersistence:
    def test_roundtrip(self, tmp_path, small_federation):
        original = small_federation.node("SDSS").db
        path = tmp_path / "sdss.json"
        save_database(original, path)
        restored = load_database(path)
        assert restored.name == original.name
        assert restored.dialect == original.dialect
        assert restored.table_names() == original.table_names()
        table = original.table("Photo_Object")
        restored_table = restored.table("Photo_Object")
        assert len(restored_table) == len(table)
        assert restored_table.spatial == table.spatial

    def test_roundtrip_preserves_query_results(self, tmp_path, small_federation):
        original = small_federation.node("SDSS").db
        path = tmp_path / "sdss.json"
        save_database(original, path)
        restored = load_database(path)
        sql = (
            "SELECT o.object_id FROM Photo_Object o "
            "WHERE AREA(185.0, -0.5, 600.0) AND o.type = GALAXY "
            "ORDER BY o.object_id"
        )
        assert restored.execute(sql).rows == original.execute(sql).rows

    def test_temp_tables_excluded(self, tmp_path):
        from repro.db.engine import Database
        from repro.db.schema import Column
        from repro.db.types import ColumnType

        db = Database("d")
        db.create_table("keep", [Column("a", ColumnType.INT)])
        db.create_temp_table("scratch", [Column("b", ColumnType.INT)])
        data = database_to_dict(db)
        assert [t["name"] for t in data["tables"]] == ["keep"]

    def test_bad_version_rejected(self):
        with pytest.raises(SchemaError):
            database_from_dict({"format_version": 99, "name": "x"})

    def test_save_is_crash_atomic(self, tmp_path, small_federation):
        """A crash mid-save never corrupts the previous good dump."""
        db = small_federation.node("SDSS").db
        path = tmp_path / "sdss.json"
        save_database(db, path)
        good = path.read_bytes()

        class MidSaveCrash(RuntimeError):
            pass

        def die(tmp):
            assert tmp.exists()  # the new dump was fully written...
            raise MidSaveCrash("power cut before rename")

        with pytest.raises(MidSaveCrash):
            save_database(db, path, crash_hook=die)
        # ...but the target still holds the old dump, bit for bit, and the
        # temp file was cleaned up rather than left to confuse a reload.
        assert path.read_bytes() == good
        assert not (tmp_path / "sdss.json.tmp").exists()
        assert load_database(path).table_names() == db.table_names()

    def test_roundtrip_preserves_epoch_snapshots(self, tmp_path):
        """Pinned visibility survives save/load: marks and counters."""
        from repro.db.engine import Database
        from repro.db.schema import Column
        from repro.db.types import ColumnType

        db = Database("epochal")
        db.create_table(
            "obs",
            [
                Column("object_id", ColumnType.INT, nullable=False),
                Column("flux", ColumnType.FLOAT),
            ],
        )
        db.insert("obs", [(1, 0.5), (2, 1.5)])
        db.apply_epoch([("obs", [(3, 2.5)])])
        db.apply_epoch([("obs", [(4, 3.5), (5, 4.5)])])
        db.gc_epochs(1)
        path = tmp_path / "epochal.json"
        save_database(db, path)
        restored = load_database(path)
        assert restored.committed_epoch == db.committed_epoch == 2
        assert restored.oldest_epoch == db.oldest_epoch == 1
        for epoch in (1, 2):
            want = db.table("obs").visible_count(epoch)
            assert restored.table("obs").visible_count(epoch) == want
        assert len(restored.table("obs")) == 5

    def test_restored_db_serves_a_skynode(self, tmp_path, small_federation):
        """A restored archive can stand in for the original in a federation."""
        from repro.skynode.node import SkyNode
        from repro.skynode.wrapper import ArchiveInfo

        original = small_federation.node("TWOMASS")
        path = tmp_path / "twomass.json"
        save_database(original.db, path)
        restored = load_database(path)
        node = SkyNode(
            restored,
            ArchiveInfo(
                archive="TWOMASS2",
                sigma_arcsec=original.info.sigma_arcsec,
                primary_table=original.info.primary_table,
                object_id_column=original.info.object_id_column,
                ra_column=original.info.ra_column,
                dec_column=original.info.dec_column,
            ),
            hostname="twomass2.skyquery.net",
        )
        node.attach(small_federation.network)
        node.register_with_portal(
            small_federation.portal.service_url("registration")
        )
        result = small_federation.client().submit(
            "SELECT O.object_id, T2.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS2:Photo_Primary T2 "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T2) < 3.5"
        )
        assert len(result) > 0
        # Cleanup so other session-scoped tests see the original catalog.
        small_federation.portal.catalog.unregister("TWOMASS2")
        small_federation.network.remove_host("twomass2.skyquery.net")
