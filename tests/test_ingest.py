"""Live ingest: snapshot epochs, replica lockstep, crash consistency.

The ingest contract (docs/RESILIENCE.md): an upload set becomes visible as
ONE new snapshot epoch on the primary AND every replica, or on none of
them. In-flight queries keep reading the epoch they were planned at, and a
crash during any ingest phase — upload, staging, prepare, decision
delivery — either aborts cleanly (zero partial rows anywhere) or recovers
to the committed epoch through the 2PC log replay.

``SKYQUERY_CHAOS_SEED`` (CI's chaos-smoke matrix) shifts where inside each
phase window the crash lands, so different interleavings are exercised on
every run.
"""

import functools
import os

import pytest

from repro.errors import (
    IngestError,
    SoapFaultError,
    StaleEpochError,
    TransportError,
)
from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.transport.faults import FaultPlan
from repro.workloads.skysim import SkyField, generate_bodies, observe_survey

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)

INGEST_PHASES = ["upload", "staging", "prepare", "decision"]


def _config(*, chain_mode="store-forward", replicas=1, keep_epochs=3):
    return FederationConfig(
        n_bodies=240,
        seed=11,
        sky_field=SkyField(185.0, -0.5, 1800.0),
        retry_policy=RetryPolicy(
            max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
            max_backoff_s=2.0, seed=11 + CHAOS_SEED,
        ),
        replicas=replicas,
        chain_mode=chain_mode,
        ingest=True,
        keep_epochs=keep_epochs,
    )


def _build(**kwargs):
    return build_federation(_config(**kwargs))


def _table_rows(node, table_name):
    table = node.db.table(table_name)
    return sorted(tuple(table.row(pos)) for pos in table.iter_positions())


def _new_observation(fed, archive, n_rows, seed_offset):
    """Deterministic fresh rows for one archive's primary table."""
    config = fed.config
    survey = next(s for s in config.surveys if s.archive == archive)
    observation = observe_survey(
        survey,
        generate_bodies(config.sky_field, n_rows, config.seed + seed_offset),
        config.seed + seed_offset,
    )
    columns = list(observation.rows[0].keys())
    rows = [tuple(row[c] for c in columns) for row in observation.rows]
    return survey.primary_table, columns, rows


class TestEpochCommit:
    def test_commit_advances_primary_and_replicas_in_lockstep(self):
        fed = _build()
        primary = fed.node("SDSS")
        replica = fed.replicas["SDSS"][0]
        table, columns, rows = _new_observation(fed, "SDSS", 40, 1)
        result = fed.ingest_client("SDSS").ingest_rows(
            table, columns, rows, batch_size=15
        )
        assert result.committed
        assert result.epoch == 1
        assert result.rows_sent == len(rows)
        assert set(result.votes.values()) == {"commit"}
        assert len(result.votes) == 2  # the primary itself + one mirror
        assert primary.db.committed_epoch == 1
        assert replica.db.committed_epoch == 1
        assert _table_rows(primary, table) == _table_rows(replica, table)

    def test_uploaded_batches_invisible_until_commit(self):
        fed = _build()
        primary = fed.node("SDSS")
        table, columns, rows = _new_observation(fed, "SDSS", 25, 2)
        before = primary.db.count_rows(table)
        client = fed.ingest_client("SDSS")
        ingest_id = client.begin(table)
        client.upload(ingest_id, columns, rows)
        assert primary.db.count_rows(table) == before
        assert primary.db.committed_epoch == 0
        result = client.commit(ingest_id)
        assert result.committed
        assert primary.db.count_rows(table) == before + len(rows)

    def test_aborted_session_leaves_no_trace(self):
        fed = _build()
        primary = fed.node("SDSS")
        table, columns, rows = _new_observation(fed, "SDSS", 25, 3)
        before = _table_rows(primary, table)
        client = fed.ingest_client("SDSS")
        ingest_id = client.begin(table)
        client.upload(ingest_id, columns, rows)
        assert client.abort(ingest_id)
        assert _table_rows(primary, table) == before
        assert primary.db.committed_epoch == 0
        with pytest.raises(SoapFaultError):
            client.commit(ingest_id)  # the session is gone

    def test_begin_rejects_unknown_table(self):
        fed = _build()
        with pytest.raises(SoapFaultError) as excinfo:
            fed.ingest_client("SDSS").begin("No_Such_Table")
        assert excinfo.value.detail == "IngestError"

    def test_pinned_reads_survive_ingest_between_queries(self):
        fed = _build()
        client = fed.client()
        before = client.submit(XMATCH_SQL)
        table, columns, rows = _new_observation(fed, "SDSS", 40, 4)
        assert fed.ingest_client("SDSS").ingest_rows(
            table, columns, rows
        ).committed
        after = client.submit(XMATCH_SQL)
        assert after.epochs["O"] == 1
        # Repeatable read: pinning the pre-ingest epochs replays the old
        # answer bit for bit, even though the live table has grown.
        pinned = fed.portal.submit(XMATCH_SQL, pin_epochs=before.epochs)
        assert sorted(pinned.rows) == sorted(before.rows)
        assert pinned.epochs == before.epochs

    def test_epoch_gc_advances_oldest_on_all_participants(self):
        fed = _build(keep_epochs=2)
        primary = fed.node("SDSS")
        replica = fed.replicas["SDSS"][0]
        client = fed.ingest_client("SDSS")
        for i in range(3):
            table, columns, rows = _new_observation(fed, "SDSS", 10, 10 + i)
            assert client.ingest_rows(table, columns, rows).committed
        assert client.epochs() == {"committed_epoch": 3, "oldest_epoch": 1}
        assert primary.db.oldest_epoch == replica.db.oldest_epoch == 1

    def test_pinning_a_gcd_epoch_raises(self):
        fed = _build(keep_epochs=1)
        r0 = fed.client().submit(XMATCH_SQL)
        client = fed.ingest_client("SDSS")
        for i in range(2):
            table, columns, rows = _new_observation(fed, "SDSS", 10, 20 + i)
            assert client.ingest_rows(table, columns, rows).committed
        with pytest.raises(StaleEpochError):
            fed.portal.submit(XMATCH_SQL, pin_epochs=r0.epochs)

    def test_primary_crash_drops_open_sessions(self):
        fed = _build()
        table, columns, rows = _new_observation(fed, "SDSS", 10, 5)
        client = fed.ingest_client("SDSS")
        ingest_id = client.begin(table)
        client.upload(ingest_id, columns, rows)
        fed.node("SDSS").crash_volatile_state()
        with pytest.raises(SoapFaultError) as excinfo:
            client.upload(ingest_id, columns, rows)
        assert excinfo.value.detail == "IngestError"

    def test_ingest_commit_is_traced(self):
        fed = _build()
        tracer = fed.tracer
        tracer.reset()
        table, columns, rows = _new_observation(fed, "SDSS", 10, 6)
        assert fed.ingest_client("SDSS").ingest_rows(
            table, columns, rows
        ).committed
        names = {
            span.name
            for trace_id in tracer.trace_ids()
            for span in tracer.trace(trace_id)
        }
        assert "CommitEpoch" in names  # the server span
        assert "ingest-commit" in names  # the fan-out + 2PC wrapper
        assert "2pc-complete" in names


class TestStaleEpochReaping:
    def test_checkpoints_pinned_to_gcd_epochs_are_reaped(self):
        fed = _build(keep_epochs=1)
        fed.client().submit(XMATCH_SQL)  # checkpoints pinned at epoch 0
        for node in fed.nodes.values():
            assert node.crossmatch.open_checkpoints == 1
        client = fed.ingest_client("SDSS")
        for i in range(2):
            table, columns, rows = _new_observation(fed, "SDSS", 10, 30 + i)
            assert client.ingest_rows(table, columns, rows).committed
        # SDSS is now at committed=2, oldest=1: the epoch-0 checkpoint died
        # with the GC, counted in the network's metrics.
        assert fed.node("SDSS").crossmatch.open_checkpoints == 0
        assert fed.network.metrics.stale_epoch_reaps >= 1
        # Archives that saw no ingest keep their epoch-0 checkpoints.
        assert fed.node("TWOMASS").crossmatch.open_checkpoints == 1

    def test_unversioned_checkpoints_survive_gc(self):
        fed = _build(keep_epochs=1)
        # A chain driven without epoch pins (epoch None) is unversioned;
        # its checkpoints never go stale. Simulate by running the chain
        # with a plan whose steps carry no epochs.
        submitted = fed.client().submit(XMATCH_SQL)
        plan = submitted.plan
        for step in plan["steps"]:
            step["epoch"] = None
        from repro.services.client import ServiceProxy

        proxy = ServiceProxy(
            fed.network, "tester.skyquery.net", plan["steps"][0]["url"]
        )
        proxy.call("PerformXMatch", plan=plan, position=0, xid="unversioned")
        reaps_before = fed.network.metrics.stale_epoch_reaps
        client = fed.ingest_client("SDSS")
        for i in range(2):
            table, columns, rows = _new_observation(fed, "SDSS", 10, 40 + i)
            assert client.ingest_rows(table, columns, rows).committed
        sdss = fed.node("SDSS").crossmatch
        # The epoch-pinned checkpoint from the submit was reaped; the
        # unversioned one from the raw PerformXMatch is still alive.
        assert sdss.open_checkpoints == 1
        assert fed.network.metrics.stale_epoch_reaps > reaps_before


@functools.lru_cache(maxsize=4)
def _ingest_oracle(chain_mode):
    """Fault-free twin run: phase windows + expected before/after state.

    The simulation is deterministic, so an identically-built federation
    that replays the same calls reaches each ingest phase at the same
    simulated instant — a crash scheduled inside a phase window is
    guaranteed to land in that phase.
    """
    fed = _build(chain_mode=chain_mode)
    primary = fed.node("SDSS")
    r0 = fed.client().submit(XMATCH_SQL)
    table, columns, rows = _new_observation(fed, "SDSS", 40, 7)
    rows_before = _table_rows(primary, table)
    t_start = fed.network.clock.now
    result = fed.ingest_client("SDSS").ingest_rows(
        table, columns, rows, batch_size=15
    )
    assert result.committed

    def times(operation):
        return [
            m.sim_time
            for m in fed.network.metrics.messages
            if m.kind == "request" and m.operation == operation
            and m.sim_time >= t_start
        ]

    # The decision window ends at the LAST Commit delivery, not at the end
    # of the ingest: a crash scheduled later would land after the protocol
    # finished and never fire.
    edges = [
        min(times("UploadBatch")),
        min(times("StageRows")),
        min(times("Prepare")),
        min(times("Commit")),
        max(times("Commit")),
    ]
    assert edges[4] > edges[3], "need two participants to crash between"
    windows = {
        phase: (edges[i], edges[i + 1])
        for i, phase in enumerate(INGEST_PHASES)
    }
    return {
        "windows": windows,
        "rows_before": rows_before,
        "rows_after": _table_rows(primary, table),
        "r0_rows": sorted(r0.rows),
        "r0_epochs": dict(r0.epochs),
        "table": table,
    }


class TestIngestCrashConsistency:
    """The tentpole acceptance sweep: crash in every ingest phase."""

    @pytest.mark.parametrize("chain_mode", ["store-forward", "pipelined"])
    @pytest.mark.parametrize("victim", ["primary", "replica"])
    @pytest.mark.parametrize("phase", INGEST_PHASES)
    def test_crash_aborts_cleanly_or_recovers_committed(
        self, chain_mode, victim, phase
    ):
        oracle = _ingest_oracle(chain_mode)
        t0, t1 = oracle["windows"][phase]
        fraction = 0.15 + 0.3 * (
            (CHAOS_SEED + len(phase) + len(victim)) % 3
        )
        crash_at = t0 + fraction * (t1 - t0)

        fed = _build(chain_mode=chain_mode)
        primary = fed.node("SDSS")
        replica = fed.replicas["SDSS"][0]
        host = primary.hostname if victim == "primary" else replica.hostname
        table = oracle["table"]

        # Replay the oracle's exact call sequence so the sim clock lines up.
        r0 = fed.client().submit(XMATCH_SQL)
        assert sorted(r0.rows) == oracle["r0_rows"]
        _, columns, rows = _new_observation(fed, "SDSS", 40, 7)
        fed.network.set_fault_plan(
            FaultPlan()
            .crash(host, at_s=crash_at)
            .recover(host, at_s=crash_at + 120.0)
        )
        client = fed.ingest_client("SDSS")
        try:
            client.ingest_rows(table, columns, rows, batch_size=15)
        except (TransportError, SoapFaultError):
            pass  # the upload died with the crashed host; state checked below

        # Let the victim come back, then replay any in-doubt decision.
        now = fed.network.clock.now
        if now < crash_at + 121.0:
            fed.network.clock.advance(crash_at + 121.0 - now)
        assert fed.network.metrics.fault_count("crash") >= 1
        client.recover()

        # Zero divergence: primaries and mirrors agree on epoch AND bytes.
        assert primary.db.committed_epoch == replica.db.committed_epoch
        assert primary.db.oldest_epoch == replica.db.oldest_epoch
        assert _table_rows(primary, table) == _table_rows(replica, table)
        # All-or-nothing: the federation holds the pre-ingest state or the
        # fully committed one, never a partial upload.
        state = _table_rows(primary, table)
        assert state in (oracle["rows_before"], oracle["rows_after"])
        if primary.db.committed_epoch == 0:
            assert state == oracle["rows_before"]
            # A clean abort is retryable: the same upload now commits.
            retry = client.ingest_rows(table, columns, rows, batch_size=15)
            assert retry.committed
        assert _table_rows(primary, table) == oracle["rows_after"]
        assert _table_rows(replica, table) == oracle["rows_after"]
        assert primary.db.committed_epoch == replica.db.committed_epoch == 1

        # In-flight reads pinned before the crash stay byte-identical.
        pinned = fed.portal.submit(
            XMATCH_SQL, pin_epochs=oracle["r0_epochs"]
        )
        assert sorted(pinned.rows) == oracle["r0_rows"]

    @pytest.mark.parametrize("phase", INGEST_PHASES)
    def test_quiescent_oracle_equivalence(self, phase):
        """Post-recovery state is byte-identical to a never-crashed twin.

        (The committed-state arm of the previous test asserts this row for
        row; this one also pins the final epoch counters and a fresh
        unpinned query against the quiescent twin's.)
        """
        oracle = _ingest_oracle("store-forward")
        t0, t1 = oracle["windows"][phase]
        fed = _build()
        primary = fed.node("SDSS")
        host = primary.hostname
        crash_at = t0 + 0.5 * (t1 - t0)
        r0 = fed.client().submit(XMATCH_SQL)
        table = oracle["table"]
        _, columns, rows = _new_observation(fed, "SDSS", 40, 7)
        fed.network.set_fault_plan(
            FaultPlan()
            .crash(host, at_s=crash_at)
            .recover(host, at_s=crash_at + 120.0)
        )
        client = fed.ingest_client("SDSS")
        try:
            client.ingest_rows(table, columns, rows, batch_size=15)
        except (TransportError, SoapFaultError):
            pass
        now = fed.network.clock.now
        if now < crash_at + 121.0:
            fed.network.clock.advance(crash_at + 121.0 - now)
        client.recover()
        if primary.db.committed_epoch == 0:
            assert client.ingest_rows(
                table, columns, rows, batch_size=15
            ).committed
        # Quiescent equivalence: same rows, same epoch window, and a fresh
        # federated query returns what the never-crashed twin would.
        assert _table_rows(primary, table) == oracle["rows_after"]
        assert client.epochs() == {"committed_epoch": 1, "oldest_epoch": 0}
        fresh = fed.client().submit(XMATCH_SQL)
        assert fresh.epochs["O"] == 1
        assert not fresh.degraded
        pinned = fed.portal.submit(XMATCH_SQL, pin_epochs=r0.epochs)
        assert sorted(pinned.rows) == sorted(r0.rows)


class TestIngestClientErrors:
    def test_ingest_rows_rejects_bad_batch_size(self):
        fed = _build()
        with pytest.raises(IngestError):
            fed.ingest_client("SDSS").ingest_rows("Photo_Object", ["a"], [],
                                                  batch_size=0)

    def test_ingest_client_requires_ingest_enabled(self):
        from repro.errors import RegistrationError

        fed = build_federation(
            FederationConfig(
                n_bodies=60,
                seed=11,
                sky_field=SkyField(185.0, -0.5, 1800.0),
            )
        )
        with pytest.raises(RegistrationError):
            fed.ingest_client("SDSS")
