"""Rowset chunking."""

import pytest

from repro.errors import SoapError
from repro.soap.encoding import WireRowSet
from repro.transport.chunking import chunk_rowset, envelope_bytes, split_for_budget


def make_rowset(n):
    return WireRowSet(
        [("id", "int"), ("ra", "double"), ("name", "string")],
        [(i, i * 1.5, f"obj-{i}") for i in range(n)],
    )


def test_chunk_rowset_sizes():
    chunks = chunk_rowset(make_rowset(10), 3)
    assert [len(c.rows) for c in chunks] == [3, 3, 3, 1]


def test_chunk_rowset_preserves_rows():
    rowset = make_rowset(10)
    chunks = chunk_rowset(rowset, 4)
    assert WireRowSet.concat(chunks).rows == rowset.rows


def test_chunk_rowset_empty_gives_one_chunk():
    chunks = chunk_rowset(make_rowset(0), 5)
    assert len(chunks) == 1
    assert chunks[0].rows == []
    assert chunks[0].columns == make_rowset(0).columns


def test_chunk_rowset_bad_size():
    with pytest.raises(SoapError):
        chunk_rowset(make_rowset(3), 0)


def test_envelope_bytes_positive_even_when_empty():
    assert envelope_bytes(make_rowset(0)) > 0


def test_split_for_budget_respects_budget():
    rowset = make_rowset(500)
    budget = 4096
    chunks = split_for_budget(rowset, budget)
    assert len(chunks) > 1
    for chunk in chunks:
        assert envelope_bytes(chunk) <= budget


def test_split_for_budget_preserves_rows():
    rowset = make_rowset(200)
    chunks = split_for_budget(rowset, 4096)
    assert WireRowSet.concat(chunks).rows == rowset.rows


def test_split_for_budget_single_chunk_when_small():
    rowset = make_rowset(2)
    chunks = split_for_budget(rowset, 1_000_000)
    assert len(chunks) == 1


def test_split_for_budget_empty_rowset():
    chunks = split_for_budget(make_rowset(0), 4096)
    assert len(chunks) == 1


def test_split_for_budget_budget_too_small():
    with pytest.raises(SoapError):
        split_for_budget(make_rowset(10), 10)


def test_split_handles_wide_rows():
    # One huge string row amid small rows: bisecting must isolate it.
    rowset = WireRowSet(
        [("s", "string")],
        [("x",)] * 50 + [("y" * 2000,)] + [("z",)] * 50,
    )
    budget = 4000
    chunks = split_for_budget(rowset, budget)
    assert WireRowSet.concat(chunks).rows == rowset.rows
    for chunk in chunks:
        if len(chunk.rows) > 1:
            assert envelope_bytes(chunk) <= budget
