"""Rowset chunking."""

import pytest

from repro.errors import ExecutionError, SoapError
from repro.services.chunked import ChunkedSender
from repro.soap.encoding import WireRowSet
from repro.transport.chunking import (
    batch_slices,
    chunk_rowset,
    envelope_bytes,
    split_for_budget,
)


def make_rowset(n):
    return WireRowSet(
        [("id", "int"), ("ra", "double"), ("name", "string")],
        [(i, i * 1.5, f"obj-{i}") for i in range(n)],
    )


def test_chunk_rowset_sizes():
    chunks = chunk_rowset(make_rowset(10), 3)
    assert [len(c.rows) for c in chunks] == [3, 3, 3, 1]


def test_chunk_rowset_preserves_rows():
    rowset = make_rowset(10)
    chunks = chunk_rowset(rowset, 4)
    assert WireRowSet.concat(chunks).rows == rowset.rows


def test_chunk_rowset_empty_gives_one_chunk():
    chunks = chunk_rowset(make_rowset(0), 5)
    assert len(chunks) == 1
    assert chunks[0].rows == []
    assert chunks[0].columns == make_rowset(0).columns


def test_chunk_rowset_bad_size():
    with pytest.raises(SoapError):
        chunk_rowset(make_rowset(3), 0)


def test_envelope_bytes_positive_even_when_empty():
    assert envelope_bytes(make_rowset(0)) > 0


def test_split_for_budget_respects_budget():
    rowset = make_rowset(500)
    budget = 4096
    chunks = split_for_budget(rowset, budget)
    assert len(chunks) > 1
    for chunk in chunks:
        assert envelope_bytes(chunk) <= budget


def test_split_for_budget_preserves_rows():
    rowset = make_rowset(200)
    chunks = split_for_budget(rowset, 4096)
    assert WireRowSet.concat(chunks).rows == rowset.rows


def test_split_for_budget_single_chunk_when_small():
    rowset = make_rowset(2)
    chunks = split_for_budget(rowset, 1_000_000)
    assert len(chunks) == 1


def test_split_for_budget_empty_rowset():
    chunks = split_for_budget(make_rowset(0), 4096)
    assert len(chunks) == 1


def test_split_for_budget_budget_too_small():
    with pytest.raises(SoapError):
        split_for_budget(make_rowset(10), 10)


def test_split_handles_wide_rows():
    # One huge string row amid small rows: bisecting must isolate it.
    rowset = WireRowSet(
        [("s", "string")],
        [("x",)] * 50 + [("y" * 2000,)] + [("z",)] * 50,
    )
    budget = 4000
    chunks = split_for_budget(rowset, budget)
    assert WireRowSet.concat(chunks).rows == rowset.rows
    for chunk in chunks:
        if len(chunk.rows) > 1:
            assert envelope_bytes(chunk) <= budget


# -- batch_slices (the streaming chain's partition helper) ----------------------


def test_batch_slices_covers_range_in_order():
    slices = batch_slices(10, 3)
    assert slices == [(0, 3), (3, 6), (6, 9), (9, 10)]


def test_batch_slices_exact_multiple():
    assert batch_slices(6, 3) == [(0, 3), (3, 6)]


def test_batch_slices_zero_items_single_empty_batch():
    # Mirrors chunk_rowset: the schema must still reach the consumer.
    assert batch_slices(0, 50) == [(0, 0)]


def test_batch_slices_rejects_bad_arguments():
    with pytest.raises(SoapError):
        batch_slices(10, 0)
    with pytest.raises(SoapError):
        batch_slices(-1, 5)


# -- ChunkedSender lifecycle (TTL, abort, completed-cache) ----------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt


def make_sender(budget=2048, ttl_s=60.0):
    clock = FakeClock()
    reclaims = []
    sender = ChunkedSender("t", budget, ttl_s=ttl_s)
    sender.bind_clock(lambda: clock.now, reclaims.append)
    return sender, clock, reclaims


def test_sender_inline_when_under_budget():
    sender, _, _ = make_sender(budget=1_000_000)
    response = sender.respond(make_rowset(5))
    assert response["chunked"] is False
    assert response["rows"].rows == make_rowset(5).rows
    assert sender.pending_transfers == 0


def test_sender_ttl_reclaims_abandoned_transfer():
    sender, clock, reclaims = make_sender(ttl_s=60.0)
    response = sender.respond(make_rowset(500))
    assert response["chunked"] is True
    assert sender.pending_transfers == 1
    clock.advance(61.0)
    assert sender.reap() == 1
    assert sender.pending_transfers == 0
    assert reclaims == [1]
    with pytest.raises(ExecutionError, match="unknown transfer"):
        sender.fetch_chunk(response["transfer_id"], 0)


def test_sender_fetch_activity_extends_the_deadline():
    sender, clock, reclaims = make_sender(ttl_s=60.0)
    response = sender.respond(make_rowset(500))
    transfer_id = response["transfer_id"]
    parts = []
    # Each fetch arrives 50 s after the last: past the *original* deadline
    # by the end, but never 60 s idle, so the drain must survive.
    for seq in range(response["chunk_count"]):
        clock.advance(50.0)
        parts.append(sender.fetch_chunk(transfer_id, seq))
    assert WireRowSet.concat(parts).rows == make_rowset(500).rows
    assert sender.pending_transfers == 0
    assert reclaims == []


def test_final_chunk_reserved_idempotently_from_completed_cache():
    sender, _, reclaims = make_sender()
    response = sender.respond(make_rowset(500))
    transfer_id = response["transfer_id"]
    last = response["chunk_count"] - 1
    chunks = [
        sender.fetch_chunk(transfer_id, seq)
        for seq in range(response["chunk_count"])
    ]
    # The caller's retry of the final fetch (response lost in flight).
    again = sender.fetch_chunk(transfer_id, last)
    assert again.rows == chunks[-1].rows
    # Earlier chunks are gone for good, deterministically.
    if last > 0:
        with pytest.raises(ExecutionError, match="gone"):
            sender.fetch_chunk(transfer_id, 0)
    assert reclaims == []  # a delivered payload is not a reclaim


def test_completed_cache_expires_silently():
    sender, clock, reclaims = make_sender(ttl_s=60.0)
    response = sender.respond(make_rowset(500))
    transfer_id = response["transfer_id"]
    for seq in range(response["chunk_count"]):
        sender.fetch_chunk(transfer_id, seq)
    clock.advance(61.0)
    with pytest.raises(ExecutionError, match="unknown transfer"):
        sender.fetch_chunk(transfer_id, response["chunk_count"] - 1)
    assert reclaims == []


def test_abort_is_idempotent_and_counts_pending_reclaims_only():
    sender, _, reclaims = make_sender()
    pending = sender.respond(make_rowset(500))
    assert sender.abort(pending["transfer_id"]) is True
    assert reclaims == [1]
    assert sender.abort(pending["transfer_id"]) is False
    # Aborting a fully drained transfer drops the cache entry without
    # counting a reclaim: its payload reached the caller.
    drained = sender.respond(make_rowset(500))
    for seq in range(drained["chunk_count"]):
        sender.fetch_chunk(drained["transfer_id"], seq)
    assert sender.abort(drained["transfer_id"]) is True
    assert reclaims == [1]


# -- dropped FetchChunk responses over the simulated network --------------------


def bulk_service_net(rowset, budget=4096):
    """One Bulk service whose Get response is chunked, sender TTL-armed."""
    from repro.services.framework import ServiceHost, WebService
    from repro.transport.network import SimulatedNetwork

    net = SimulatedNetwork(default_latency_s=0.01, default_bandwidth_bps=1e9)
    sender = ChunkedSender("bulk", budget)

    def on_reclaim(count):
        net.metrics.reclaimed_transfers += count

    sender.bind_clock(lambda: net.clock.now, on_reclaim)
    service = WebService("Bulk")
    service.register(
        "Get", lambda: sender.respond(rowset), params=(), returns="struct"
    )
    service.register(
        "FetchChunk",
        sender.fetch_chunk,
        params=(("transfer_id", "string"), ("seq", "int")),
        returns="rowset",
    )
    service.register(
        "AbortTransfer",
        lambda transfer_id: {"aborted": sender.abort(str(transfer_id))},
        params=(("transfer_id", "string"),),
        returns="struct",
    )
    host = ServiceHost("svc")
    url = host.mount("/bulk", service)
    net.add_host("svc", host.handle)
    return net, url, sender


def retry_proxy(net, url):
    from repro.services.client import ServiceProxy
    from repro.services.retry import RetryPolicy

    return ServiceProxy(
        net,
        "cli",
        url,
        retry_policy=RetryPolicy(
            max_attempts=4, timeout_s=1.0, base_backoff_s=0.1,
            max_backoff_s=1.0, jitter=0.0, seed=7,
        ),
    )


def test_dropped_final_fetch_response_retried_without_duplication():
    from repro.transport.faults import FaultPlan

    rowset = make_rowset(500)
    net, url, sender = bulk_service_net(rowset)
    proxy = retry_proxy(net, url)
    response = proxy.call("Get")
    assert response["chunked"] is True
    last = response["chunk_count"] - 1
    # Drain everything but the final chunk cleanly...
    parts = [
        proxy.call("FetchChunk", transfer_id=response["transfer_id"], seq=seq)
        for seq in range(last)
    ]
    # ...then lose the final fetch's *response*: the handler ran (transfer
    # freed to the completed-cache) but the caller never saw the rows. The
    # retry must be served from the cache, not fault with unknown-transfer.
    net.set_fault_plan(FaultPlan(seed=2).drop_responses(src="svc", first_n=1))
    parts.append(
        proxy.call("FetchChunk", transfer_id=response["transfer_id"], seq=last)
    )
    assert WireRowSet.concat(parts).rows == rowset.rows
    assert net.metrics.fault_count("response-drop") == 1
    assert net.metrics.retries > 0
    assert sender.pending_transfers == 0


def test_dropped_fetch_responses_mid_drain_via_receive_rowset():
    from repro.services.chunked import receive_rowset
    from repro.transport.faults import FaultPlan

    rowset = make_rowset(500)
    net, url, sender = bulk_service_net(rowset)
    proxy = retry_proxy(net, url)
    response = proxy.call("Get")
    # Random response drops across the whole drain: every retried fetch
    # repeats an already-served seq, which the sender tolerates only for
    # the final chunk — mid-drain drops are request-level retries of the
    # *same* seq, so the rowset must come back exactly once per row.
    net.set_fault_plan(FaultPlan(seed=5).drop_responses(src="svc", rate=0.3))
    reassembled = receive_rowset(response, proxy)
    assert reassembled.rows == rowset.rows
    assert net.metrics.fault_count("response-drop") > 0
    assert sender.pending_transfers == 0


def test_failed_drain_aborts_the_transfer():
    from repro.services.chunked import receive_rowset
    from repro.services.client import ServiceProxy
    from repro.transport.faults import FaultPlan

    rowset = make_rowset(500)
    net, url, sender = bulk_service_net(rowset)
    plain = ServiceProxy(net, "cli", url)  # no retry policy
    response = plain.call("Get")
    assert sender.pending_transfers == 1
    # Drop the first fetch's response; with no retries the drain dies, and
    # receive_rowset's best-effort abort must free the sender immediately.
    net.set_fault_plan(FaultPlan(seed=3).drop_responses(src="svc", first_n=1))
    with pytest.raises(Exception):
        receive_rowset(response, plain)
    assert sender.pending_transfers == 0
    assert net.metrics.reclaimed_transfers == 1
