"""The execution-plan model."""

import dataclasses

import pytest

from repro.errors import PlanningError
from repro.portal.plan import ExecutionPlan, PlanStep
from repro.sql.ast import AreaClause


def make_step(alias, *, dropout=False, count=None, attrs=()):
    return PlanStep(
        alias=alias,
        archive=f"ARCH_{alias}",
        url=f"http://{alias.lower()}/crossmatch",
        sigma_arcsec=0.5,
        dropout=dropout,
        count_star=count,
        table="objects",
        id_column="object_id",
        ra_column="ra",
        dec_column="dec",
        residual_sql="",
        attr_select=tuple(attrs),
        sql=f"SELECT ... {alias}",
    )


def make_plan():
    # Paper order: drop-out first on the list, then descending counts.
    return ExecutionPlan(
        steps=(
            make_step("D", dropout=True),
            make_step("B", count=200, attrs=(("flux", "B.flux", "double"),)),
            make_step("A", count=50, attrs=(("mag", "A.mag", "double"),)),
        ),
        threshold=3.5,
        area=AreaClause(185.0, -0.5, 900.0),
    )


def test_step_access():
    plan = make_plan()
    assert plan.step(0).alias == "D"
    assert plan.step(2).alias == "A"
    with pytest.raises(PlanningError):
        plan.step(3)
    with pytest.raises(PlanningError):
        plan.step(-1)


def test_member_aliases_in_computation_order():
    plan = make_plan()
    # Execution starts at the END of the list (A) and moves backwards.
    assert plan.member_aliases_after(0) == ["A", "B"]
    assert plan.member_aliases_after(1) == ["A", "B"]
    assert plan.member_aliases_after(2) == ["A"]


def test_dropouts_never_join_members():
    plan = make_plan()
    assert "D" not in plan.member_aliases_after(0)


def test_attr_columns_accumulate():
    plan = make_plan()
    assert plan.attr_columns_after(2) == [("A.mag", "double")]
    assert plan.attr_columns_after(0) == [("A.mag", "double"), ("B.flux", "double")]


def test_wire_roundtrip():
    plan = make_plan()
    back = ExecutionPlan.from_wire(plan.to_wire())
    assert back == plan


def test_wire_roundtrip_without_area():
    plan = ExecutionPlan(
        steps=(make_step("A", count=1),), threshold=2.0, area=None
    )
    back = ExecutionPlan.from_wire(plan.to_wire())
    assert back.area is None
    assert back == plan


def test_empty_plan_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(steps=(), threshold=1.0, area=None)


def test_dropout_last_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(
            steps=(make_step("A", count=1), make_step("D", dropout=True)),
            threshold=1.0,
            area=None,
        )


def test_all_dropout_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(
            steps=(make_step("D", dropout=True),), threshold=1.0, area=None
        )


# -- fingerprint coverage: every byte-changing knob, nothing else ---------------

BASE_PROFILE = (
    ("chain_mode", "store-forward"),
    ("match_engine", "htm"),
    ("stream_batch_size", "200"),
    ("stream_wire_format", "columnar"),
    ("xmatch_kernel", "vectorized"),
)

PROFILE_FLIPS = {
    "chain_mode": "pipelined",
    "match_engine": "zone",
    "stream_batch_size": "64",
    "stream_wire_format": "rows",
    "xmatch_kernel": "scalar",
}


def make_profiled_plan(profile=BASE_PROFILE):
    plan = make_plan()
    return dataclasses.replace(plan, profile=profile)


def test_fingerprint_covers_every_profile_knob():
    """Two plans differing in exactly one execution knob never share a
    cache key — the semantic cache's safety regression."""
    base = make_profiled_plan()
    for knob, flipped in PROFILE_FLIPS.items():
        profile = tuple(
            (k, flipped if k == knob else v) for k, v in BASE_PROFILE
        )
        other = make_profiled_plan(profile)
        assert other.fingerprint(0) != base.fingerprint(0), knob
        # The knob changes every suffix too (resume checkpoints).
        assert other.fingerprint(1) != base.fingerprint(1), knob


def test_fingerprint_covers_epoch_threshold_area():
    base = make_profiled_plan()
    pinned = dataclasses.replace(
        base,
        steps=base.steps[:-1]
        + (dataclasses.replace(base.steps[-1], epoch=3),),
    )
    assert pinned.fingerprint(0) != base.fingerprint(0)
    assert dataclasses.replace(base, threshold=3.6).fingerprint(0) != \
        base.fingerprint(0)
    assert dataclasses.replace(
        base, area=AreaClause(185.0, -0.5, 901.0)
    ).fingerprint(0) != base.fingerprint(0)


def test_fingerprint_ignores_placement_and_estimates():
    """URLs, replica candidates, and count-star estimates are placement,
    not content: failover must not orphan cached state."""
    base = make_profiled_plan()
    moved = base.replace_url(1, "http://replica-b/crossmatch")
    assert moved.fingerprint(0) == base.fingerprint(0)
    assert moved.profile == base.profile
    recounted = dataclasses.replace(
        base,
        steps=(
            base.steps[0],
            dataclasses.replace(
                base.steps[1],
                count_star=999,
                replica_urls=("http://spare/crossmatch",),
            ),
            base.steps[2],
        ),
    )
    assert recounted.fingerprint(0) == base.fingerprint(0)


def test_profile_stays_off_the_wire():
    """The profile keys the cache but never serializes: node-side plan
    bytes stay identical across engines (the htm/zone parity invariant)."""
    plain = make_plan()
    profiled = make_profiled_plan()
    assert profiled.to_wire() == plain.to_wire()
    assert "profile" not in profiled.to_wire()
    assert ExecutionPlan.from_wire(profiled.to_wire()).profile == ()
