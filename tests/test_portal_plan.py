"""The execution-plan model."""

import pytest

from repro.errors import PlanningError
from repro.portal.plan import ExecutionPlan, PlanStep
from repro.sql.ast import AreaClause


def make_step(alias, *, dropout=False, count=None, attrs=()):
    return PlanStep(
        alias=alias,
        archive=f"ARCH_{alias}",
        url=f"http://{alias.lower()}/crossmatch",
        sigma_arcsec=0.5,
        dropout=dropout,
        count_star=count,
        table="objects",
        id_column="object_id",
        ra_column="ra",
        dec_column="dec",
        residual_sql="",
        attr_select=tuple(attrs),
        sql=f"SELECT ... {alias}",
    )


def make_plan():
    # Paper order: drop-out first on the list, then descending counts.
    return ExecutionPlan(
        steps=(
            make_step("D", dropout=True),
            make_step("B", count=200, attrs=(("flux", "B.flux", "double"),)),
            make_step("A", count=50, attrs=(("mag", "A.mag", "double"),)),
        ),
        threshold=3.5,
        area=AreaClause(185.0, -0.5, 900.0),
    )


def test_step_access():
    plan = make_plan()
    assert plan.step(0).alias == "D"
    assert plan.step(2).alias == "A"
    with pytest.raises(PlanningError):
        plan.step(3)
    with pytest.raises(PlanningError):
        plan.step(-1)


def test_member_aliases_in_computation_order():
    plan = make_plan()
    # Execution starts at the END of the list (A) and moves backwards.
    assert plan.member_aliases_after(0) == ["A", "B"]
    assert plan.member_aliases_after(1) == ["A", "B"]
    assert plan.member_aliases_after(2) == ["A"]


def test_dropouts_never_join_members():
    plan = make_plan()
    assert "D" not in plan.member_aliases_after(0)


def test_attr_columns_accumulate():
    plan = make_plan()
    assert plan.attr_columns_after(2) == [("A.mag", "double")]
    assert plan.attr_columns_after(0) == [("A.mag", "double"), ("B.flux", "double")]


def test_wire_roundtrip():
    plan = make_plan()
    back = ExecutionPlan.from_wire(plan.to_wire())
    assert back == plan


def test_wire_roundtrip_without_area():
    plan = ExecutionPlan(
        steps=(make_step("A", count=1),), threshold=2.0, area=None
    )
    back = ExecutionPlan.from_wire(plan.to_wire())
    assert back.area is None
    assert back == plan


def test_empty_plan_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(steps=(), threshold=1.0, area=None)


def test_dropout_last_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(
            steps=(make_step("A", count=1), make_step("D", dropout=True)),
            threshold=1.0,
            area=None,
        )


def test_all_dropout_rejected():
    with pytest.raises(PlanningError):
        ExecutionPlan(
            steps=(make_step("D", dropout=True),), threshold=1.0, area=None
        )
