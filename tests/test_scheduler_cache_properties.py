"""Property-based tests: scheduling + caching never change any answer.

The contract, stated as a property: for ANY interleaving of concurrent
query batches and ingest commits, across both chain modes and both match
engines, every result the scheduled + cached portal returns is identical
to the same query run alone on an uncached twin federation — same rows,
same warnings, same counts, same pinned epochs, same node statistics.
(``physical_reads`` is excluded: page residency is history the semantic
layer explicitly does not promise; everything else must match.)

Containment-served results promise a weaker, documented contract: the
same *multiset* of rows (row order is plan-order provenance, and a
containment hit inherits the covering entry's), empty counts, and the
covering entry's epochs.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation.builder import FederationConfig, build_federation
from repro.portal.scheduler import SchedulerConfig
from repro.workloads.skysim import SkyField, generate_bodies, observe_survey

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))
N_BODIES = 100
RADII = (700.0, 1000.0, 1300.0)
TENANTS = ("alpha", "beta")
ARCHIVES = ("SDSS", "TWOMASS", "FIRST")

SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, {radius}) AND XMATCH(O, T) < 3.5"
)


def _build(chain_mode, match_engine, *, scheduled):
    config = FederationConfig(
        n_bodies=N_BODIES,
        seed=23 + CHAOS_SEED,
        sky_field=SkyField(185.0, -0.5, 1800.0),
        chain_mode=chain_mode,
        ingest=True,
        keep_epochs=16,
        scheduler=SchedulerConfig(max_inflight=3) if scheduled else None,
        cache=scheduled,
    )
    config.match_engine = match_engine
    return build_federation(config)


def _mirror_ingest(feds, archive, seed_offset):
    """Commit identical new rows to the same archive of every twin."""
    epochs = []
    for fed in feds:
        config = fed.config
        survey = next(s for s in config.surveys if s.archive == archive)
        observation = observe_survey(
            survey,
            generate_bodies(config.sky_field, 15, config.seed + seed_offset),
            config.seed + seed_offset,
        )
        columns = list(observation.rows[0].keys())
        rows = [tuple(row[c] for c in columns) for row in observation.rows]
        result = fed.ingest_client(archive).ingest_rows(
            survey.primary_table, columns, rows
        )
        assert result.committed
        epochs.append(result.epoch)
    assert epochs[0] == epochs[1]


def _stable_stats(result):
    return [
        {k: v for k, v in stats.items() if k != "physical_reads"}
        for stats in result.node_stats
    ]


def _assert_matches_solo(outcome, solo):
    result = outcome.result
    assert result is not None, outcome.error
    if result.cache == "containment":
        assert sorted(result.rows) == sorted(solo.rows)
        assert result.columns == solo.columns
        assert result.counts == {}
        assert not result.degraded and not result.warnings
        return
    assert result.columns == solo.columns
    assert result.rows == solo.rows
    assert result.warnings == solo.warnings
    assert result.degraded == solo.degraded
    assert result.failovers == solo.failovers
    assert result.counts == solo.counts
    assert result.epochs == solo.epochs
    assert _stable_stats(result) == _stable_stats(solo)


ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("batch"),
            st.lists(
                st.tuples(
                    st.integers(0, len(RADII) - 1),
                    st.integers(0, len(TENANTS) - 1),
                ),
                min_size=1,
                max_size=4,
            ),
        ),
        st.tuples(st.just("ingest"), st.integers(0, len(ARCHIVES) - 1)),
    ),
    min_size=2,
    max_size=5,
)


@pytest.mark.parametrize(
    "chain_mode,match_engine",
    [
        ("store-forward", "htm"),
        ("store-forward", "zone"),
        ("pipelined", "htm"),
        ("pipelined", "zone"),
    ],
)
@given(ops=ops_strategy)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_scheduled_cached_results_identical_to_solo(
    chain_mode, match_engine, ops
):
    scheduled = _build(chain_mode, match_engine, scheduled=True)
    solo_fed = _build(chain_mode, match_engine, scheduled=False)
    first_answer = None
    for op_index, op in enumerate(ops):
        if op[0] == "ingest":
            _mirror_ingest(
                (scheduled, solo_fed), ARCHIVES[op[1]], 100 + op_index
            )
            continue
        jobs = [
            {"sql": SQL.format(radius=RADII[r]), "tenant": TENANTS[t]}
            for r, t in op[1]
        ]
        outcomes = scheduled.scheduler.run(jobs)
        assert len(outcomes) == len(jobs)
        for outcome in outcomes:
            solo = solo_fed.portal.submit(outcome.job.sql)
            _assert_matches_solo(outcome, solo)
            if first_answer is None and outcome.result.cache != "containment":
                first_answer = (
                    outcome.job.sql,
                    dict(outcome.result.epochs),
                    list(outcome.result.rows),
                )
    # Repeatable reads survive everything above: replaying the first
    # query pinned at its original epochs returns its original rows.
    if first_answer is not None:
        sql, epochs, rows = first_answer
        replay = scheduled.portal.submit(sql, pin_epochs=epochs)
        assert replay.rows == rows


@given(
    radii=st.tuples(
        st.floats(min_value=400.0, max_value=2000.0),
        st.floats(min_value=300.0, max_value=2000.0),
    )
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_containment_multiset_equals_fresh_execution(radii):
    big = max(radii)
    small = min(radii)
    cached = _build("store-forward", "htm", scheduled=True)
    plain = _build("store-forward", "htm", scheduled=False)
    cached.portal.submit(SQL.format(radius=big))
    served = cached.portal.submit(SQL.format(radius=small))
    fresh = plain.portal.submit(SQL.format(radius=small))
    if small < big:
        assert served.cache == "containment"
    assert sorted(served.rows) == sorted(fresh.rows)
    assert served.columns == fresh.columns
