"""Partial-sky survey footprints."""

import pytest

from repro.federation.builder import FederationConfig, build_federation
from repro.federation.surveys import SDSS, TWOMASS
from repro.skynode.wrapper import ArchiveInfo
from repro.workloads.skysim import SkyField, SurveySpec, generate_bodies, observe_survey
from dataclasses import replace


def test_footprint_limits_observations():
    field = SkyField(185.0, -0.5, 3600.0)
    bodies = generate_bodies(field, 500, seed=3)
    half = SurveySpec(
        archive="HALF", sigma_arcsec=0.2, detection_rate=1.0,
        primary_table="objects",
        footprint=SkyField(185.0, -0.5, 1800.0),  # inner half-radius cap
    )
    full = replace(half, archive="FULL", footprint=None)
    obs_half = observe_survey(half, bodies, seed=3)
    obs_full = observe_survey(full, bodies, seed=3)
    assert len(obs_half.rows) < len(obs_full.rows)
    # Area scales quadratically for small caps: expect roughly a quarter.
    assert 0.15 < len(obs_half.rows) / len(obs_full.rows) < 0.4


def test_archive_info_footprint_wire_roundtrip():
    info = ArchiveInfo(
        "X", 0.1, "t", "object_id", "ra", "dec",
        footprint_ra_deg=185.0, footprint_dec_deg=-0.5,
        footprint_radius_arcsec=1800.0,
    )
    assert ArchiveInfo.from_wire(info.to_wire()) == info
    allsky = ArchiveInfo("Y", 0.1, "t", "object_id", "ra", "dec")
    assert ArchiveInfo.from_wire(allsky.to_wire()) == allsky


def test_covers():
    info = ArchiveInfo(
        "X", 0.1, "t", "object_id", "ra", "dec",
        footprint_ra_deg=185.0, footprint_dec_deg=-0.5,
        footprint_radius_arcsec=1800.0,
    )
    assert info.covers(185.0, -0.5)
    assert info.covers(185.1, -0.5)
    assert not info.covers(190.0, -0.5)
    allsky = ArchiveInfo("Y", 0.1, "t", "object_id", "ra", "dec")
    assert allsky.covers(0.0, 89.0)


def test_federation_with_partial_footprint():
    """A query outside one archive's footprint early-exits via count star."""
    narrow_sdss = replace(
        SDSS, footprint=SkyField(185.0, -0.5, 900.0)
    )
    fed = build_federation(
        FederationConfig(
            surveys=[narrow_sdss, TWOMASS],
            n_bodies=600,
            seed=21,
            sky_field=SkyField(185.0, -0.5, 3600.0),
        )
    )
    record = fed.portal.catalog.node("SDSS")
    assert record.info.footprint_radius_arcsec == 900.0

    # Inside the footprint: matches exist.
    inside = fed.client().submit(
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
    )
    assert len(inside) > 0

    # An annulus-region query beyond the SDSS footprint but inside the
    # TWOMASS sky: SDSS count is 0, the chain never runs.
    fed.network.metrics.reset()
    outside = fed.client().submit(
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.8, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
    )
    assert len(outside) == 0
    assert outside.counts["O"] == 0
    assert outside.counts["T"] > 0
    assert fed.network.metrics.message_count(phase="crossmatch-chain") == 0
