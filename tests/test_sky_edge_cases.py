"""End-to-end geometry edge cases: the RA=0 meridian and the poles."""

import pytest

from repro.federation.builder import FederationConfig, build_federation
from repro.federation.surveys import SDSS, TWOMASS
from repro.workloads.skysim import SkyField


def make_fed(center_ra, center_dec):
    return build_federation(
        FederationConfig(
            surveys=[SDSS, TWOMASS],
            n_bodies=400,
            seed=44,
            sky_field=SkyField(center_ra, center_dec, 1800.0),
        )
    )


def run_query(fed, ra, dec):
    return fed.client().submit(
        f"SELECT O.object_id, T.obj_id "
        f"FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        f"WHERE AREA({ra}, {dec}, 900.0) AND XMATCH(O, T) < 3.5"
    )


def check_accuracy(fed, result):
    truth_o = fed.truth["SDSS"]
    truth_t = fed.truth["TWOMASS"]
    correct = sum(1 for o, t in result.rows if truth_o[o] == truth_t[t])
    assert correct / len(result) > 0.95


def test_field_straddling_ra_zero():
    """A field centered on the RA wrap point: ids span 359.9.. and 0.0.."""
    fed = make_fed(0.0, 10.0)
    sdss = fed.node("SDSS").db
    ras = [row[0] for row in sdss.execute(
        "SELECT o.ra FROM Photo_Object o"
    ).rows]
    assert any(ra > 350 for ra in ras) and any(ra < 10 for ra in ras)
    result = run_query(fed, 0.0, 10.0)
    assert len(result) > 0
    check_accuracy(fed, result)


def test_area_centered_just_west_of_meridian():
    fed = make_fed(0.0, 10.0)
    result = run_query(fed, 359.9, 10.0)
    assert len(result) > 0
    check_accuracy(fed, result)


def test_field_at_north_pole():
    fed = make_fed(120.0, 89.7)
    result = run_query(fed, 120.0, 89.7)
    assert len(result) > 0
    check_accuracy(fed, result)


def test_field_at_south_pole():
    fed = make_fed(300.0, -89.7)
    result = run_query(fed, 300.0, -89.7)
    assert len(result) > 0
    check_accuracy(fed, result)


def test_area_at_exact_pole_is_ra_independent():
    """AREA(x, 90, r) denotes the same cap for every RA value x."""
    fed = make_fed(120.0, 89.7)
    a = run_query(fed, 0.0, 90.0)
    b = run_query(fed, 180.0, 90.0)
    assert sorted(a.rows) == sorted(b.rows)
    assert len(a) > 0
