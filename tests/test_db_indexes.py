"""Spatial index probes."""

import random

import pytest

from repro.db.indexes import spatial_probe
from repro.db.schema import Column
from repro.db.table import SpatialSpec, Table, TableSchema
from repro.db.types import ColumnType
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.distance import angular_separation
from repro.sphere.random import random_in_cap
from repro.sphere.regions import Cap
from repro.units import arcsec_to_rad


def make_table(n=400, depth=10, seed=3):
    schema = TableSchema(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
    )
    table = Table(schema, spatial=SpatialSpec("ra", "dec", htm_depth=depth))
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    for i in range(n):
        ra, dec = vector_to_radec(random_in_cap(rng, center, 0.02))
        table.insert((i, ra, dec))
    return table


def brute_force(table, cap):
    hits = set()
    for pos in table.iter_positions():
        row = table.row(pos)
        if cap.contains(radec_to_vector(row[1], row[2])):
            hits.add(pos)
    return hits


def test_probe_exact_rows_truly_inside():
    table = make_table()
    cap = Cap.from_radec(185.0, -0.5, 1200.0)
    probe = spatial_probe(table, cap)
    for pos in probe.exact:
        row = table.row(pos)
        assert cap.contains(radec_to_vector(row[1], row[2]))


def test_probe_covers_all_matches():
    table = make_table()
    cap = Cap.from_radec(185.0, -0.5, 1200.0)
    probe = spatial_probe(table, cap)
    candidates = set(probe.exact) | set(probe.candidates)
    assert brute_force(table, cap) <= candidates


def test_probe_prunes_most_rows():
    table = make_table(n=1000)
    cap = Cap.from_radec(185.0, -0.5, 120.0)
    probe = spatial_probe(table, cap)
    assert probe.stats.candidate_rows < 200


def test_probe_empty_region():
    table = make_table()
    cap = Cap.from_radec(20.0, 50.0, 60.0)  # nowhere near the data
    probe = spatial_probe(table, cap)
    assert probe.exact == [] and probe.candidates == []


def test_probe_requires_spatial_table():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    table = Table(schema)
    with pytest.raises(ValueError):
        spatial_probe(table, Cap.from_radec(0.0, 0.0, 10.0))


def test_probe_stats_counts():
    table = make_table()
    cap = Cap.from_radec(185.0, -0.5, 600.0)
    probe = spatial_probe(table, cap)
    assert probe.stats.exact_rows == len(probe.exact)
    assert probe.stats.tested_rows == len(probe.candidates)
    assert probe.stats.candidate_rows == len(probe.exact) + len(probe.candidates)


def test_batch_probe_equals_scalar_probe():
    from repro.db.indexes import batch_spatial_probe

    table = make_table(n=600, seed=5)
    rng = random.Random(9)
    center = radec_to_vector(185.0, -0.5)
    caps = [
        Cap(random_in_cap(rng, center, 0.02), arcsec_to_rad(rng.uniform(5.0, 900.0)))
        for _ in range(40)
    ]
    caps.append(Cap.from_radec(20.0, 50.0, 60.0))  # off-field: empty probe
    batched = batch_spatial_probe(table, caps)
    assert len(batched) == len(caps)
    for cap, got in zip(caps, batched):
        ref = spatial_probe(table, cap)
        assert got.exact == ref.exact
        assert got.candidates == ref.candidates
        assert got.stats == ref.stats


def test_batch_probe_non_cap_regions_fall_back():
    from repro.db.indexes import batch_spatial_probe
    from repro.sphere.regions import ConvexPolygon

    table = make_table(n=200, seed=6)
    polygon = ConvexPolygon.from_radec(
        [(184.8, -0.7), (185.2, -0.7), (185.2, -0.3), (184.8, -0.3)]
    )
    cap = Cap.from_radec(185.0, -0.5, 600.0)
    batched = batch_spatial_probe(table, [polygon, cap])
    for region, got in zip([polygon, cap], batched):
        ref = spatial_probe(table, region)
        assert got.exact == ref.exact
        assert got.candidates == ref.candidates
        assert got.stats == ref.stats


def test_batch_probe_empty_table():
    from repro.db.indexes import batch_spatial_probe

    table = make_table(n=0)
    probes = batch_spatial_probe(table, [Cap.from_radec(185.0, -0.5, 600.0)])
    assert probes[0].exact == [] and probes[0].candidates == []


def test_rows_in_id_range_inclusive_bounds():
    """Both range scanners honour the inclusive [lo, hi] contract, with
    the bisect seeded by a 1-tuple rather than a position sentinel."""
    import numpy as np
    from repro.db.indexes import _array_rows_in_id_range, _rows_in_id_range

    entries = [(5, 0), (5, 3), (7, 1), (9, 2), (12, 4)]
    htm_ids = np.asarray([e[0] for e in entries])
    positions = np.asarray([e[1] for e in entries])

    cases = [
        (5, 5),    # hits the lowest id exactly, including position 0
        (5, 9),    # inclusive on both ends
        (6, 8),    # interior range with no exact endpoints
        (10, 11),  # empty gap between ids
        (12, 99),  # open-ended top
        (0, 4),    # everything below the table
    ]
    for lo, hi in cases:
        expected = [pos for hid, pos in entries if lo <= hid <= hi]
        assert list(_rows_in_id_range(entries, lo, hi)) == expected
        got = _array_rows_in_id_range(htm_ids, positions, lo, hi, None)
        assert got.tolist() == expected


def test_array_rows_in_id_range_epoch_limit():
    import numpy as np
    from repro.db.indexes import _array_rows_in_id_range

    htm_ids = np.asarray([5, 5, 7])
    positions = np.asarray([0, 3, 1])
    got = _array_rows_in_id_range(htm_ids, positions, 5, 7, 2)
    assert got.tolist() == [0, 1]


def test_batch_probe_equals_scalar_probe_with_limit():
    """Epoch-limited scans agree between the scalar and array scanners."""
    from repro.db.indexes import batch_spatial_probe

    table = make_table(n=300)
    cap = Cap.from_radec(185.0, -0.5, 1200.0)
    single = spatial_probe(table, cap, limit=150)
    (batched,) = batch_spatial_probe(table, [cap], limit=150)
    assert batched.exact == single.exact
    assert batched.candidates == single.candidates
    assert all(pos < 150 for pos in batched.exact + batched.candidates)
