"""SQL rendering and dialects."""

import pytest

from repro.sql.parser import parse_expression, parse_query
from repro.sql.printer import ANSI, POSTGRES, SQLSERVER, to_sql


def roundtrip(sql):
    """Parse -> print -> parse must be a fixed point (AST equality)."""
    first = parse_query(sql)
    printed = to_sql(first)
    second = parse_query(printed)
    assert first == second
    return printed


def test_roundtrip_simple():
    roundtrip("SELECT t.a FROM T t WHERE t.a > 1")


def test_roundtrip_paper_query():
    printed = roundtrip(
        "SELECT O.object_id, T.object_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T) < 3.5 "
        "AND O.type = GALAXY"
    )
    assert "AREA(185.0, -0.5, 4.5)" in printed
    assert "XMATCH(O, T) < 3.5" in printed


def test_roundtrip_dropout():
    printed = roundtrip(
        "SELECT a.x FROM A:T1 a, B:T2 b WHERE XMATCH(a, !b) < 2.0"
    )
    assert "XMATCH(a, !b)" in printed


def test_roundtrip_precedence_preserved():
    printed = roundtrip("SELECT t.a FROM T t WHERE (t.a + 1) * 2 > 6")
    assert parse_query(printed) == parse_query(
        "SELECT t.a FROM T t WHERE (t.a + 1) * 2 > 6"
    )


def test_or_inside_and_parenthesized():
    printed = to_sql(parse_expression("(a = 1 OR b = 2) AND c = 3"))
    assert printed.startswith("(")
    assert parse_expression(printed) == parse_expression(
        "(a = 1 OR b = 2) AND c = 3"
    )


def test_string_escaping():
    printed = to_sql(parse_expression("'it''s'"))
    assert printed == "'it''s'"
    assert parse_expression(printed) == parse_expression("'it''s'")


def test_null_true_false():
    assert to_sql(parse_expression("NULL")) == "NULL"
    assert to_sql(parse_expression("TRUE")) == "TRUE"


def test_sqlserver_dialect_brackets():
    query = parse_query("SELECT t.a FROM T t")
    printed = to_sql(query, SQLSERVER)
    assert "[a]" in printed and "[T]" in printed


def test_postgres_dialect_quotes_and_area():
    query = parse_query("SELECT t.a FROM T t WHERE AREA(1.0, 2.0, 3.0)")
    printed = to_sql(query, POSTGRES)
    assert '"a"' in printed
    assert "sky_area(" in printed


def test_ansi_dialect_no_quotes():
    query = parse_query("SELECT t.a FROM T t")
    assert to_sql(query, ANSI) == "SELECT t.a FROM T t"


def test_limit_printed():
    assert to_sql(parse_query("SELECT t.a FROM T t LIMIT 5")).endswith("LIMIT 5")


def test_select_alias_printed():
    printed = to_sql(parse_query("SELECT t.a AS x FROM T t"))
    assert "AS x" in printed


def test_count_star_printed():
    assert "COUNT(*)" in to_sql(parse_query("SELECT count(*) FROM T t"))


def test_archive_qualifier_printed():
    printed = to_sql(parse_query("SELECT O.a FROM SDSS:T O"))
    assert "SDSS:T O" in printed
