"""Property-based tests: the zone engine is byte-identical to HTM (hypothesis).

The tentpole contract, stated as a property: for ANY random federation
(body count, seed, survey sigmas) and EITHER chain mode, running the same
cross-match query on a zone-indexed federation and an HTM-indexed one
yields identical rows, identical per-node scan statistics, and identical
wire traffic byte-for-byte. The engines may examine their candidate
supersets through different index structures, but nothing observable —
result set, stats on the wire, message sizes — may differ. Chaos seeds
(``SKYQUERY_CHAOS_SEED``) vary the simulated retry timings like the other
property suites.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.workloads.skysim import SkyField

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)

DROPOUT_SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
)


def _build(match_engine, chain_mode, n_bodies, seed):
    return build_federation(
        FederationConfig(
            n_bodies=n_bodies,
            seed=seed,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=seed + CHAOS_SEED,
            ),
            chain_mode=chain_mode,
            match_engine=match_engine,
        )
    )


def _observe(match_engine, chain_mode, n_bodies, seed, sql):
    """Everything externally observable about one federated query."""
    fed = _build(match_engine, chain_mode, n_bodies, seed)
    fed.network.metrics.reset()
    result = fed.client().submit(sql)
    return (
        sorted(result.rows),
        result.node_stats,
        fed.network.metrics.bytes_by_phase(),
    )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    chain_mode=st.sampled_from(["store-forward", "pipelined"]),
    n_bodies=st.integers(60, 220),
    seed=st.integers(0, 10_000),
)
def test_zone_engine_byte_identical_to_htm(chain_mode, n_bodies, seed):
    """Same rows, same node stats, same wire bytes — any sky, any mode."""
    htm = _observe("htm", chain_mode, n_bodies, seed, XMATCH_SQL)
    zone = _observe("zone", chain_mode, n_bodies, seed, XMATCH_SQL)
    assert zone == htm
    rows, node_stats, phases = htm
    assert rows  # the scenario is non-trivial
    assert node_stats
    assert phases.get("crossmatch-chain", 0) > 0


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    chain_mode=st.sampled_from(["store-forward", "pipelined"]),
    seed=st.integers(0, 10_000),
)
def test_zone_engine_byte_identical_on_dropout_chains(chain_mode, seed):
    """The negative (drop-out) step also examines identical candidates."""
    htm = _observe("htm", chain_mode, 140, seed, DROPOUT_SQL)
    zone = _observe("zone", chain_mode, 140, seed, DROPOUT_SQL)
    assert zone == htm
