"""The SQL tokenizer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


def test_keywords_uppercased():
    assert kinds("select") == [(TokenType.KEYWORD, "SELECT")]
    assert kinds("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]


def test_identifiers_keep_case():
    assert kinds("Photo_Object") == [(TokenType.IDENT, "Photo_Object")]


def test_numbers():
    assert kinds("42") == [(TokenType.NUMBER, "42")]
    assert kinds("3.5") == [(TokenType.NUMBER, "3.5")]
    assert kinds("1e3") == [(TokenType.NUMBER, "1e3")]
    assert kinds("2.5e-4") == [(TokenType.NUMBER, "2.5e-4")]
    assert kinds(".5") == [(TokenType.NUMBER, ".5")]


def test_negative_number_is_minus_then_number():
    assert kinds("-0.5") == [(TokenType.OP, "-"), (TokenType.NUMBER, "0.5")]


def test_strings_with_escaped_quote():
    assert kinds("'it''s'") == [(TokenType.STRING, "it's")]


def test_unterminated_string():
    with pytest.raises(SQLSyntaxError):
        tokenize("'oops")


def test_operators():
    assert [v for _, v in kinds("<= >= <> != = < >")] == [
        "<=", ">=", "<>", "!=", "=", "<", ">",
    ]


def test_bang_is_punct_when_not_equals():
    assert kinds("!P") == [(TokenType.PUNCT, "!"), (TokenType.IDENT, "P")]


def test_archive_qualifier_punctuation():
    assert kinds("SDSS:T")[1] == (TokenType.PUNCT, ":")


def test_comments_skipped():
    assert kinds("1 -- comment\n2") == [
        (TokenType.NUMBER, "1"),
        (TokenType.NUMBER, "2"),
    ]


def test_positions_tracked():
    tokens = tokenize("SELECT\n  x")
    ident = [t for t in tokens if t.type is TokenType.IDENT][0]
    assert ident.line == 2
    assert ident.column == 3


def test_unexpected_character():
    with pytest.raises(SQLSyntaxError) as err:
        tokenize("SELECT @")
    assert "unexpected" in str(err.value)


def test_eof_token_present():
    tokens = tokenize("x")
    assert tokens[-1].type is TokenType.EOF


def test_matches_helper():
    token = tokenize("SELECT")[0]
    assert token.matches(TokenType.KEYWORD, "SELECT")
    assert token.matches(TokenType.KEYWORD)
    assert not token.matches(TokenType.IDENT)
    assert not token.matches(TokenType.KEYWORD, "FROM")
