"""Region covers: soundness and conservativeness."""

import random

import pytest

from repro.errors import HTMError
from repro.htm.cover import cover
from repro.htm.index import id_for_point
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import random_in_cap
from repro.sphere.regions import Cap, ConvexPolygon
from repro.units import arcsec_to_rad


def test_full_and_partial_disjoint():
    cap = Cap.from_radec(185.0, -0.5, 3600.0)
    result = cover(cap, 8)
    for lo, hi in result.full:
        for hid in (lo, hi):
            assert not result.partial.contains(hid)


def test_cover_sound_for_cap():
    """No point of the region may fall outside the cover; no point of a
    'full' trixel may fall outside the region."""
    cap = Cap.from_radec(185.0, -0.5, 1800.0)
    result = cover(cap, 9)
    rng = random.Random(0)
    for _ in range(1500):
        p = random_in_cap(rng, cap.center, cap.radius_rad * 1.4)
        hid = id_for_point(p, 9)
        if cap.contains(p):
            assert result.full.contains(hid) or result.partial.contains(hid)
        if result.full.contains(hid):
            assert cap.contains(p)


def test_cover_tightens_with_depth():
    cap = Cap.from_radec(185.0, -0.5, 1800.0)
    shallow = cover(cap, 6)
    deep = cover(cap, 10)
    # Fraction of covered area that is 'partial' must shrink with depth.
    def partial_fraction(c, depth):
        scale = 4 ** (10 - depth)
        total = c.full.id_count() + c.partial.id_count()
        return c.partial.id_count() / total

    assert partial_fraction(deep, 10) < partial_fraction(shallow, 6)


def test_tiny_cap_cover_nonempty():
    cap = Cap.from_radec(185.0, -0.5, 4.5)
    result = cover(cap, 12)
    assert result.all_ranges().id_count() >= 1
    hid = id_for_point(radec_to_vector(185.0, -0.5), 12)
    assert result.all_ranges().contains(hid)


def test_depth_zero_cover():
    cap = Cap.from_radec(185.0, -0.5, 3600.0)
    result = cover(cap, 0)
    assert result.partial.id_count() >= 1
    assert all(8 <= lo <= hi <= 15 for lo, hi in result.all_ranges())


def test_polygon_cover_sound():
    poly = ConvexPolygon.from_radec(
        [(10.0, 10.0), (12.0, 10.0), (12.0, 12.0), (10.0, 12.0)]
    )
    result = cover(poly, 8)
    rng = random.Random(3)
    center = radec_to_vector(11.0, 11.0)
    for _ in range(500):
        p = random_in_cap(rng, center, arcsec_to_rad(3600.0 * 3))
        hid = id_for_point(p, 8)
        if poly.contains(p):
            assert result.full.contains(hid) or result.partial.contains(hid)
        if result.full.contains(hid):
            assert poly.contains(p)


def test_bad_depth_rejected():
    cap = Cap.from_radec(0.0, 0.0, 10.0)
    with pytest.raises(HTMError):
        cover(cap, -1)
    with pytest.raises(HTMError):
        cover(cap, 99)


def test_full_ranges_at_target_depth():
    from repro.htm.mesh import depth_of_id

    cap = Cap.from_radec(185.0, -0.5, 3600.0)
    result = cover(cap, 8)
    for lo, hi in result.full:
        assert depth_of_id(lo) == 8
        assert depth_of_id(hi) == 8


class TestAdaptiveCover:
    def _cap(self):
        from repro.sphere.regions import Cap

        return Cap.from_radec(185.0, -0.5, 1800.0)

    def test_adaptive_cover_sound(self):
        import random

        from repro.htm.cover import cover_adaptive

        cap = self._cap()
        result = cover_adaptive(cap, 10, max_ranges=24)
        rng = random.Random(7)
        for _ in range(800):
            p = random_in_cap(rng, cap.center, cap.radius_rad * 1.3)
            hid = id_for_point(p, 10)
            if cap.contains(p):
                assert result.full.contains(hid) or result.partial.contains(hid)
            if result.full.contains(hid):
                assert cap.contains(p)

    def test_adaptive_cover_respects_budget(self):
        from repro.htm.cover import cover_adaptive

        cap = self._cap()
        for budget in (8, 16, 64):
            result = cover_adaptive(cap, 12, max_ranges=budget)
            # Ranges merge after the fact, so the soft budget holds with a
            # small slack for the final frontier flush.
            total = len(result.full) + len(result.partial)
            assert total <= budget + 8, (budget, total)

    def test_tighter_budget_coarser_cover(self):
        from repro.htm.cover import cover_adaptive

        cap = self._cap()
        tight = cover_adaptive(cap, 12, max_ranges=8)
        loose = cover_adaptive(cap, 12, max_ranges=256)
        # A coarser cover marks more ids as 'needs geometric recheck'.
        assert tight.partial.id_count() >= loose.partial.id_count()

    def test_adaptive_matches_exact_when_budget_huge(self):
        from repro.htm.cover import cover, cover_adaptive

        cap = self._cap()
        exact = cover(cap, 8)
        adaptive = cover_adaptive(cap, 8, max_ranges=100_000)
        assert adaptive.full.union(adaptive.partial) == exact.full.union(
            exact.partial
        )

    def test_bad_budget_rejected(self):
        from repro.htm.cover import cover_adaptive

        with pytest.raises(HTMError):
            cover_adaptive(self._cap(), 8, max_ranges=2)
