"""Black-box cost calibration and byte-based ordering."""

import pytest

from repro.errors import PlanningError
from repro.portal.calibration import ArchiveCostModel, CostCalibrator
from repro.portal.decompose import decompose
from repro.portal.planner import OrderingStrategy
from repro.sql.parser import parse_query

WIDE_SQL = (
    "SELECT O.object_id, O.type, O.u_flux, O.g_flux, O.r_flux, O.i_flux, "
    "O.z_flux, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5 "
    "AND O.type = GALAXY"
)


@pytest.fixture()
def decomposed(small_federation):
    return decompose(parse_query(WIDE_SQL), small_federation.portal.catalog)


def test_calibration_measures_row_widths(small_federation, decomposed):
    models = CostCalibrator(small_federation.portal).calibrate(decomposed)
    assert set(models) == {"O", "T"}
    # SDSS ships 6 extra attributes vs TWOMASS's 1: much wider rows.
    assert models["O"].bytes_per_row > models["T"].bytes_per_row * 2
    assert models["O"].sample_rows > 0
    assert models["O"].round_trip_s > 0


def test_calibration_traffic_tagged(small_federation, decomposed):
    small_federation.network.metrics.reset()
    CostCalibrator(small_federation.portal).calibrate(decomposed)
    metrics = small_federation.network.metrics
    assert metrics.message_count(phase="calibration") == 4  # 2 round trips


def test_estimated_bytes_scales(small_federation, decomposed):
    models = CostCalibrator(small_federation.portal).calibrate(decomposed)
    model = models["O"]
    assert model.estimated_bytes(100) == pytest.approx(
        100 * model.bytes_per_row
    )


def test_bytes_desc_requires_models(small_federation, decomposed):
    portal = small_federation.portal
    counts = portal.planner.performance_counts(decomposed)
    with pytest.raises(PlanningError):
        portal.planner.build_plan(
            decomposed, counts, strategy=OrderingStrategy.BYTES_DESC
        )


def test_bytes_desc_orders_by_estimated_bytes(small_federation, decomposed):
    portal = small_federation.portal
    counts = portal.planner.performance_counts(decomposed)
    models = {
        "O": ArchiveCostModel("O", "SDSS", bytes_per_row=200.0,
                              round_trip_s=0.1, sample_rows=10),
        "T": ArchiveCostModel("T", "TWOMASS", bytes_per_row=10.0,
                              round_trip_s=0.1, sample_rows=10),
    }
    plan = portal.planner.build_plan(
        decomposed, counts,
        strategy=OrderingStrategy.BYTES_DESC, cost_models=models,
    )
    # O's estimated bytes dwarf T's despite the smaller count.
    assert [s.alias for s in plan.steps] == ["O", "T"]


def test_bytes_desc_same_results_as_count_desc(small_federation):
    client = small_federation.client()
    by_count = client.submit(WIDE_SQL, strategy="count_desc")
    by_bytes = client.submit(WIDE_SQL, strategy="bytes_desc")
    assert sorted(by_count.rows) == sorted(by_bytes.rows)


def test_bytes_desc_ships_fewer_bytes_for_wide_rows(small_federation):
    client = small_federation.client()
    metrics = small_federation.network.metrics

    metrics.reset()
    client.submit(WIDE_SQL, strategy="count_desc")
    count_bytes = metrics.total_bytes(phase="crossmatch-chain")

    metrics.reset()
    client.submit(WIDE_SQL, strategy="bytes_desc")
    bytes_bytes = metrics.total_bytes(phase="crossmatch-chain")

    assert bytes_bytes < count_bytes
