"""HTM id range sets."""

import pytest

from repro.htm.ranges import HTMRanges


def test_empty():
    ranges = HTMRanges()
    assert len(ranges) == 0
    assert not ranges
    assert not ranges.contains(5)
    assert ranges.id_count() == 0


def test_single_range_contains():
    ranges = HTMRanges([(10, 20)])
    assert ranges.contains(10)
    assert ranges.contains(20)
    assert ranges.contains(15)
    assert not ranges.contains(9)
    assert not ranges.contains(21)


def test_merge_overlapping():
    ranges = HTMRanges([(10, 20), (15, 30)])
    assert ranges.as_tuples() == [(10, 30)]


def test_merge_adjacent():
    ranges = HTMRanges([(10, 20), (21, 30)])
    assert ranges.as_tuples() == [(10, 30)]


def test_keeps_gaps():
    ranges = HTMRanges([(10, 20), (22, 30)])
    assert ranges.as_tuples() == [(10, 20), (22, 30)]
    assert not ranges.contains(21)


def test_sorts_input():
    ranges = HTMRanges([(30, 40), (10, 20)])
    assert ranges.as_tuples() == [(10, 20), (30, 40)]


def test_drops_inverted_ranges():
    ranges = HTMRanges([(20, 10), (1, 2)])
    assert ranges.as_tuples() == [(1, 2)]


def test_union():
    a = HTMRanges([(1, 5)])
    b = HTMRanges([(4, 10), (20, 25)])
    merged = a.union(b)
    assert merged.as_tuples() == [(1, 10), (20, 25)]


def test_id_count():
    ranges = HTMRanges([(1, 5), (10, 10)])
    assert ranges.id_count() == 6


def test_equality():
    assert HTMRanges([(1, 5)]) == HTMRanges([(1, 3), (4, 5)])
    assert HTMRanges([(1, 5)]) != HTMRanges([(1, 6)])


def test_iteration_order():
    ranges = HTMRanges([(10, 12), (1, 2)])
    assert list(ranges) == [(1, 2), (10, 12)]


def test_repr():
    assert "1, 2" in repr(HTMRanges([(1, 2)]))
