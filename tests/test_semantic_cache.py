"""The Portal's epoch-aware semantic result cache."""

import pytest

from repro.bench.scenarios import fresh_federation, paper_query
from repro.portal.cache import CacheConfig, SemanticCache
from repro.workloads.skysim import generate_bodies, observe_survey

SMALL = 140

XMATCH_2 = """
SELECT O.object_id, O.ra, T.obj_id
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T
WHERE AREA(185.0, -0.5, {radius}) AND XMATCH(O, T) < 3.5
"""


def _fed(**kwargs):
    kwargs.setdefault("n_bodies", SMALL)
    kwargs.setdefault("cache", True)
    return fresh_federation(**kwargs)


def _total_bytes(fed):
    return sum(fed.network.metrics.bytes_by_phase().values())


def _ingest(fed, archive, n_rows, seed_offset=77):
    config = fed.config
    survey = next(s for s in config.surveys if s.archive == archive)
    observation = observe_survey(
        survey,
        generate_bodies(config.sky_field, n_rows, config.seed + seed_offset),
        config.seed + seed_offset,
    )
    columns = list(observation.rows[0].keys())
    rows = [tuple(row[c] for c in columns) for row in observation.rows]
    result = fed.ingest_client(archive).ingest_rows(
        survey.primary_table, columns, rows
    )
    assert result.committed
    return result


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(max_entries=0)
    with pytest.raises(ValueError):
        CacheConfig(max_probe_entries=0)


def test_builder_rejects_junk_cache_config():
    from repro.errors import ConfigurationError
    from repro.federation.builder import FederationConfig, build_federation
    from repro.workloads.skysim import SkyField

    with pytest.raises(ConfigurationError):
        build_federation(
            FederationConfig(
                n_bodies=10, sky_field=SkyField(185.0, -0.5, 900.0),
                cache=3.14,
            )
        )


def test_exact_hit_identical_and_zero_wire():
    fed = _fed()
    sql = paper_query(900.0)
    first = fed.portal.submit(sql)
    assert first.cache is None
    before = _total_bytes(fed)
    clock_before = fed.network.clock.now
    second = fed.portal.submit(sql)
    assert second.cache == "exact"
    assert second == first  # rows, stats, counts, epochs, warnings
    assert _total_bytes(fed) == before
    assert fed.network.clock.now == clock_before
    assert fed.cache.stats.hits == 1
    # Tracing reconciliation: the hit's trace carries zero wire bytes.
    assert second.trace is None or second.trace.total_wire_bytes() == 0


def test_strategy_changes_key_but_probes_memoize():
    from repro.portal.planner import OrderingStrategy

    # Containment off: it would (correctly) serve the same circle under
    # any strategy, but this test is about the probe memo.
    fed = _fed(cache=CacheConfig(containment=False))
    sql = paper_query(900.0)
    first = fed.portal.submit(sql, strategy=OrderingStrategy.COUNT_DESC)
    second = fed.portal.submit(sql, strategy=OrderingStrategy.COUNT_ASC)
    # Different exact key: not served from the result cache...
    assert second.cache is None
    # ...but the identical count-star probes were.
    assert fed.cache.stats.probe_hits >= 2
    assert sorted(second.rows) == sorted(first.rows)
    assert second.counts == first.counts


def test_ingest_commit_invalidates_and_pins_still_serve():
    fed = _fed(ingest=True)
    sql = paper_query(900.0)
    first = fed.portal.submit(sql)
    assert fed.portal.submit(sql).cache == "exact"

    ingest = _ingest(fed, "SDSS", 40)
    assert fed.cache.stats.invalidations > 0

    after = fed.portal.submit(sql)
    assert after.cache is None  # re-executed, not served stale
    assert after.epochs["O"] == ingest.epoch
    # The old snapshot remains reachable by pinning, bypassing the cache.
    pinned = fed.portal.submit(sql, pin_epochs=first.epochs)
    assert pinned.rows == first.rows
    # And the new epoch's answer re-warms.
    assert fed.portal.submit(sql) == after
    assert fed.cache.stats.hits >= 2


def test_note_epoch_is_surgical():
    cache = SemanticCache()
    cache.probe_store("SDSS", "SELECT COUNT(*)", 10, 0)
    cache.probe_store("FIRST", "SELECT COUNT(*)", 7, 0)
    cache.note_epoch("SDSS", 1)
    assert cache.probe_lookup("SDSS", "SELECT COUNT(*)", None) is None
    assert cache.probe_lookup("FIRST", "SELECT COUNT(*)", None) == (7, 0)
    assert cache.stats.invalidations == 1


def test_lru_eviction_bounds_entries():
    # Containment off so every distinct radius is a genuine store.
    fed = _fed(cache=CacheConfig(max_entries=2, containment=False))
    for radius in (600.0, 700.0, 800.0):
        fed.portal.submit(XMATCH_2.format(radius=radius))
    assert fed.cache.stats.evictions == 1
    # Oldest entry evicted: re-submitting it misses.
    assert fed.portal.submit(XMATCH_2.format(radius=600.0)).cache is None
    assert fed.portal.submit(XMATCH_2.format(radius=800.0)).cache == "exact"


def test_containment_serves_smaller_circle_locally():
    fed = _fed()
    big = fed.portal.submit(XMATCH_2.format(radius=2000.0))
    before = _total_bytes(fed)
    small = fed.portal.submit(XMATCH_2.format(radius=900.0))
    assert small.cache == "containment"
    assert _total_bytes(fed) == before  # zero federation traffic
    assert small.epochs == big.epochs
    assert small.node_stats[0]["cache"] == "containment"
    assert small.node_stats[0]["source_fingerprint"]
    assert small.node_stats[0]["tuples_kept"] == len(small.rows)
    # Same multiset of rows as a fresh, uncached federation computes.
    fresh = fresh_federation(n_bodies=SMALL).portal.submit(
        XMATCH_2.format(radius=900.0)
    )
    assert sorted(small.rows) == sorted(fresh.rows)
    assert len(small.rows) < len(big.rows)


def test_containment_refuses_risky_shapes():
    fed = _fed()
    fed.portal.submit(XMATCH_2.format(radius=2000.0))

    # LIMIT truncates in plan order: serving a re-filtered subset could
    # pick different survivors, so the cache must execute.
    limited = fed.portal.submit(
        XMATCH_2.format(radius=900.0).rstrip() + " LIMIT 5"
    )
    assert limited.cache != "containment"

    # Pinned reads describe a snapshot, not "whatever is cached".
    live = fed.portal.submit(XMATCH_2.format(radius=2000.0))
    pinned = fed.portal.submit(
        XMATCH_2.format(radius=900.0), pin_epochs=live.epochs
    )
    assert pinned.cache != "containment"

    # A bigger circle is not contained: must execute.
    bigger = fed.portal.submit(XMATCH_2.format(radius=2400.0))
    assert bigger.cache is None


def test_dropout_queries_never_use_containment():
    fed = _fed()
    sql = paper_query(1500.0, dropout=True)
    fed.portal.submit(sql)
    again = fed.portal.submit(paper_query(900.0, dropout=True))
    # Drop-out semantics depend on the non-matching side; only exact
    # repeats are safe, and this is not one.
    assert again.cache is None
    # The exact path still works for drop-outs.
    assert fed.portal.submit(paper_query(900.0, dropout=True)).cache == "exact"


def test_attr_widening_changes_bytes_never_rows():
    sql = XMATCH_2.format(radius=900.0)
    plain = fresh_federation(n_bodies=SMALL)
    cached = _fed()
    a = plain.portal.submit(sql)
    b = cached.portal.submit(sql)
    assert a.columns == b.columns
    assert a.rows == b.rows
    assert a.counts == b.counts
    for lhs, rhs in zip(a.node_stats, b.node_stats):
        assert lhs["tuples_in"] == rhs["tuples_in"]
        assert lhs["tuples_out"] == rhs["tuples_out"]
    # The widened attr_select ships the extra position columns.
    assert _total_bytes(cached) > _total_bytes(plain)


def test_degraded_results_never_cached():
    cache = SemanticCache()
    from repro.portal.executor import FederatedResult

    degraded = FederatedResult(
        columns=["a"], rows=[(1,)], degraded=True, warnings=["lost FIRST"]
    )
    key = SemanticCache.exact_key("sql", "count_desc", 0, (), ())
    cache.store_result(key, degraded, archives_by_alias={})
    assert cache.stats.stores == 0
    assert cache.lookup_exact(key) is None


def test_profile_knobs_produce_disjoint_plans():
    base = fresh_federation(n_bodies=SMALL)
    zoned = fresh_federation(n_bodies=SMALL, match_engine="zone")
    piped = fresh_federation(n_bodies=SMALL, chain_mode="pipelined")
    sql = XMATCH_2.format(radius=900.0)
    prints = {
        fed.portal.submit(sql).plan.fingerprint(0)
        for fed in (base, zoned, piped)
    }
    assert len(prints) == 3
