"""SOAP envelopes: RPC conventions and faults."""

import pytest

from repro.errors import SoapError, SoapFaultError
from repro.soap.encoding import WireRowSet
from repro.soap.envelope import (
    build_fault,
    build_rpc_request,
    build_rpc_response,
    parse_rpc_request,
    parse_rpc_response,
)


def test_request_roundtrip():
    text = build_rpc_request("DoThing", {"a": 1, "b": "x", "c": None})
    operation, params = parse_rpc_request(text)
    assert operation == "DoThing"
    assert params == {"a": 1, "b": "x", "c": None}


def test_request_with_rowset_param():
    rowset = WireRowSet([("a", "int")], [(1,), (2,)])
    text = build_rpc_request("Send", {"rows": rowset})
    _, params = parse_rpc_request(text)
    assert params["rows"].rows == [(1,), (2,)]


def test_request_no_params():
    operation, params = parse_rpc_request(build_rpc_request("Ping", {}))
    assert operation == "Ping"
    assert params == {}


def test_response_roundtrip():
    text = build_rpc_response("DoThing", {"ok": True, "n": 3})
    assert parse_rpc_response(text) == {"ok": True, "n": 3}


def test_response_scalar():
    assert parse_rpc_response(build_rpc_response("Q", 42)) == 42


def test_fault_raises():
    text = build_fault("soap:Server", "boom", "details")
    with pytest.raises(SoapFaultError) as err:
        parse_rpc_response(text)
    assert err.value.faultcode == "soap:Server"
    assert err.value.faultstring == "boom"
    assert err.value.detail == "details"


def test_fault_without_detail():
    with pytest.raises(SoapFaultError) as err:
        parse_rpc_response(build_fault("soap:Client", "bad"))
    assert err.value.detail == ""


def test_envelope_is_soap_namespaced():
    text = build_rpc_request("Op", {})
    assert "soap:Envelope" in text
    assert "http://schemas.xmlsoap.org/soap/envelope/" in text


def test_non_envelope_rejected():
    with pytest.raises(SoapError):
        parse_rpc_request("<notsoap/>")


def test_empty_body_rejected():
    doc = (
        '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">'
        "<soap:Body></soap:Body></soap:Envelope>"
    )
    with pytest.raises(SoapError):
        parse_rpc_request(doc)


def test_response_without_result_rejected():
    doc = (
        '<soap:Envelope xmlns:soap="x"><soap:Body>'
        "<QResponse></QResponse></soap:Body></soap:Envelope>"
    )
    with pytest.raises(SoapError):
        parse_rpc_response(doc)


def test_non_response_element_rejected():
    doc = (
        '<soap:Envelope xmlns:soap="x"><soap:Body>'
        "<Weird/></soap:Body></soap:Envelope>"
    )
    with pytest.raises(SoapError):
        parse_rpc_response(doc)


def test_bytes_input_accepted():
    text = build_rpc_request("Op", {"a": 1}).encode("utf-8")
    operation, params = parse_rpc_request(text)
    assert (operation, params) == ("Op", {"a": 1})
