"""The per-node processing cost model."""

import pytest

from repro.federation.builder import FederationConfig, build_federation
from repro.workloads.skysim import SkyField

SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)


def make_fed(rate):
    return build_federation(
        FederationConfig(
            n_bodies=400,
            seed=9,
            sky_field=SkyField(185.0, -0.5, 1200.0),
            processing_seconds_per_row=rate,
        )
    )


def test_processing_seconds_accumulate():
    fed = make_fed(5e-6)
    fed.network.metrics.reset()
    fed.client().submit(SQL)
    assert fed.network.metrics.processing_seconds > 0


def test_zero_rate_charges_nothing():
    fed = make_fed(0.0)
    fed.network.metrics.reset()
    fed.client().submit(SQL)
    assert fed.network.metrics.processing_seconds == 0.0


def test_processing_advances_clock():
    slow = make_fed(1e-3)
    fast = make_fed(0.0)
    for fed in (slow, fast):
        fed.network.metrics.reset()
        start = fed.network.clock.now
        fed.client().submit(SQL)
        fed.elapsed = fed.network.clock.now - start
    assert slow.elapsed > fast.elapsed


def test_processing_proportional_to_rows_examined():
    fed = make_fed(1e-4)
    fed.network.metrics.reset()
    result = fed.client().submit(SQL)
    examined = sum(s["rows_examined"] for s in result.node_stats)
    # The chain charges exactly rows_examined * rate (perf/calibration
    # queries add more, so this is a lower bound check plus sanity cap).
    charged = fed.network.metrics.processing_seconds
    assert charged >= examined * 1e-4 - 1e-9
    assert charged < examined * 1e-4 * 10


def test_detached_node_charges_nothing():
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.table import SpatialSpec
    from repro.db.types import ColumnType
    from repro.skynode.node import SkyNode
    from repro.skynode.wrapper import ArchiveInfo

    db = Database("x")
    db.create_table(
        "t",
        [
            Column("object_id", ColumnType.INT),
            Column("ra", ColumnType.FLOAT),
            Column("dec", ColumnType.FLOAT),
        ],
        spatial=SpatialSpec("ra", "dec"),
    )
    node = SkyNode(
        db,
        ArchiveInfo("X", 0.1, "t", "object_id", "ra", "dec"),
        processing_seconds_per_row=1.0,
    )
    node.charge_processing(100)  # offline: must be a silent no-op
