"""Chaos tests: shard failover, shard-named degradation, and the
endpoint-candidate ordering contract.

The resilience contract for sharded archives extends docs/RESILIENCE.md:

* A shard primary dying is invisible when the shard has a mirror — the
  scatter-gather fan-out fails over *per shard candidate* inside the
  parallel region and the answer stays byte-identical to the fault-free
  oracle, never degraded.
* A shard with no mirror left yields a degraded empty result whose
  warning names **the shard**, not just the archive — operators must see
  which slice of the sky went dark.
* Shard endpoints are slices, not whole-archive substitutes: they must
  NEVER appear in :meth:`NodeRecord.endpoint_candidates` (the archive
  failover pool walked by portal.py/executor.py), yet ``_cancel_chain``
  must still reach them directly, because a dead coordinator cannot fan
  its own cancel down to its shards.

``SKYQUERY_CHAOS_SEED`` shifts retry timings like the other chaos suites.
"""

import os

from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.shard import prune_members
from repro.sql.ast import AreaClause
from repro.workloads.skysim import SkyField

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

AREA = AreaClause(ra_deg=185.0, dec_deg=-0.5, radius_arcsec=900.0)

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)


def _build(*, shards=4, shard_key="zone", replicas=0,
           chain_mode="store-forward"):
    return build_federation(
        FederationConfig(
            n_bodies=300,
            seed=11,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=11 + CHAOS_SEED,
            ),
            shards=shards,
            shard_key=shard_key,
            replicas=replicas,
            chain_mode=chain_mode,
        )
    )


def _oracle(chain_mode="store-forward"):
    fed = _build(shards=0, chain_mode=chain_mode)
    result = fed.portal.submit(XMATCH_SQL)
    assert result.rows and not result.degraded
    return list(result.rows), list(result.columns)


def _victim_member(fed, archive="SDSS"):
    """A shard member the query AREA actually needs (never pruned away)."""
    record = fed.portal.catalog.node(archive)
    members = prune_members(record.shard_set.members, AREA)
    assert members, "query AREA must intersect at least one shard"
    return members[0]


def _host_of(url):
    return url.split("/")[2]


def _kill(fed, member, candidate=0):
    fed.network.remove_host(_host_of(member.candidate_urls("query")[candidate]))


class TestShardFailover:
    def test_dead_primary_with_mirror_is_invisible(self):
        """Kill a needed shard's primary: the mirror answers, bytes match
        the fault-free monolithic oracle, nothing is degraded."""
        rows, columns = _oracle()
        fed = _build(replicas=1)
        _kill(fed, _victim_member(fed))
        result = fed.portal.submit(XMATCH_SQL)
        assert not result.degraded
        assert not result.warnings
        assert list(result.rows) == rows
        assert list(result.columns) == columns

    def test_dead_mirror_alone_is_also_invisible(self):
        """Killing only the mirror never even costs a failover attempt."""
        rows, _ = _oracle()
        fed = _build(replicas=1)
        _kill(fed, _victim_member(fed), candidate=1)
        result = fed.portal.submit(XMATCH_SQL)
        assert not result.degraded and not result.warnings
        assert list(result.rows) == rows

    def test_dead_shard_without_mirror_names_the_shard(self):
        """No mirror left: degrade, and the warning must name the shard —
        not merely the archive — so operators see which slice went dark."""
        fed = _build(replicas=0)
        victim = _victim_member(fed)
        _kill(fed, victim)
        result = fed.portal.submit(XMATCH_SQL)
        assert result.degraded
        assert result.rows == []
        joined = " ".join(result.warnings)
        assert f"shard {victim.name!r}" in joined
        assert "'SDSS'" in joined  # the owning archive, for context
        assert victim.name != "SDSS"  # the name is shard-level, not archive

    def test_mid_chain_shard_death_degrades_with_shard_name(self):
        """Plan against a healthy federation, then kill the shard before
        the chain runs: the coordinator's fan-out exhausts the candidate
        list and the executor degrades with a shard-named warning."""
        for chain_mode in ("store-forward", "pipelined"):
            fed = _build(replicas=0, chain_mode=chain_mode)
            portal = fed.portal
            from repro.portal.decompose import decompose
            from repro.sql.parser import parse_query

            decomposed = decompose(parse_query(XMATCH_SQL), portal.catalog)
            epochs = {}
            counts = portal.planner.performance_counts(
                decomposed, epochs=epochs
            )
            plan = portal.planner.build_plan(decomposed, counts, epochs=epochs)
            victim = _victim_member(fed)
            _kill(fed, victim)
            result = portal.executor.execute(plan, decomposed)
            assert result.degraded, chain_mode
            joined = " ".join(result.warnings)
            assert "shard unavailable:" in joined, chain_mode
            assert f"shard {victim.name!r}" in joined, chain_mode

    def test_mid_chain_shard_death_with_mirror_stays_complete(self):
        """Same mid-chain kill, but a mirror exists: the fan-out slides to
        the next candidate and the full answer still comes back."""
        rows, _ = _oracle()
        fed = _build(replicas=1)
        portal = fed.portal
        from repro.portal.decompose import decompose
        from repro.sql.parser import parse_query

        decomposed = decompose(parse_query(XMATCH_SQL), portal.catalog)
        epochs = {}
        counts = portal.planner.performance_counts(decomposed, epochs=epochs)
        plan = portal.planner.build_plan(decomposed, counts, epochs=epochs)
        _kill(fed, _victim_member(fed))
        result = portal.executor.execute(plan, decomposed)
        assert not result.degraded and not result.warnings
        assert list(result.rows) == rows

    def test_archive_coordinator_failover_composes_with_shards(self):
        """Kill the *archive* primary of a sharded archive: the archive
        replica (which carries the same shard layout) takes over as the
        coordinating node and the answer matches the oracle."""
        rows, _ = _oracle()
        fed = _build(replicas=1)
        fed.network.remove_host(fed.nodes["SDSS"].hostname)
        result = fed.portal.submit(XMATCH_SQL)
        assert not result.degraded
        assert list(result.rows) == rows


class TestEndpointCandidateOrdering:
    """The ordering/membership contract at every
    ``record.endpoint_candidates()`` loop site (portal.py, executor.py)."""

    def test_shard_endpoints_never_enter_archive_candidates(self):
        """Shard endpoints hold slices — substituting one for the archive
        would silently answer from 1/N of the sky. They must stay out of
        the archive-level failover pool."""
        fed = _build(replicas=1)
        for archive, shard_nodes in fed.shards.items():
            record = fed.portal.catalog.node(archive)
            candidate_hosts = {
                _host_of(url)
                for services in record.endpoint_candidates()
                for url in services.values()
            }
            assert fed.nodes[archive].hostname in candidate_hosts
            for node in shard_nodes:
                assert node.hostname not in candidate_hosts
            for mirrors in fed.shard_replicas[archive].values():
                for node in mirrors:
                    assert node.hostname not in candidate_hosts

    def test_primary_is_always_candidate_zero(self):
        """portal.py health probes and executor re-routing both assume
        index 0 is the registered primary; shard registration must not
        reorder the list."""
        fed = _build(replicas=2)
        for archive in fed.nodes:
            record = fed.portal.catalog.node(archive)
            candidates = record.endpoint_candidates()
            assert len(candidates) == 3  # primary + 2 archive replicas
            assert candidates[0] == dict(record.services)
            replica_hosts = [
                node.hostname for node in fed.replicas[archive]
            ]
            for services, host in zip(candidates[1:], replica_hosts):
                assert {_host_of(u) for u in services.values()} == {host}

    def test_cancel_chain_reaches_shard_endpoints(self):
        """A deadline death mid-submission must free server state on the
        shard workers too — the coordinator may be the very node that
        died, so the Portal cancels shard candidates directly."""
        fed = _build(replicas=1)
        deadline = fed.network.clock.now + 0.35
        qid = f"{fed.portal.hostname}-q{fed.portal.queries_served + 1}"
        result = fed.portal.submit(XMATCH_SQL, deadline_s=deadline)
        assert result.degraded
        leftovers = []
        shard_nodes = [
            node for group in fed.shards.values() for node in group
        ]
        for mirrors_by_shard in fed.shard_replicas.values():
            for mirrors in mirrors_by_shard.values():
                shard_nodes.extend(mirrors)
        for node in shard_nodes:
            crossmatch = node.crossmatch
            for xmid, staging in crossmatch._stagings.items():
                if staging.qid == qid:
                    leftovers.append((node.hostname, "staging", xmid))
            for sid, stream in crossmatch._streams.items():
                if stream.qid == qid and not stream.done:
                    leftovers.append((node.hostname, "stream", sid))
        assert leftovers == []
