"""The declination-zone index: zone arithmetic, windows, and table probes."""

import math
import random

import numpy as np
import pytest

from repro.db.indexes import batch_zone_probe, spatial_probe, zone_probe
from repro.db.schema import Column
from repro.db.table import SpatialSpec, Table, TableSchema
from repro.db.types import ColumnType
from repro.errors import GeometryError, SchemaError
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.random import random_in_cap
from repro.sphere.regions import Cap
from repro.units import arcsec_to_rad
from repro.zone.index import (
    DEFAULT_ZONE_HEIGHT_DEG,
    ZoneArrays,
    cap_windows,
    unit_vectors_to_radec,
    zone_count,
    zone_of,
)


# ---------------------------------------------------------------- zone math


def test_zone_count_default_height():
    # 30 arcsec stripes: 180 deg / (30/3600) deg = 21600 zones exactly.
    assert zone_count(DEFAULT_ZONE_HEIGHT_DEG) == 21600


def test_zone_count_rejects_nonpositive_height():
    with pytest.raises(GeometryError):
        zone_count(0.0)
    with pytest.raises(GeometryError):
        zone_count(-1.0)


def test_zone_of_poles_are_clamped_into_valid_zones():
    n = zone_count(DEFAULT_ZONE_HEIGHT_DEG)
    assert zone_of(-90.0) == 0
    # dec exactly +90 computes to zone n, clamped into the last stripe.
    assert zone_of(90.0) == n - 1


def test_zone_of_is_floor_of_shifted_dec():
    h = 1.0  # one-degree zones keep the arithmetic easy to eyeball
    assert zone_of(-90.0, h) == 0
    assert zone_of(-89.5, h) == 0
    assert zone_of(-89.0, h) == 1
    assert zone_of(0.0, h) == 90
    assert zone_of(89.9, h) == 179


def test_unit_vectors_to_radec_round_trip():
    points = [(0.0, 0.0), (359.9, 10.0), (180.0, -45.0), (90.0, 89.9)]
    matrix = np.asarray([radec_to_vector(ra, dec) for ra, dec in points])
    ra, dec = unit_vectors_to_radec(matrix)
    for i, (ra_true, dec_true) in enumerate(points):
        assert ra[i] == pytest.approx(ra_true, abs=1e-9)
        assert dec[i] == pytest.approx(dec_true, abs=1e-9)
    assert np.all((ra >= 0.0) & (ra < 360.0))


# ------------------------------------------------------------- cap windows


def test_cap_windows_are_supersets_of_their_caps():
    """Every point of each cap falls inside the cap's dec/RA window."""
    rng = random.Random(11)
    caps = [
        (185.0, -0.5, arcsec_to_rad(600.0)),
        (0.05, 0.0, arcsec_to_rad(900.0)),  # wraps through RA 0/360
        (100.0, 89.9, arcsec_to_rad(1200.0)),  # near the pole
        (200.0, -89.95, arcsec_to_rad(600.0)),
        (10.0, 40.0, math.radians(120.0)),  # radius beyond pi/2
    ]
    ra_c = np.asarray([c[0] for c in caps])
    dec_c = np.asarray([c[1] for c in caps])
    radii = np.asarray([c[2] for c in caps])
    dec_lo, dec_hi, halfwidth = cap_windows(ra_c, dec_c, radii)
    for i, (ra0, dec0, radius) in enumerate(caps):
        center = radec_to_vector(ra0, dec0)
        for _ in range(300):
            ra, dec = vector_to_radec(random_in_cap(rng, center, radius))
            assert dec_lo[i] <= dec <= dec_hi[i]
            delta = abs((ra - ra0 + 180.0) % 360.0 - 180.0)
            assert delta <= halfwidth[i]


def test_cap_windows_polar_fallback_spans_all_longitudes():
    _, _, halfwidth = cap_windows(
        np.asarray([10.0]), np.asarray([89.99]), np.asarray([math.radians(0.1)])
    )
    assert halfwidth[0] == 180.0


def test_cap_windows_equatorial_halfwidth_is_tight():
    radius = math.radians(1.0)
    _, _, halfwidth = cap_windows(
        np.asarray([50.0]), np.asarray([0.0]), np.asarray([radius])
    )
    assert halfwidth[0] == pytest.approx(1.0, abs=1e-5)
    assert halfwidth[0] >= 1.0  # padded outward, never inward


# --------------------------------------------------------------- ZoneArrays


def random_radec(rng, n):
    ra = [rng.uniform(0.0, 360.0) for _ in range(n)]
    dec = [math.degrees(math.asin(rng.uniform(-1.0, 1.0))) for _ in range(n)]
    return np.asarray(ra), np.asarray(dec)


def test_build_sorts_by_zone_then_ra():
    rng = random.Random(5)
    ra, dec = random_radec(rng, 500)
    za = ZoneArrays.build(ra, dec)
    assert len(za) == 500
    assert np.all(np.diff(za.zones) >= 0)
    same_zone = np.diff(za.zones) == 0
    assert np.all(np.diff(za.ra)[same_zone] >= 0)
    assert np.all(np.diff(za.keys) >= 0)
    # order is a permutation mapping sorted slots back to original rows.
    assert sorted(za.order.tolist()) == list(range(500))
    np.testing.assert_array_equal(za.ra, np.mod(ra, 360.0)[za.order])


def test_build_rejects_mismatched_arrays():
    with pytest.raises(GeometryError):
        ZoneArrays.build(np.zeros(3), np.zeros(4))


def test_window_pairs_matches_brute_force():
    """Window membership agrees with a per-point scan, wrap included."""
    rng = random.Random(7)
    ra, dec = random_radec(rng, 400)
    za = ZoneArrays.build(ra, dec, 1.0)
    windows = [
        (10.0, 14.0, 200.0, 5.0),
        (-2.0, 2.0, 359.5, 2.0),  # wraps below 0
        (-2.0, 2.0, 0.3, 2.0),  # wraps above 360
        (88.0, 95.0, 50.0, 180.0),  # full-circle scan near the pole
    ]
    dec_lo = np.asarray([w[0] for w in windows])
    dec_hi = np.asarray([w[1] for w in windows])
    ra_c = np.asarray([w[2] for w in windows])
    half = np.asarray([w[3] for w in windows])
    pair_t, pair_i = za.window_pairs(dec_lo, dec_hi, ra_c, half)
    got = {(int(t), int(i)) for t, i in zip(pair_t, pair_i)}
    assert len(got) == pair_t.size  # no duplicate pairs
    expected = set()
    for w, (lo, hi, rc, hw) in enumerate(windows):
        zlo, zhi = zone_of(lo, 1.0), zone_of(hi, 1.0)
        for i in range(400):
            if not (zlo <= zone_of(dec[i], 1.0) <= zhi):
                continue
            delta = abs((ra[i] - rc + 180.0) % 360.0 - 180.0)
            if delta <= hw or hw >= 180.0:
                expected.add((w, i))
    assert got == expected


def test_window_pairs_empty_inputs():
    za = ZoneArrays.build(np.asarray([10.0]), np.asarray([0.0]))
    pair_t, pair_i = za.window_pairs(
        np.empty(0), np.empty(0), np.empty(0), np.empty(0)
    )
    assert pair_t.size == 0 and pair_i.size == 0
    empty = ZoneArrays.build(np.empty(0), np.empty(0))
    pair_t, pair_i = empty.window_pairs(
        np.asarray([-1.0]), np.asarray([1.0]), np.asarray([0.0]), np.asarray([5.0])
    )
    assert pair_t.size == 0 and pair_i.size == 0


# ------------------------------------------------------------- table probes


def make_table(n=400, seed=3, center=(185.0, -0.5), spread_arcsec=4000.0):
    schema = TableSchema(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
    )
    table = Table(schema, spatial=SpatialSpec("ra", "dec", htm_depth=10))
    rng = random.Random(seed)
    c = radec_to_vector(*center)
    for i in range(n):
        ra, dec = vector_to_radec(
            random_in_cap(rng, c, arcsec_to_rad(spread_arcsec))
        )
        table.insert((i, ra, dec))
    return table


def brute_force(table, cap):
    hits = set()
    for pos in table.iter_positions():
        row = table.row(pos)
        if cap.contains(radec_to_vector(row[1], row[2])):
            hits.add(pos)
    return hits


def test_zone_probe_is_superset_of_cap():
    table = make_table()
    for center, radius in [
        ((185.0, -0.5), 1200.0),
        ((185.3, -0.4), 300.0),
    ]:
        cap = Cap.from_radec(center[0], center[1], radius)
        rows = zone_probe(table, cap.center, cap.radius_rad)
        assert brute_force(table, cap) <= set(rows)
        assert rows == sorted(rows)


def test_zone_probe_agrees_with_htm_probe_after_exact_filter():
    """Both indexes admit supersets; the exact-filtered sets are equal."""
    table = make_table(n=600, seed=9)
    cap = Cap.from_radec(185.0, -0.5, 900.0)
    zone_rows = zone_probe(table, cap.center, cap.radius_rad)
    probe = spatial_probe(table, cap)
    htm_rows = probe.exact + probe.candidates

    def exact(rows):
        keep = []
        for pos in rows:
            row = table.row(pos)
            if cap.contains(radec_to_vector(row[1], row[2])):
                keep.append(pos)
        return sorted(keep)

    assert exact(zone_rows) == exact(htm_rows)


def test_zone_probe_wrap_and_polar_fields():
    for center in [(0.01, 0.0), (359.99, 10.0), (100.0, 89.97), (40.0, -89.97)]:
        table = make_table(n=200, seed=13, center=center)
        cap = Cap.from_radec(center[0], center[1], 2000.0)
        rows = zone_probe(table, cap.center, cap.radius_rad)
        assert brute_force(table, cap) <= set(rows)


def test_zone_probe_limit_filters_epochs():
    table = make_table(n=100)
    cap = Cap.from_radec(185.0, -0.5, 4000.0)
    all_rows = zone_probe(table, cap.center, cap.radius_rad)
    limited = zone_probe(table, cap.center, cap.radius_rad, limit=50)
    assert limited == [pos for pos in all_rows if pos < 50]


def test_batch_zone_probe_matches_single_probes():
    table = make_table(n=300, seed=21)
    caps = [
        Cap.from_radec(185.0, -0.5, 600.0),
        Cap.from_radec(185.4, -0.2, 300.0),
        Cap.from_radec(20.0, 50.0, 60.0),  # nowhere near the data
    ]
    centers = np.asarray([c.center for c in caps])
    radii = np.asarray([c.radius_rad for c in caps])
    batched = batch_zone_probe(table, centers, radii)
    assert len(batched) == len(caps)
    for cap, rows in zip(caps, batched):
        assert rows.tolist() == zone_probe(table, cap.center, cap.radius_rad)
    assert batched[2].size == 0


def test_zone_probe_requires_spatial_table():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    table = Table(schema)
    with pytest.raises(ValueError):
        zone_probe(table, radec_to_vector(0.0, 0.0), 0.01)


def test_table_zone_arrays_cached_and_invalidated():
    table = make_table(n=50)
    za1 = table.zone_arrays()
    assert za1 is table.zone_arrays()  # cached per height
    za_coarse = table.zone_arrays(1.0)
    assert za_coarse is not za1
    assert za_coarse is table.zone_arrays(1.0)
    table.insert((999, 12.0, 34.0))
    za2 = table.zone_arrays()
    assert za2 is not za1  # insert invalidates the cache...
    assert len(za2) == 51  # ...and the rebuild sees the new row


def test_table_zone_arrays_requires_spatial_column():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    table = Table(schema)
    with pytest.raises(SchemaError):
        table.zone_arrays()
