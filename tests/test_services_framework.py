"""The web-service framework: dispatch, faults, hosting, proxies."""

import pytest

from repro.errors import (
    QueryError,
    ServiceError,
    SoapFaultError,
    TransportError,
)
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost, WebService
from repro.soap.envelope import build_rpc_request
from repro.transport.http import HttpRequest
from repro.transport.network import SimulatedNetwork


def make_service():
    service = WebService("Calc")
    service.register(
        "Add", lambda a, b: a + b,
        params=(("a", "int"), ("b", "int")), returns="int",
    )
    service.register("Boom", lambda: 1 / 0)
    def fail_domain():
        raise QueryError("domain problem")
    service.register("Fail", fail_domain)
    return service


def test_dispatch_success():
    status, xml = make_service().handle_soap(
        build_rpc_request("Add", {"a": 2, "b": 3}).encode()
    )
    assert status == 200
    from repro.soap.envelope import parse_rpc_response

    assert parse_rpc_response(xml) == 5


def test_unknown_operation_fault():
    status, xml = make_service().handle_soap(
        build_rpc_request("Nope", {}).encode()
    )
    assert status == 500
    assert "UnknownOperation" in xml


def test_bad_arguments_fault():
    status, xml = make_service().handle_soap(
        build_rpc_request("Add", {"a": 1}).encode()
    )
    assert status == 500
    assert "BadArguments" in xml


def test_domain_error_becomes_server_fault():
    status, xml = make_service().handle_soap(
        build_rpc_request("Fail", {}).encode()
    )
    assert status == 500
    assert "domain problem" in xml


def test_internal_error_becomes_fault_not_crash():
    service = make_service()
    status, xml = service.handle_soap(build_rpc_request("Boom", {}).encode())
    assert status == 500
    assert "Internal" in xml
    assert service.faults_returned == 1


def test_malformed_request_fault():
    status, xml = make_service().handle_soap(b"<garbage")
    assert status == 500
    assert "malformed request" in xml


def test_oversized_request_fault():
    service = WebService("S", parser_memory_limit=100)
    service.register("Op", lambda: True)
    body = build_rpc_request("Op", {"pad": "x" * 500}).encode()
    status, xml = service.handle_soap(body)
    assert status == 500
    assert "OutOfMemory" in xml


def test_duplicate_operation_rejected():
    service = WebService("S")
    service.register("Op", lambda: 1)
    with pytest.raises(ServiceError):
        service.register("Op", lambda: 2)


def test_unserializable_result_fault():
    service = WebService("S")
    service.register("Op", lambda: object())
    status, xml = service.handle_soap(build_rpc_request("Op", {}).encode())
    assert status == 500
    assert "Serialization" in xml


def test_describe_and_wsdl():
    service = make_service()
    description = service.describe("http://h/calc")
    assert description.operation("Add").params == (("a", "int"), ("b", "int"))
    assert "wsdl:definitions" in service.wsdl("http://h/calc")


class TestServiceHost:
    def make_net(self):
        net = SimulatedNetwork()
        host = ServiceHost("calc.net")
        url = host.mount("/calc", make_service())
        net.add_host("calc.net", host.handle)
        return net, host, url

    def test_mount_returns_url(self):
        _, host, url = self.make_net()
        assert url == "http://calc.net/calc"
        assert host.service_at("/calc") is not None
        assert host.service_at("calc") is not None

    def test_duplicate_mount_rejected(self):
        _, host, _ = self.make_net()
        with pytest.raises(ServiceError):
            host.mount("/calc", make_service())

    def test_proxy_call(self):
        net, _, url = self.make_net()
        proxy = ServiceProxy(net, "client", url)
        assert proxy.call("Add", a=20, b=22) == 42

    def test_proxy_fault_propagates(self):
        net, _, url = self.make_net()
        proxy = ServiceProxy(net, "client", url)
        with pytest.raises(SoapFaultError):
            proxy.call("Fail")

    def test_unknown_path_404(self):
        net, _, _ = self.make_net()
        response = net.request(
            "client", HttpRequest("POST", "http://calc.net/nope")
        )
        assert response.status == 404

    def test_wsdl_fetch(self):
        net, _, url = self.make_net()
        proxy = ServiceProxy(net, "client", url)
        description = proxy.fetch_wsdl()
        assert description.name == "Calc"
        assert description.operation("Add") is not None

    def test_proxy_checks_description(self):
        net, _, url = self.make_net()
        proxy = ServiceProxy(net, "client", url)
        proxy.fetch_wsdl()
        with pytest.raises(TransportError):
            proxy.call("NotDescribed")

    def test_get_returns_wsdl(self):
        net, _, _ = self.make_net()
        response = net.request(
            "client", HttpRequest("GET", "http://calc.net/calc?wsdl")
        )
        assert response.ok
        assert b"wsdl:definitions" in response.body

    def test_calls_handled_counter(self):
        net, host, url = self.make_net()
        proxy = ServiceProxy(net, "client", url)
        proxy.call("Add", a=1, b=2)
        assert host.service_at("/calc").calls_handled == 1
