"""HTM mesh: roots, ids, names."""

import pytest

from repro.errors import HTMError
from repro.htm.mesh import (
    depth_of_id,
    id_range_at_depth,
    id_to_name,
    name_to_id,
    roots,
    trixel_by_id,
    trixel_by_name,
)
from repro.sphere.random import random_on_sphere
from repro.sphere.vector import norm


def test_eight_roots_with_ids_8_to_15():
    root_list = roots()
    assert [t.hid for t in root_list] == list(range(8, 16))


def test_roots_cover_sphere():
    import random

    rng = random.Random(0)
    root_list = roots()
    for _ in range(500):
        p = random_on_sphere(rng)
        assert any(t.contains(p) for t in root_list)


def test_root_corners_are_unit():
    for t in roots():
        for corner in t.corners:
            assert norm(corner) == pytest.approx(1.0)


def test_depth_of_root_is_zero():
    assert depth_of_id(8) == 0
    assert depth_of_id(15) == 0


def test_depth_increments_with_children():
    assert depth_of_id(8 * 4 + 2) == 1
    assert depth_of_id((8 * 4 + 2) * 4) == 2


def test_depth_rejects_small_ids():
    for bad in (0, 1, 7):
        with pytest.raises(HTMError):
            depth_of_id(bad)


def test_depth_rejects_odd_bitlength():
    with pytest.raises(HTMError):
        depth_of_id(16)  # bit_length 5


def test_children_ids():
    root = roots()[0]
    kids = root.children()
    assert [k.hid for k in kids] == [32, 33, 34, 35]


def test_children_tile_parent():
    import random

    rng = random.Random(1)
    root = roots()[3]
    kids = root.children()
    for _ in range(300):
        p = random_on_sphere(rng)
        if root.contains(p):
            assert sum(k.contains(p) for k in kids) >= 1


def test_name_roundtrip():
    for name in ("S0", "N3", "N012", "S20123", "N3000001"):
        assert id_to_name(name_to_id(name)) == name


def test_id_roundtrip():
    for hid in (8, 15, 63, 10487853):
        assert name_to_id(id_to_name(hid)) == hid


def test_bad_names_rejected():
    for bad in ("", "X0", "N", "N4", "S012X"):
        with pytest.raises(HTMError):
            name_to_id(bad)


def test_trixel_by_id_consistent_with_children():
    root = roots()[0]
    kid = root.children()[2]
    rebuilt = trixel_by_id(kid.hid)
    for rebuilt_corner, kid_corner in zip(rebuilt.corners, kid.corners):
        assert rebuilt_corner == pytest.approx(kid_corner)


def test_trixel_by_name():
    t = trixel_by_name("N012")
    assert t.hid == name_to_id("N012")


def test_id_range_at_depth():
    lo, hi = id_range_at_depth(8, 2)
    assert (lo, hi) == (8 << 4, (9 << 4) - 1)
    assert hi - lo + 1 == 16


def test_id_range_same_depth_is_singleton():
    assert id_range_at_depth(10, 0) == (10, 10)


def test_id_range_above_depth_rejected():
    child = 8 * 4
    with pytest.raises(HTMError):
        id_range_at_depth(child, 0)
