"""HTTP message objects."""

import pytest

from repro.errors import TransportError
from repro.transport.http import HttpRequest, HttpResponse, soap_request


def test_request_host_and_path():
    request = HttpRequest("POST", "http://sdss.skyquery.net/query", body=b"x")
    assert request.host == "sdss.skyquery.net"
    assert request.path == "/query"


def test_request_default_path():
    assert HttpRequest("GET", "http://h").path == "/"


def test_non_http_url_rejected():
    with pytest.raises(TransportError):
        HttpRequest("GET", "ftp://h/x").host
    with pytest.raises(TransportError):
        HttpRequest("GET", "not a url").host


def test_request_render_contains_request_line():
    request = HttpRequest("POST", "http://h/p", body=b"body")
    rendered = request.render()
    assert rendered.startswith(b"POST /p HTTP/1.1\r\n")
    assert rendered.endswith(b"\r\n\r\nbody")
    assert b"Content-Length: 4" in rendered
    assert b"Host: h" in rendered


def test_wire_bytes_grow_with_body():
    small = HttpRequest("POST", "http://h/p", body=b"a").wire_bytes
    big = HttpRequest("POST", "http://h/p", body=b"a" * 100).wire_bytes
    assert big == small + 99 + 2  # 99 more body bytes, 2 more length digits


def test_response_render():
    response = HttpResponse(200, "OK", body=b"hello")
    rendered = response.render()
    assert rendered.startswith(b"HTTP/1.1 200 OK\r\n")
    assert b"Content-Length: 5" in rendered


def test_response_ok_flag():
    assert HttpResponse(200).ok
    assert HttpResponse(204).ok
    assert not HttpResponse(404).ok
    assert not HttpResponse(500).ok


def test_soap_request_headers():
    request = soap_request("http://h/svc", "urn:skyquery#Op", "<xml/>")
    assert request.method == "POST"
    assert request.headers["SOAPAction"] == '"urn:skyquery#Op"'
    assert request.headers["Content-Type"].startswith("text/xml")
    assert request.body == b"<xml/>"
