"""The command-line interface."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "skyquery-repro" in out
    assert "CIDR 2003" in out


def test_demo(capsys):
    assert main(["demo", "--bodies", "300"]) == 0
    out = capsys.readouterr().out
    assert "Registered: ['FIRST', 'SDSS', 'TWOMASS']" in out
    assert "cross matches" in out


def test_query_table(capsys):
    code = main([
        "query",
        "SELECT O.object_id, T.obj_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5",
        "--bodies", "300", "--stats",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "O.object_id" in out
    assert "crossmatch-chain" in out


def test_query_votable(capsys):
    code = main([
        "query",
        "SELECT t.object_id FROM SDSS:Photo_Object t "
        "WHERE AREA(185.0, -0.5, 300.0) LIMIT 3",
        "--bodies", "300", "--format", "votable",
    ])
    assert code == 0
    assert "<VOTABLE" in capsys.readouterr().out


def test_query_csv(capsys):
    code = main([
        "query",
        "SELECT t.object_id, t.ra FROM SDSS:Photo_Object t "
        "WHERE AREA(185.0, -0.5, 300.0) LIMIT 2",
        "--bodies", "300", "--format", "csv",
    ])
    assert code == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0] == "t.object_id,t.ra"
    assert len(lines) == 3


def test_query_bad_sql_is_clean_error(capsys):
    code = main(["query", "NOT SQL AT ALL", "--bodies", "300"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_experiments_filter(capsys, tmp_path):
    out_file = tmp_path / "report.md"
    code = main(["experiments", "--ids", "E2", "--out", str(out_file)])
    assert code == 0
    out = capsys.readouterr().out
    assert "E2:" in out
    assert "E4:" not in out
    assert "XMATCH semantics" in out_file.read_text()


def test_experiments_unknown_id(capsys):
    assert main(["experiments", "--ids", "E99"]) == 1
    assert "no experiments matched" in capsys.readouterr().err


def test_module_invocation():
    proc = run_cli("info")
    assert proc.returncode == 0
    assert "skyquery-repro" in proc.stdout


def test_trace_default_query(capsys):
    assert main(["trace", "--bodies", "300", "--width", "48"]) == 0
    out = capsys.readouterr().out
    assert "trace " in out.splitlines()[0]
    assert "SubmitQuery" in out
    assert "PerformXMatch" in out


def test_trace_writes_chrome_json(capsys, tmp_path):
    import json

    chrome = tmp_path / "trace.json"
    code = main([
        "trace",
        "SELECT O.object_id, T.obj_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5",
        "--bodies", "300", "--chrome", str(chrome),
    ])
    assert code == 0
    document = json.loads(chrome.read_text())
    assert any(
        event.get("ph") == "X" for event in document["traceEvents"]
    )
    assert f"wrote {chrome}" in capsys.readouterr().out


def test_query_explain(capsys):
    code = main([
        "query",
        "SELECT O.object_id, T.obj_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5 "
        "AND O.i_flux - T.i_flux > 2",
        "--bodies", "300", "--explain",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "performance queries:" in out
    assert "plan list" in out
    assert "portal-side predicates" in out


def test_bad_enumerated_flags_rejected_with_choices(capsys):
    """argparse rejects unsupported engine/kernel/mode values up front,
    naming the legal choices instead of failing deep inside a query."""
    for flag, bad in [
        ("--match-engine", "quadtree"),
        ("--kernel", "simd"),
        ("--chain-mode", "broadcast"),
        ("--wire-format", "json"),
    ]:
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "--bodies", "300", flag, bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert bad in err


def test_query_zone_engine_output_identical_to_htm(capsys):
    """The full CLI query path prints byte-identical rows and stats under
    either match engine."""
    outputs = {}
    for engine in ("htm", "zone"):
        code = main([
            "query",
            "SELECT O.object_id, T.obj_id FROM SDSS:Photo_Object O, "
            "TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5",
            "--bodies", "300", "--stats", "--match-engine", engine,
        ])
        assert code == 0
        outputs[engine] = capsys.readouterr().out
    assert outputs["zone"] == outputs["htm"]
    assert "crossmatch-chain" in outputs["zone"]


def test_serve_multi_client_driver(capsys):
    code = main([
        "serve", "--bodies", "300", "--queries", "6", "--clients", "3",
        "--tenants", "2", "--max-inflight", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "tenant-0" in out and "tenant-1" in out
    assert "latency p50=" in out and "p99=" in out
    assert "makespan=" in out
    assert "cache: {" in out
    assert "scheduled answers identical to serial: True" in out


def test_serve_cache_off_skips_cache_report(capsys):
    code = main([
        "serve", "--bodies", "300", "--queries", "4", "--cache", "off",
        "--serial", "off",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "cache: {" not in out
    assert "serial uncached baseline" not in out


def test_serve_enumerated_flags_rejected_with_choices(capsys):
    for flag, bad in [("--cache", "maybe"), ("--serial", "later")]:
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", flag, bad])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert bad in err


def test_serve_rejects_nonpositive_counts(capsys):
    for flag in ("--clients", "--tenants", "--queries", "--pool"):
        assert main(["serve", "--bodies", "100", flag, "0"]) == 2
        err = capsys.readouterr().err
        assert f"{flag} must be >= 1" in err


def test_serve_hopeless_deadline_degrades_every_answer(capsys):
    code = main([
        "serve", "--bodies", "300", "--queries", "4", "--max-inflight", "4",
        "--deadline", "0.000001", "--serial", "off",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "per-query budget 1e-06s" in out
    # Wave 1 jobs dispatch (no service history yet) and expire at the
    # first budget-checked operation: degraded answers, not hangs.
    assert "deadline-degraded answers: 4" in out


def test_serve_interrupt_drains_and_exits_cleanly(capsys, monkeypatch):
    from repro.portal.scheduler import QueryScheduler

    real_enqueue = QueryScheduler.enqueue

    def run_then_interrupt(self, jobs):
        for job in jobs:
            real_enqueue(
                self, job["sql"], tenant=job.get("tenant", "default"),
                deadline_s=job.get("deadline_s"),
            )
        raise KeyboardInterrupt

    monkeypatch.setattr(QueryScheduler, "run", run_then_interrupt)
    code = main([
        "serve", "--bodies", "300", "--queries", "4", "--serial", "off",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "interrupted — drained scheduler:" in out
    assert "4 queued job(s) cancelled, 0 completed before shutdown" in out
    assert "shed=4" in out
    assert "backpressure: retry_after~" in out
