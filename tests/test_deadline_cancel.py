"""End-to-end query deadlines and cooperative cancellation.

The robustness contract (docs/RESILIENCE.md, deadline lifecycle): a
``QueryBudget`` stamped on a submission rides every hop's SOAP Header;
budget-expired work is refused with a typed fault naming the hop; the
Portal then fans a ``CancelQuery`` down the chain so streams, checkpoints,
and chunked transfers are freed eagerly instead of waiting out their TTLs
— and a cancel that is lost or delayed leaves the TTL reaper as the
backstop. Cancellation and aborts are idempotent against the reaper in
every interleaving.
"""

import pytest

from repro.budget import (
    CLEANUP_OPERATIONS,
    QueryBudget,
    active_budget,
    use_budget,
)
from repro.errors import DeadlineExceededError, SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.chunked import ChunkedSender
from repro.soap.encoding import WireRowSet
from repro.soap.envelope import build_rpc_request, parse_rpc_call
from repro.transport.faults import FaultPlan
from repro.workloads.skysim import SkyField

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)


def small_federation(**overrides):
    defaults = dict(
        n_bodies=120,
        seed=11,
        sky_field=SkyField(185.0, -0.5, 1800.0),
    )
    defaults.update(overrides)
    return build_federation(FederationConfig(**defaults))


def qid_of_next_submit(portal) -> str:
    """The query id the Portal will mint for its next budgeted submit."""
    return f"{portal.hostname}-q{portal.queries_served + 1}"


def all_nodes(federation):
    nodes = list(federation.nodes.values())
    for group in federation.replicas.values():
        nodes.extend(group)
    return nodes


def residual_state_for(federation, qid: str):
    """Every piece of server state still owned by ``qid``, across nodes."""
    leftovers = []
    for node in all_nodes(federation):
        crossmatch = node.crossmatch
        for sid, stream in crossmatch._streams.items():
            if stream.qid == qid and not stream.done:
                leftovers.append((node.hostname, "stream", sid))
        for key in crossmatch._checkpoints:
            if key.startswith(f"{qid}:"):
                leftovers.append((node.hostname, "checkpoint", key))
        for sender in (crossmatch.sender, node.query.sender):
            for tid, owner in sender._owners.items():
                if owner == qid:
                    leftovers.append((node.hostname, "transfer", tid))
    return leftovers


# -- the QueryBudget SOAP header ------------------------------------------------


class TestBudgetHeader:
    def test_budget_header_round_trips(self):
        budget = QueryBudget(12.5, "portal-q7")
        envelope = build_rpc_request("Ping", {"x": 1}, budget=budget)
        assert "QueryBudget" in envelope and "urn:skyquery:budget" in envelope
        _, _, _, parsed = parse_rpc_call(envelope)
        assert parsed == budget

    def test_unbudgeted_envelope_has_no_header(self):
        envelope = build_rpc_request("Ping", {"x": 1})
        assert "Header" not in envelope
        _, _, _, parsed = parse_rpc_call(envelope)
        assert parsed is None

    def test_budget_without_query_id(self):
        envelope = build_rpc_request("Ping", {}, budget=QueryBudget(3.0))
        _, _, _, parsed = parse_rpc_call(envelope)
        assert parsed == QueryBudget(3.0, "")

    def test_remaining_and_expired(self):
        budget = QueryBudget(10.0, "q")
        assert budget.remaining_s(4.0) == pytest.approx(6.0)
        assert not budget.expired(9.999)
        assert budget.expired(10.0) and budget.expired(11.0)

    def test_active_budget_stack_masks_with_none(self):
        outer = QueryBudget(5.0, "outer")
        with use_budget(outer):
            assert active_budget() == outer
            with use_budget(None):
                assert active_budget() is None
            assert active_budget() == outer
        assert active_budget() is None

    def test_cleanup_operations_are_the_cancel_set(self):
        assert CLEANUP_OPERATIONS == {
            "CancelQuery", "AbortStream", "AbortTransfer",
        }


# -- deadlines through the federation -------------------------------------------


class TestDeadlines:
    @pytest.mark.parametrize("chain_mode", ["store-forward", "pipelined"])
    def test_generous_deadline_is_byte_identical_to_oracle(self, chain_mode):
        oracle = small_federation(chain_mode=chain_mode)
        budgeted = small_federation(chain_mode=chain_mode)
        want = oracle.portal.submit(XMATCH_SQL)
        deadline = budgeted.network.clock.now + 1e6
        got = budgeted.portal.submit(XMATCH_SQL, deadline_s=deadline)
        assert got.rows == want.rows
        assert got.columns == want.columns
        assert got.warnings == want.warnings
        assert not got.degraded
        assert got.counts == want.counts
        assert got.epochs == want.epochs

    def test_already_expired_deadline_degrades_without_dispatch(self):
        federation = small_federation()
        portal = federation.portal
        qid = qid_of_next_submit(portal)
        before = len(federation.network.metrics.messages)
        result = portal.submit(
            XMATCH_SQL, deadline_s=federation.network.clock.now - 1.0
        )
        assert result.degraded and result.rows == []
        assert any("deadline exceeded" in w for w in result.warnings)
        # Refused at the Portal before the first probe left the host.
        assert len(federation.network.metrics.messages) == before
        assert residual_state_for(federation, qid) == []

    def test_mid_chain_expiry_names_the_hop_and_cancels(self):
        # Small chunk budget => chunked chain responses => budget-checked
        # FetchChunk ops spread through the whole chain timeline, so a
        # deadline near the end of the chain deterministically faults at a
        # drain while every hop already holds a checkpoint.
        oracle = small_federation(chunk_budget_bytes=1024)
        t0 = oracle.network.clock.now
        oracle.portal.submit(XMATCH_SQL)
        duration = oracle.network.clock.now - t0

        federation = small_federation(chunk_budget_bytes=1024)
        portal = federation.portal
        qid = qid_of_next_submit(portal)
        metrics = federation.network.metrics
        result = portal.submit(
            XMATCH_SQL,
            deadline_s=federation.network.clock.now + 0.95 * duration,
        )
        assert result.degraded and result.rows == []
        assert any("deadline exceeded" in w for w in result.warnings)
        assert any("query budget exhausted" in w for w in result.warnings)
        assert metrics.cancels >= 1
        assert metrics.eager_reclaims >= 1
        assert residual_state_for(federation, qid) == []

    def test_pipelined_mid_stream_expiry_cancels_cleanly(self):
        # A bounded pull window re-checks the budget at every wave, so a
        # mid-stream deadline faults between waves while streams are open
        # down the whole chain.
        oracle = small_federation(chain_mode="pipelined")
        oracle.portal.stream_pull_window = 2
        t0 = oracle.network.clock.now
        oracle.portal.submit(XMATCH_SQL)
        duration = oracle.network.clock.now - t0

        federation = small_federation(chain_mode="pipelined")
        federation.portal.stream_pull_window = 2
        qid = qid_of_next_submit(federation.portal)
        result = federation.portal.submit(
            XMATCH_SQL,
            deadline_s=federation.network.clock.now + 0.5 * duration,
        )
        assert result.degraded and result.rows == []
        assert any("deadline exceeded" in w for w in result.warnings)
        assert federation.network.metrics.cancels >= 1
        assert residual_state_for(federation, qid) == []
        for node in all_nodes(federation):
            assert node.crossmatch.open_streams == 0

    def test_deadline_fault_is_not_retried(self):
        # DeadlineExceededError is deliberately not a TransportError:
        # the chain executor's recovery loop must not probe/fail over or
        # burn retries on a budget that can only keep shrinking.
        federation = small_federation(chunk_budget_bytes=1024)
        oracle = small_federation(chunk_budget_bytes=1024)
        t0 = oracle.network.clock.now
        oracle.portal.submit(XMATCH_SQL)
        duration = oracle.network.clock.now - t0
        metrics = federation.network.metrics
        federation.portal.submit(
            XMATCH_SQL,
            deadline_s=federation.network.clock.now + 0.95 * duration,
        )
        assert metrics.retries == 0
        assert metrics.failovers == 0

    def test_cancel_annotated_in_trace(self):
        oracle = small_federation(chunk_budget_bytes=1024)
        t0 = oracle.network.clock.now
        oracle.portal.submit(XMATCH_SQL)
        duration = oracle.network.clock.now - t0

        federation = small_federation(chunk_budget_bytes=1024)
        result = federation.portal.submit(
            XMATCH_SQL,
            deadline_s=federation.network.clock.now + 0.95 * duration,
        )
        assert result.degraded
        assert result.trace is not None
        cancel_notes = [
            a
            for span in result.trace.spans
            for a in span.annotations
            if a.get("event") == "cancel"
        ]
        assert cancel_notes, "CancelQuery must annotate the trace"

    def test_concurrent_query_unperturbed_by_cancelled_neighbour(self):
        oracle = small_federation(chunk_budget_bytes=1024)
        t0 = oracle.network.clock.now
        want = oracle.portal.submit(XMATCH_SQL)
        duration = oracle.network.clock.now - t0

        federation = small_federation(chunk_budget_bytes=1024)
        doomed = federation.portal.submit(
            XMATCH_SQL,
            deadline_s=federation.network.clock.now + 0.95 * duration,
        )
        assert doomed.degraded
        follow_up = federation.portal.submit(XMATCH_SQL)
        assert follow_up.rows == want.rows
        assert follow_up.counts == want.counts
        assert not follow_up.degraded and not follow_up.warnings


# -- CancelQuery: idempotency and fault injection -------------------------------


class TestCancelQuery:
    def open_chain_stream(self, federation, qid):
        """Open a stream down the whole chain, tagged with ``qid``."""
        portal = federation.portal
        plan_wire = portal.explain(XMATCH_SQL)["plan"]
        url = plan_wire["steps"][0]["url"]
        opened = portal.proxy(url).call(
            "OpenStream",
            plan=plan_wire,
            position=0,
            batch_size=50,
            wire_format="columnar",
            start_seq=0,
            qid=qid,
        )
        return plan_wire, url, opened

    def streams_holding(self, federation, qid):
        return [
            node.hostname
            for node in all_nodes(federation)
            if any(
                s.qid == qid and not s.done
                for s in node.crossmatch._streams.values()
            )
        ]

    def test_cancel_fans_down_the_whole_chain(self):
        federation = small_federation()
        qid = "portal.skyquery.net-q99"
        plan_wire, url, _ = self.open_chain_stream(federation, qid)
        assert len(self.streams_holding(federation, qid)) == 3
        answer = federation.portal.proxy(url).call(
            "CancelQuery", query_id=qid, plan=plan_wire, position=0
        )
        assert answer["cancelled"] and answer["forwarded"]
        assert self.streams_holding(federation, qid) == []
        metrics = federation.network.metrics
        assert metrics.cancels == 3  # one per hop
        assert metrics.eager_reclaims == 3  # one stream per hop
        assert metrics.reclaimed_transfers == 0  # eager, not TTL

    def test_cancel_is_idempotent(self):
        federation = small_federation()
        qid = "portal.skyquery.net-q42"
        plan_wire, url, _ = self.open_chain_stream(federation, qid)
        proxy = federation.portal.proxy(url)
        proxy.call("CancelQuery", query_id=qid, plan=plan_wire, position=0)
        reclaims = federation.network.metrics.eager_reclaims
        again = proxy.call(
            "CancelQuery", query_id=qid, plan=plan_wire, position=0
        )
        assert again["cancelled"] and again["freed"] == 0
        assert federation.network.metrics.eager_reclaims == reclaims

    def test_cancel_after_ttl_reap_is_a_noop(self):
        from repro.skynode.crossmatch import STREAM_TTL_S

        federation = small_federation()
        qid = "portal.skyquery.net-q7"
        plan_wire, url, _ = self.open_chain_stream(federation, qid)
        federation.network.clock.advance(STREAM_TTL_S + 1.0)
        answer = federation.portal.proxy(url).call(
            "CancelQuery", query_id=qid, plan=plan_wire, position=0
        )
        # The reaper won the race at every hop: the cancel frees nothing
        # and the reclaim stays accounted to the TTL, not to eagerness.
        assert answer["freed"] == 0
        metrics = federation.network.metrics
        assert metrics.eager_reclaims == 0
        assert metrics.reclaimed_transfers >= 1
        assert self.streams_holding(federation, qid) == []

    def test_lost_cancel_leaves_ttl_backstop(self):
        from repro.skynode.crossmatch import STREAM_TTL_S

        federation = small_federation()
        qid = "portal.skyquery.net-q13"
        plan_wire, url, _ = self.open_chain_stream(federation, qid)
        hop1 = plan_wire["steps"][0]["url"].split("/")[2]
        hop2 = plan_wire["steps"][1]["url"].split("/")[2]
        # The forwarded CancelQuery hop1 -> hop2 is lost in flight.
        federation.network.set_fault_plan(
            FaultPlan(seed=3).drop_requests(src=hop1, dst=hop2)
        )
        answer = federation.portal.proxy(url).call(
            "CancelQuery", query_id=qid, plan=plan_wire, position=0
        )
        federation.network.set_fault_plan(None)
        metrics = federation.network.metrics
        assert answer["cancelled"] and not answer["forwarded"]
        assert answer["freed"] == 1  # hop1 freed its own state regardless
        assert metrics.eager_reclaims == 1
        survivors = self.streams_holding(federation, qid)
        assert len(survivors) == 2  # hop2 and hop3 never heard the cancel
        # ... until their TTL reaper catches up.
        federation.network.clock.advance(STREAM_TTL_S + 1.0)
        for node in all_nodes(federation):
            node.crossmatch._reap_streams()
        assert self.streams_holding(federation, qid) == []
        assert metrics.reclaimed_transfers == 2
        assert metrics.eager_reclaims == 1  # TTL reaps never count as eager

    def test_delayed_cancel_still_frees_everything(self):
        federation = small_federation()
        qid = "portal.skyquery.net-q14"
        plan_wire, url, _ = self.open_chain_stream(federation, qid)
        hop1 = plan_wire["steps"][0]["url"].split("/")[2]
        hop2 = plan_wire["steps"][1]["url"].split("/")[2]
        federation.network.set_fault_plan(
            FaultPlan(seed=3).latency_spikes(
                src=hop1, dst=hop2, rate=1.0, extra_s=5.0
            )
        )
        answer = federation.portal.proxy(url).call(
            "CancelQuery", query_id=qid, plan=plan_wire, position=0
        )
        federation.network.set_fault_plan(None)
        assert answer["cancelled"] and answer["forwarded"]
        assert self.streams_holding(federation, qid) == []
        assert federation.network.metrics.eager_reclaims == 3

    def test_cancel_frees_checkpoints_by_prefix(self):
        federation = small_federation()
        portal = federation.portal
        plan_wire = portal.explain(XMATCH_SQL)["plan"]
        url = plan_wire["steps"][0]["url"]
        proxy = portal.proxy(url)
        proxy.call("PerformXMatch", plan=plan_wire, position=0, xid="cx-1")
        held = [
            node.crossmatch.open_checkpoints
            for node in federation.nodes.values()
        ]
        assert sum(held) == 3  # one checkpoint per hop
        proxy.call("CancelQuery", query_id="cx-1", plan=plan_wire, position=0)
        assert all(
            node.crossmatch.open_checkpoints == 0
            for node in federation.nodes.values()
        )
        assert federation.network.metrics.eager_reclaims == 3


# -- ChunkedSender: abort racing the reaper -------------------------------------


class TestChunkedSenderIdempotency:
    def make_sender(self):
        state = {"now": 0.0}
        sender = ChunkedSender("svc", 700, ttl_s=10.0)
        reclaims = []
        sender.bind_clock(lambda: state["now"], reclaims.append)
        rowset = WireRowSet(
            [("a", "int"), ("b", "int")],
            [(i, i * 2) for i in range(100)],
        )
        response = sender.respond(rowset, query_id="q-1")
        assert response["chunked"]
        return sender, state, reclaims, response["transfer_id"]

    def test_abort_after_reap_is_noop(self):
        sender, state, reclaims, tid = self.make_sender()
        state["now"] = 11.0
        assert sender.reap() == 1
        assert reclaims == [1]
        assert sender.abort(tid) is False
        assert reclaims == [1]  # no double count
        assert sender.cancel_query("q-1") == 0

    def test_reap_after_abort_is_noop(self):
        sender, state, reclaims, tid = self.make_sender()
        assert sender.abort(tid) is True
        assert reclaims == [1]
        state["now"] = 11.0
        assert sender.reap() == 0
        assert reclaims == [1]

    def test_cancel_query_then_abort_then_reap(self):
        sender, state, reclaims, tid = self.make_sender()
        assert sender.cancel_query("q-1") == 1
        # Eager cancellation is the *caller's* metric (eager_reclaims);
        # the sender's own reclaim callback stays TTL/abort-only.
        assert reclaims == []
        assert sender.abort(tid) is False
        state["now"] = 11.0
        assert sender.reap() == 0
        assert reclaims == []
        assert sender.pending_transfers == 0

    def test_double_cancel_query_is_stable(self):
        sender, _, reclaims, _ = self.make_sender()
        assert sender.cancel_query("q-1") == 1
        assert sender.cancel_query("q-1") == 0
        assert sender.cancel_query("") == 0
        assert reclaims == []

    def test_cancel_does_not_touch_other_queries(self):
        sender, _, _, _ = self.make_sender()
        rowset = WireRowSet(
            [("a", "int")], [(i,) for i in range(100)]
        )
        other = sender.respond(rowset, query_id="q-2")
        assert sender.cancel_query("q-1") == 1
        assert sender.pending_transfers == 1
        chunk = sender.fetch_chunk(other["transfer_id"], 0)
        assert chunk.rows  # q-2 still drains normally

    def test_fully_drained_transfer_cancels_silently(self):
        sender, _, reclaims, tid = self.make_sender()
        count = None
        for seq in range(100):
            chunk = sender.fetch_chunk(tid, seq)
            if not chunk.rows:
                break
            if tid not in sender._transfers:
                count = seq + 1
                break
        assert count is not None
        # Delivered payloads are not reclaimable state: nothing to free.
        assert sender.cancel_query("q-1") == 0
        assert reclaims == []


# -- servers refuse budget-expired work -----------------------------------------


class TestServerSideBudget:
    def test_expired_budget_faults_with_typed_detail(self):
        federation = small_federation()
        node = next(iter(federation.nodes.values()))
        url = node.service_url("information")
        deadline = federation.network.clock.now  # expires immediately
        import repro.services.client as client_mod

        proxy = federation.portal.proxy(url)
        # Bypass the proxy's own pre-flight check to prove the *server*
        # refuses: stamp the header manually at the envelope layer.
        from repro.soap.envelope import build_rpc_request
        from repro.transport.http import soap_request

        envelope = build_rpc_request(
            "IsAlive", {}, budget=QueryBudget(deadline, "q-x")
        )
        request = soap_request(url, "urn:skyquery#IsAlive", envelope)
        response = federation.network.request(
            federation.portal.hostname, request, operation="IsAlive"
        )
        with pytest.raises(SoapFaultError) as err:
            client_mod.parse_rpc_response(response.body)
        assert err.value.detail == "DeadlineExceededError"
        assert "query budget exhausted" in err.value.faultstring
        assert node.hostname in err.value.faultstring

    def test_cleanup_operations_exempt_from_expired_budget(self):
        federation = small_federation()
        plan_wire = federation.portal.explain(XMATCH_SQL)["plan"]
        url = plan_wire["steps"][0]["url"]
        expired = QueryBudget(
            federation.network.clock.now - 5.0, "portal.skyquery.net-q1"
        )
        with use_budget(expired):
            # A dead budget must never block its own cleanup.
            answer = federation.portal.proxy(url).call(
                "CancelQuery",
                query_id="portal.skyquery.net-q1",
                plan=plan_wire,
                position=0,
            )
        assert answer["cancelled"]
