"""The Portal's federation catalog."""

import pytest

from repro.errors import RegistrationError, ValidationError
from repro.portal.catalog import FederationCatalog, NodeRecord


def make_record(archive="SDSS"):
    return NodeRecord.from_wire(
        archive=archive,
        services={
            "information": "http://h/i",
            "metadata": "http://h/m",
            "query": "http://h/q",
            "crossmatch": "http://h/x",
        },
        info_wire={
            "archive": archive,
            "sigma_arcsec": 0.1,
            "primary_table": "Photo_Object",
            "object_id_column": "object_id",
            "ra_column": "ra",
            "dec_column": "dec",
            "object_count": 42,
            "dialect": "sqlserver",
        },
        schema_wire={
            "tables": [
                {
                    "name": "Photo_Object",
                    "columns": [
                        {"name": "object_id", "type": "int", "nullable": False},
                        {"name": "i_flux", "type": "double", "nullable": True},
                    ],
                }
            ]
        },
        registered_at=1.5,
    )


def test_from_wire_fields():
    record = make_record()
    assert record.archive == "SDSS"
    assert record.object_count == 42
    assert record.dialect == "sqlserver"
    assert record.info.sigma_arcsec == 0.1
    assert record.registered_at == 1.5


def test_resolve_table_case_insensitive():
    record = make_record()
    assert record.resolve_table("photo_object") == "Photo_Object"
    assert record.resolve_table("PHOTO_OBJECT") == "Photo_Object"


def test_resolve_unknown_table():
    with pytest.raises(ValidationError):
        make_record().resolve_table("Nope")


def test_column_type_lookup():
    record = make_record()
    assert record.column_type("Photo_Object", "I_FLUX") == "double"
    assert record.column_name("photo_object", "i_flux") == "i_flux"


def test_column_type_unknown_column():
    with pytest.raises(ValidationError):
        make_record().column_type("Photo_Object", "nope")


def test_catalog_register_and_lookup():
    catalog = FederationCatalog()
    catalog.register(make_record())
    assert catalog.has("sdss")
    assert catalog.node("SDSS").archive == "SDSS"
    assert len(catalog) == 1


def test_catalog_unknown_archive():
    with pytest.raises(RegistrationError):
        FederationCatalog().node("SDSS")


def test_catalog_reregistration_replaces():
    catalog = FederationCatalog()
    catalog.register(make_record())
    updated = make_record()
    updated.object_count = 99
    catalog.register(updated)
    assert catalog.node("SDSS").object_count == 99
    assert len(catalog) == 1


def test_catalog_unregister():
    catalog = FederationCatalog()
    catalog.register(make_record())
    assert catalog.unregister("SDSS") is True
    assert catalog.unregister("SDSS") is False
    assert not catalog.has("SDSS")


def test_archives_sorted():
    catalog = FederationCatalog()
    catalog.register(make_record("TWOMASS"))
    catalog.register(make_record("SDSS"))
    assert catalog.archives() == ["SDSS", "TWOMASS"]
