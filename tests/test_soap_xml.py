"""XML writer and parser."""

import pytest

from repro.errors import XMLMemoryError, XMLSyntaxError
from repro.soap.xmlparser import XMLParser, parse_xml
from repro.soap.xmlwriter import Element, escape_attr, escape_text, render


def test_escape_text():
    assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"


def test_escape_attr_quotes_and_newlines():
    assert escape_attr('say "hi"\n') == "say &quot;hi&quot;&#10;"


def test_render_empty_element():
    assert render(Element("a"), declaration=False) == "<a/>"


def test_render_attributes():
    el = Element("a", {"x": "1", "y": 'q"t'})
    assert render(el, declaration=False) == '<a x="1" y="q&quot;t"/>'


def test_render_text_content():
    el = Element("a", text="x < y")
    assert render(el, declaration=False) == "<a>x &lt; y</a>"


def test_render_nested():
    root = Element("a")
    root.child("b", text="1")
    root.child("c")
    assert render(root, declaration=False) == "<a><b>1</b><c/></a>"


def test_declaration_emitted():
    assert render(Element("a")).startswith('<?xml version="1.0"')


def test_pretty_indent():
    root = Element("a")
    root.child("b")
    pretty = render(root, declaration=False, indent="  ")
    assert "\n  <b/>" in pretty


def test_roundtrip():
    root = Element("root", {"k": "v & w"})
    child = root.child("item", text="hello <world>", idx="1")
    root.child("empty")
    parsed = parse_xml(render(root))
    assert parsed.tag == "root"
    assert parsed.attrib == {"k": "v & w"}
    assert parsed.children[0].text == "hello <world>"
    assert parsed.children[0].attrib == {"idx": "1"}
    assert parsed.children[1].tag == "empty"


def test_roundtrip_pretty():
    root = Element("root")
    root.child("a", text="1")
    parsed = parse_xml(render(root, indent="  "))
    assert parsed.find("a").text == "1"


def test_find_prefix_insensitive():
    root = Element("soap:Envelope")
    root.child("soap:Body")
    assert root.find("Body") is not None
    assert root.find("soap:Body") is not None
    assert root.find("Nope") is None


def test_require_raises():
    with pytest.raises(KeyError):
        Element("a").require("b")


def test_iter_depth_first():
    root = Element("a")
    b = root.child("b")
    b.child("c")
    root.child("d")
    assert [e.tag for e in root.iter()] == ["a", "b", "c", "d"]


def test_comments_skipped():
    parsed = parse_xml("<!-- head --><a><!-- inner --><b/></a><!-- tail -->")
    assert parsed.children[0].tag == "b"


def test_mismatched_tags_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_xml("<a><b></a></b>")


def test_unterminated_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_xml("<a><b>")


def test_trailing_content_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_xml("<a/><b/>")


def test_unquoted_attribute_rejected():
    with pytest.raises(XMLSyntaxError):
        parse_xml("<a x=1/>")


def test_memory_limit_enforced():
    doc = "<a>" + "x" * 1000 + "</a>"
    parser = XMLParser(memory_limit_bytes=2000, overhead_factor=4.0)
    with pytest.raises(XMLMemoryError) as err:
        parser.parse(doc)
    assert err.value.limit_bytes == 2000
    assert err.value.document_bytes == len(doc)


def test_memory_limit_allows_small_documents():
    parser = XMLParser(memory_limit_bytes=10_000)
    assert parser.parse("<a/>").tag == "a"
    assert parser.documents_parsed == 1


def test_peak_memory_tracked():
    parser = XMLParser()
    parser.parse("<a/>")
    small = parser.peak_memory_bytes
    parser.parse("<a>" + "y" * 500 + "</a>")
    assert parser.peak_memory_bytes > small


def test_bytes_input():
    assert parse_xml(b"<a>text</a>").text == "text"


def test_overhead_factor_validated():
    with pytest.raises(ValueError):
        XMLParser(overhead_factor=0.5)
