"""The incremental matcher: seeding, matching, drop-outs, symmetry."""

import itertools
import random

import pytest

from repro.sphere.coords import radec_to_vector
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.units import arcsec_to_rad
from repro.xmatch.stream import (
    dropout_step,
    in_memory_search,
    match_step,
    run_chain,
    seed_tuples,
)
from repro.xmatch.tuples import LocalObject, PartialTuple


def make_sky(n_bodies=40, seed=0, sigmas=(0.1, 0.3, 1.0), detection=(1.0, 1.0, 1.0)):
    """Three archives observing the same bodies; returns per-archive objects
    and the ground-truth body id of every object."""
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    bodies = [random_in_cap(rng, center, arcsec_to_rad(600.0)) for _ in range(n_bodies)]
    archives = []
    for sigma_arcsec, rate in zip(sigmas, detection):
        objects = []
        for body_id, true in enumerate(bodies):
            if rng.random() >= rate:
                continue
            objects.append(
                LocalObject(
                    object_id=body_id,
                    position=perturb_gaussian(rng, true, arcsec_to_rad(sigma_arcsec)),
                )
            )
        archives.append((objects, arcsec_to_rad(sigma_arcsec)))
    return archives


def test_seed_tuples():
    archives = make_sky(n_bodies=5)
    objects, sigma = archives[0]
    tuples = seed_tuples("A", objects, sigma)
    assert len(tuples) == 5
    assert all(t.length == 1 for t in tuples)
    assert all(t.acc.chi2() == pytest.approx(0.0, abs=1e-3) for t in tuples)


def test_match_step_finds_true_pairs():
    archives = make_sky(n_bodies=30, seed=1)
    (obj_a, sig_a), (obj_b, sig_b), _ = archives
    tuples = seed_tuples("A", obj_a, sig_a)
    matched = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    pairs = {(t.member_id("A"), t.member_id("B")) for t in matched}
    true_pairs = {(i, i) for i in range(30)}
    # Nearly all true pairs found (chi-square 3.5 keeps ~everything).
    assert len(true_pairs & pairs) >= 28
    # And very few spurious ones at this density.
    assert len(pairs - true_pairs) <= 2


def test_match_step_tightens_with_threshold():
    archives = make_sky(n_bodies=30, seed=2)
    (obj_a, sig_a), (obj_b, sig_b), _ = archives
    tuples = seed_tuples("A", obj_a, sig_a)
    loose = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 5.0)
    tight = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 0.5)
    assert len(tight) <= len(loose)


def test_dropout_step_excludes_matched():
    archives = make_sky(n_bodies=20, seed=3, detection=(1.0, 1.0, 0.5))
    (obj_a, sig_a), (obj_b, sig_b), (obj_c, sig_c) = archives
    tuples = seed_tuples("A", obj_a, sig_a)
    tuples = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    survivors = dropout_step(tuples, in_memory_search(obj_c), sig_c, 3.5)
    detected_in_c = {o.object_id for o in obj_c}
    for t in survivors:
        assert t.member_id("A") not in detected_in_c
    # Drop-out passes tuples through unchanged (no new member).
    assert all(t.length == 2 for t in survivors)


def test_mandatory_plus_dropout_partition():
    """Every 2-tuple either matches C or survives !C — never both, and
    together they cover all 2-tuples."""
    archives = make_sky(n_bodies=25, seed=4, detection=(1.0, 1.0, 0.6))
    (obj_a, sig_a), (obj_b, sig_b), (obj_c, sig_c) = archives
    base = match_step(
        seed_tuples("A", obj_a, sig_a), "B", in_memory_search(obj_b), sig_b, 3.5
    )
    with_c = match_step(base, "C", in_memory_search(obj_c), sig_c, 3.5)
    without_c = dropout_step(base, in_memory_search(obj_c), sig_c, 3.5)
    matched_bases = {t.members[:2] for t in with_c}
    surviving_bases = {t.members for t in without_c}
    assert matched_bases.isdisjoint(surviving_bases)
    assert matched_bases | surviving_bases == {t.members for t in base}


def test_run_chain_symmetry_over_all_orders():
    archives = make_sky(n_bodies=15, seed=5)
    named = [("A", *archives[0]), ("B", *archives[1]), ("C", *archives[2])]

    def result_set(order):
        spec = [(alias, objs, sigma, False) for alias, objs, sigma in order]
        return {
            frozenset(t.members) for t in run_chain(spec, 3.5)
        }

    reference = result_set(named)
    for perm in itertools.permutations(named):
        assert result_set(list(perm)) == reference


def test_run_chain_requires_mandatory_first():
    archives = make_sky(n_bodies=3)
    spec = [("A", archives[0][0], archives[0][1], True)]
    with pytest.raises(ValueError):
        run_chain(spec, 3.5)


def test_partial_tuple_attributes_accumulate():
    obj_a = LocalObject(1, radec_to_vector(185.0, 0.0), {"flux": 10.0})
    obj_b = LocalObject(2, radec_to_vector(185.0, 0.0001), {"flux": 12.0})
    sigma = arcsec_to_rad(1.0)
    t = PartialTuple.seed("A", obj_a, sigma).extended("B", obj_b, sigma)
    assert t.attributes == {"A.flux": 10.0, "B.flux": 12.0}
    assert t.member_id("A") == 1
    assert t.member_id("B") == 2
    with pytest.raises(KeyError):
        t.member_id("C")


def test_with_attributes_merges():
    obj = LocalObject(1, radec_to_vector(0.0, 0.0), {"x": 1})
    t = PartialTuple.seed("A", obj, 1e-6)
    t2 = t.with_attributes({"extra": 2})
    assert t2.attributes["extra"] == 2
    assert "extra" not in t.attributes


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1000])
def test_run_chain_batched_matches_unbatched(batch_size):
    # The streaming chain's partition invariant: splitting the seed set
    # into batches and concatenating per-batch results must reproduce the
    # unbatched tuples exactly, in order — including drop-out steps.
    archives = make_sky(n_bodies=60, seed=4, detection=(1.0, 0.9, 0.8))
    spec = [
        ("A", archives[0][0], archives[0][1], False),
        ("B", archives[1][0], archives[1][1], False),
        ("C", archives[2][0], archives[2][1], True),  # dropout (optional)
    ]
    reference = run_chain(spec, 3.5)
    batched = run_chain(spec, 3.5, batch_size=batch_size)
    assert [t.members for t in batched] == [t.members for t in reference]
    assert [t.attributes for t in batched] == [t.attributes for t in reference]
