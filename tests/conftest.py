"""Shared fixtures: federations are expensive, so session-scope them."""

from __future__ import annotations

import pytest

from repro.federation.builder import FederationConfig, build_federation
from repro.workloads.skysim import SkyField


@pytest.fixture(scope="session")
def small_federation():
    """A three-survey federation over a 0.5-degree field, 600 bodies."""
    return build_federation(
        FederationConfig(
            n_bodies=600,
            seed=77,
            sky_field=SkyField(185.0, -0.5, 1800.0),
        )
    )


@pytest.fixture(scope="session")
def figure2():
    """The exact Figure 2 two-body scenario (federation, ids)."""
    from repro.bench.scenarios import build_figure2_federation

    return build_figure2_federation()


@pytest.fixture()
def fresh_metrics(small_federation):
    """The shared federation with its network metrics reset."""
    small_federation.network.metrics.reset()
    return small_federation
