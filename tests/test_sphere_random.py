"""Random sampling on the sphere."""

import math
import random

import pytest

from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import angular_separation
from repro.sphere.random import (
    grid_in_cap,
    perturb_gaussian,
    random_in_cap,
    random_on_sphere,
    tangent_basis,
)
from repro.sphere.vector import dot, norm
from repro.units import arcsec_to_rad


def test_random_on_sphere_unit_length():
    rng = random.Random(0)
    for _ in range(100):
        assert norm(random_on_sphere(rng)) == pytest.approx(1.0)


def test_random_on_sphere_covers_hemispheres():
    rng = random.Random(0)
    zs = [random_on_sphere(rng)[2] for _ in range(500)]
    assert any(z > 0.5 for z in zs) and any(z < -0.5 for z in zs)


def test_random_in_cap_stays_inside():
    rng = random.Random(1)
    center = radec_to_vector(185.0, -0.5)
    radius = math.radians(2.0)
    for _ in range(300):
        p = random_in_cap(rng, center, radius)
        assert angular_separation(center, p) <= radius + 1e-12


def test_random_in_cap_fills_cap():
    # Area-uniform: about half the samples beyond sqrt(1/2) of the radius.
    rng = random.Random(2)
    center = radec_to_vector(0.0, 90.0)
    radius = math.radians(1.0)
    far = sum(
        angular_separation(center, random_in_cap(rng, center, radius))
        > radius * math.sqrt(0.5)
        for _ in range(2000)
    )
    assert 0.42 < far / 2000 < 0.58


def test_perturb_gaussian_scale():
    rng = random.Random(3)
    center = radec_to_vector(185.0, -0.5)
    sigma = arcsec_to_rad(1.0)
    seps = [
        angular_separation(center, perturb_gaussian(rng, center, sigma))
        for _ in range(2000)
    ]
    # Rayleigh distribution: mean = sigma * sqrt(pi/2).
    mean = sum(seps) / len(seps)
    assert mean == pytest.approx(sigma * math.sqrt(math.pi / 2), rel=0.1)


def test_perturb_zero_sigma_identity():
    rng = random.Random(4)
    v = radec_to_vector(10.0, 20.0)
    assert perturb_gaussian(rng, v, 0.0) == pytest.approx(v)


def test_tangent_basis_orthonormal():
    for ra, dec in [(0.0, 0.0), (185.0, -0.5), (10.0, 89.9), (300.0, -89.99)]:
        v = radec_to_vector(ra, dec)
        east, north = tangent_basis(v)
        assert norm(east) == pytest.approx(1.0)
        assert norm(north) == pytest.approx(1.0)
        assert dot(east, north) == pytest.approx(0.0, abs=1e-12)
        assert dot(east, v) == pytest.approx(0.0, abs=1e-12)
        assert dot(north, v) == pytest.approx(0.0, abs=1e-12)


def test_grid_in_cap_deterministic():
    a = grid_in_cap(185.0, -0.5, 600.0, 10, seed=42)
    b = grid_in_cap(185.0, -0.5, 600.0, 10, seed=42)
    assert a == b
    c = grid_in_cap(185.0, -0.5, 600.0, 10, seed=43)
    assert a != c
