"""The SQL dialect parser."""

import math

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    AreaClause,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    Star,
    XMatchClause,
    conjuncts,
)
from repro.sql.parser import parse_expression, parse_query

PAPER_QUERY = """
SELECT O.object_id, O.right_ascension, T.object_id
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T, P) < 3.5
  AND O.type = GALAXY AND (O.i_flux - T.i_flux) > 2
"""


def test_paper_query_tables():
    query = parse_query(PAPER_QUERY)
    assert [(t.archive, t.table, t.alias) for t in query.tables] == [
        ("SDSS", "Photo_Object", "O"),
        ("TWOMASS", "Photo_Primary", "T"),
        ("FIRST", "Primary_Object", "P"),
    ]


def test_paper_query_select_items():
    query = parse_query(PAPER_QUERY)
    assert query.items[0].expr == ColumnRef("O", "object_id")
    assert query.items[2].expr == ColumnRef("T", "object_id")


def test_paper_query_clauses():
    query = parse_query(PAPER_QUERY)
    parts = conjuncts(query.where)
    area = [c for c in parts if isinstance(c, AreaClause)]
    xmatch = [c for c in parts if isinstance(c, XMatchClause)]
    assert area == [AreaClause(185.0, -0.5, 4.5)]
    assert len(xmatch) == 1
    assert xmatch[0].threshold == 3.5
    assert [t.alias for t in xmatch[0].terms] == ["O", "T", "P"]
    assert not any(t.dropout for t in xmatch[0].terms)


def test_dropout_parsing():
    query = parse_query(
        "SELECT a.x FROM A:T1 a, B:T2 b WHERE XMATCH(a, !b) < 2.0"
    )
    clause = conjuncts(query.where)[0]
    assert isinstance(clause, XMatchClause)
    assert [t.dropout for t in clause.terms] == [False, True]
    assert clause.mandatory[0].alias == "a"
    assert clause.dropouts[0].alias == "b"


def test_negative_area_coordinates():
    expr = parse_expression("AREA(185.0, -0.5, 4.5)")
    assert expr == AreaClause(185.0, -0.5, 4.5)


def test_xmatch_without_threshold_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT a.x FROM A:T a WHERE XMATCH(a)")


def test_xmatch_wrong_operator_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT a.x FROM A:T a WHERE XMATCH(a) > 3.5")


def test_xmatch_non_numeric_threshold_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT a.x FROM A:T a WHERE XMATCH(a) < 'x'")


def test_count_star():
    query = parse_query("SELECT count(*) FROM T t")
    expr = query.items[0].expr
    assert isinstance(expr, FuncCall)
    assert expr.name == "COUNT"
    assert isinstance(expr.args[0], Star)


def test_select_star():
    query = parse_query("SELECT * FROM T t")
    assert isinstance(query.items[0].expr, Star)


def test_alias_with_and_without_as():
    query = parse_query("SELECT t.a AS x, t.b y FROM T t")
    assert query.items[0].alias == "x"
    assert query.items[1].alias == "y"


def test_limit():
    assert parse_query("SELECT t.a FROM T t LIMIT 10").limit == 10
    assert parse_query("SELECT t.a FROM T t").limit is None


def test_precedence_and_or():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, BinaryOp) and expr.op == "OR"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"


def test_precedence_arith():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


def test_parenthesized_expression():
    expr = parse_expression("(1 + 2) * 3")
    assert isinstance(expr, BinaryOp) and expr.op == "*"


def test_not_equals_normalized():
    expr = parse_expression("a != 1")
    assert isinstance(expr, BinaryOp) and expr.op == "<>"


def test_literals():
    assert parse_expression("NULL") == Literal(None)
    assert parse_expression("TRUE") == Literal(True)
    assert parse_expression("FALSE") == Literal(False)
    assert parse_expression("'txt'") == Literal("txt")
    assert parse_expression("7") == Literal(7)
    assert parse_expression("7.5") == Literal(7.5)


def test_int_vs_float_literal_types():
    assert isinstance(parse_expression("7").value, int)
    assert isinstance(parse_expression("7.0").value, float)
    assert isinstance(parse_expression("1e3").value, float)


def test_unary_plus_and_minus():
    assert parse_expression("+5") == Literal(5)
    from repro.sql.ast import UnaryOp

    assert parse_expression("-5") == UnaryOp("-", Literal(5))


def test_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT t.a FROM T t extra garbage here")


def test_missing_from_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_query("SELECT 1")


def test_trailing_semicolon_allowed():
    assert parse_query("SELECT t.a FROM T t;").tables[0].table == "T"


def test_error_carries_position():
    with pytest.raises(SQLSyntaxError) as err:
        parse_query("SELECT ,")
    assert err.value.line >= 1


def test_xmatch_nan_never_escapes():
    # A folded clause always has a real threshold.
    query = parse_query("SELECT a.x FROM A:T a WHERE XMATCH(a) < 1.5")
    clause = conjuncts(query.where)[0]
    assert not math.isnan(clause.threshold)
