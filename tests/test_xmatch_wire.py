"""Partial-tuple wire serialization."""

import pytest

from repro.errors import SoapError
from repro.sphere.coords import radec_to_vector
from repro.units import arcsec_to_rad
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.xmatch.wire import rowset_to_tuples, tuple_schema, tuples_to_rowset


def make_tuples():
    sigma = arcsec_to_rad(0.5)
    tuples = []
    for i in range(3):
        obj_a = LocalObject(i, radec_to_vector(185.0 + i * 0.001, -0.5),
                            {"flux": 10.0 + i})
        obj_b = LocalObject(100 + i, radec_to_vector(185.0 + i * 0.001, -0.5001),
                            {"mag": None if i == 1 else float(i)})
        tuples.append(
            PartialTuple.seed("A", obj_a, sigma).extended("B", obj_b, sigma)
        )
    return tuples


ATTRS = [("A.flux", "double"), ("B.mag", "double")]


def test_schema_layout():
    schema = tuple_schema(["A", "B"], ATTRS)
    names = [name for name, _ in schema]
    assert names == ["id_A", "id_B", "acc_a", "acc_ax", "acc_ay", "acc_az",
                     "A.flux", "B.mag"]


def test_roundtrip():
    tuples = make_tuples()
    rowset = tuples_to_rowset(tuples, ["A", "B"], ATTRS)
    back = rowset_to_tuples(rowset, ["A", "B"], ATTRS)
    assert len(back) == len(tuples)
    for original, restored in zip(tuples, back):
        assert restored.members == original.members
        assert restored.acc.a == pytest.approx(original.acc.a)
        assert restored.acc.chi2() == pytest.approx(original.acc.chi2())
        assert restored.attributes["A.flux"] == original.attributes["A.flux"]


def test_roundtrip_preserves_chi2_decisions():
    tuples = make_tuples()
    rowset = tuples_to_rowset(tuples, ["A", "B"], ATTRS)
    back = rowset_to_tuples(rowset, ["A", "B"], ATTRS)
    for original, restored in zip(tuples, back):
        assert restored.acc.accepts(3.5) == original.acc.accepts(3.5)


def test_null_attributes_travel():
    tuples = make_tuples()
    rowset = tuples_to_rowset(tuples, ["A", "B"], ATTRS)
    back = rowset_to_tuples(rowset, ["A", "B"], ATTRS)
    assert back[1].attributes["B.mag"] is None


def test_member_mismatch_rejected():
    tuples = make_tuples()
    with pytest.raises(SoapError):
        tuples_to_rowset(tuples, ["A", "C"], ATTRS)


def test_schema_mismatch_on_decode_rejected():
    tuples = make_tuples()
    rowset = tuples_to_rowset(tuples, ["A", "B"], ATTRS)
    with pytest.raises(SoapError):
        rowset_to_tuples(rowset, ["B", "A"], ATTRS)
    with pytest.raises(SoapError):
        rowset_to_tuples(rowset, ["A", "B"], [("other", "double")])


def test_empty_tuple_list():
    rowset = tuples_to_rowset([], ["A"], [])
    assert len(rowset.rows) == 0
    assert rowset_to_tuples(rowset, ["A"], []) == []
