"""SELECT DISTINCT and the zero-count early exit."""

import pytest

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.types import ColumnType


@pytest.fixture()
def db():
    database = Database("d")
    database.create_table(
        "t",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("kind", ColumnType.STRING, nullable=False),
            Column("v", ColumnType.INT),
        ],
    )
    database.insert(
        "t",
        [
            (1, "a", 10),
            (2, "a", 10),
            (3, "b", 20),
            (4, "b", None),
            (5, "b", None),
        ],
    )
    return database


def test_distinct_single_column(db):
    result = db.execute("SELECT DISTINCT t.kind FROM t ORDER BY t.kind")
    assert result.rows == [("a",), ("b",)]


def test_distinct_multi_column(db):
    result = db.execute(
        "SELECT DISTINCT t.kind, t.v FROM t ORDER BY t.kind, t.v"
    )
    assert result.rows == [("a", 10), ("b", None), ("b", 20)]


def test_distinct_with_limit(db):
    result = db.execute(
        "SELECT DISTINCT t.kind FROM t ORDER BY t.kind LIMIT 1"
    )
    assert result.rows == [("a",)]


def test_distinct_limit_without_order(db):
    # LIMIT must apply after deduplication, not cut the scan short.
    result = db.execute("SELECT DISTINCT t.kind FROM t LIMIT 2")
    assert sorted(result.rows) == [("a",), ("b",)]


def test_distinct_nulls_collapse(db):
    result = db.execute("SELECT DISTINCT t.v FROM t WHERE t.kind = 'b'")
    assert sorted(result.rows, key=lambda r: (r[0] is not None, r[0])) == [
        (None,), (20,),
    ]


def test_non_distinct_keeps_duplicates(db):
    result = db.execute("SELECT t.kind FROM t")
    assert len(result.rows) == 5


def test_distinct_printing_roundtrip():
    from repro.sql.parser import parse_query
    from repro.sql.printer import to_sql

    sql = "SELECT DISTINCT t.a, t.b FROM T t WHERE t.a > 1 ORDER BY t.a"
    assert parse_query(to_sql(parse_query(sql))) == parse_query(sql)


def test_federated_distinct(small_federation):
    sql = (
        "SELECT DISTINCT O.type "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5 "
        "ORDER BY O.type"
    )
    result = small_federation.client().submit(sql)
    values = [row[0] for row in result.rows]
    assert values == sorted(set(values))
    assert len(values) <= 3  # GALAXY / QSO / STAR


class TestEarlyExit:
    def test_zero_count_skips_chain(self, fresh_metrics):
        fed = fresh_metrics
        # An AREA nowhere near the synthetic field: every count is zero.
        result = fed.client().submit(
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(10.0, 40.0, 300.0) AND XMATCH(O, T) < 3.5"
        )
        assert len(result) == 0
        metrics = fed.network.metrics
        assert metrics.message_count(phase="performance-query") > 0
        assert metrics.message_count(phase="crossmatch-chain") == 0

    def test_zero_count_result_reports_counts(self, small_federation):
        result = small_federation.client().submit(
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(10.0, 40.0, 300.0) AND XMATCH(O, T) < 3.5"
        )
        assert set(result.counts) == {"O", "T"}
        assert all(count == 0 for count in result.counts.values())
        assert result.columns == ["O.object_id", "T.obj_id"]

    def test_partial_zero_also_exits(self, fresh_metrics):
        fed = fresh_metrics
        # Impossible local predicate at one archive only.
        result = fed.client().submit(
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5 "
            "AND O.i_flux < -99999"
        )
        assert len(result) == 0
        assert fed.network.metrics.message_count(phase="crossmatch-chain") == 0
