"""Semantic validation of cross-match queries."""

import pytest

from repro.errors import ValidationError
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.sql.validate import validate_query


def analyze(sql):
    return validate_query(parse_query(sql))


def test_classifies_local_and_cross_conjuncts():
    analysis = analyze(
        "SELECT O.a, T.b FROM S:T1 O, W:T2 T "
        "WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T) < 3.5 "
        "AND O.x = 1 AND T.y = 2 AND O.a - T.b > 0"
    )
    assert [to_sql(c) for c in analysis.local_conjuncts["O"]] == ["O.x = 1"]
    assert [to_sql(c) for c in analysis.local_conjuncts["T"]] == ["T.y = 2"]
    assert [to_sql(c) for c in analysis.cross_conjuncts] == ["O.a - T.b > 0"]
    assert analysis.area is not None
    assert analysis.xmatch is not None


def test_single_table_query_valid_without_xmatch():
    analysis = analyze("SELECT t.a FROM S:T1 t WHERE t.a > 1")
    assert analysis.xmatch is None
    assert analysis.local_conjuncts["t"]


def test_multi_table_requires_xmatch():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x, b.y FROM S:T1 a, W:T2 b WHERE a.x = b.y")


def test_duplicate_alias_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 a WHERE XMATCH(a, a) < 1")


def test_xmatch_unknown_alias_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, c) < 1")


def test_xmatch_duplicate_alias_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, a, b) < 1")


def test_multiple_xmatch_rejected():
    with pytest.raises(ValidationError):
        analyze(
            "SELECT a.x FROM S:T1 a, W:T2 b "
            "WHERE XMATCH(a, b) < 1 AND XMATCH(b, a) < 2"
        )


def test_multiple_area_rejected():
    with pytest.raises(ValidationError):
        analyze(
            "SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, b) < 1 "
            "AND AREA(1.0, 2.0, 3.0) AND AREA(4.0, 5.0, 6.0)"
        )


def test_all_dropouts_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(!a, !b) < 1")


def test_single_mandatory_with_dropout_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, !b) < 1")


def test_two_mandatory_with_dropout_ok():
    analysis = analyze(
        "SELECT a.x FROM S:T1 a, W:T2 b, V:T3 c WHERE XMATCH(a, b, !c) < 1"
    )
    assert [t.alias for t in analysis.xmatch.dropouts] == ["c"]


def test_negative_threshold_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, b) < -1")


def test_spatial_clause_under_or_rejected():
    with pytest.raises(ValidationError):
        analyze(
            "SELECT a.x FROM S:T1 a, W:T2 b "
            "WHERE XMATCH(a, b) < 1 AND (AREA(1.0, 2.0, 3.0) OR a.x = 1)"
        )


def test_unknown_alias_in_condition_rejected():
    with pytest.raises(ValidationError):
        analyze(
            "SELECT a.x FROM S:T1 a, W:T2 b WHERE XMATCH(a, b) < 1 AND z.q = 1"
        )


def test_unknown_alias_in_select_rejected():
    with pytest.raises(ValidationError):
        analyze("SELECT z.q FROM S:T1 a, W:T2 b WHERE XMATCH(a, b) < 1")


def test_alias_defaults_to_table_name():
    analysis = analyze("SELECT T1.a FROM S:T1 WHERE T1.a = 1")
    assert analysis.aliases == ("T1",)
