"""Replica failover + mid-chain checkpoint/resume (docs/RESILIENCE.md).

The failover contract: a federation built with ``replicas=N`` keeps
answering *complete* queries — never degraded — as long as every archive
has one live endpoint. An injected crash costs failovers and simulated
seconds, never rows: both chain modes must return rows byte-identical to
the fault-free oracle, with ``failovers >= 1`` and zero degradation.

``SKYQUERY_CHAOS_SEED`` (CI's chaos-smoke matrix) shifts the crash
schedule so different recovery paths are exercised on every run.
"""

import functools
import os

import pytest

from repro.errors import SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.client import ServiceProxy
from repro.services.retry import RetryPolicy
from repro.skynode.crossmatch import CHECKPOINT_TTL_S
from repro.transport.faults import FaultPlan
from repro.workloads.skysim import SkyField

CHAOS_SEED = int(os.environ.get("SKYQUERY_CHAOS_SEED", "0"))

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)


def _config(*, replicas=1, chain_mode="store-forward"):
    return FederationConfig(
        n_bodies=500,
        seed=11,
        sky_field=SkyField(185.0, -0.5, 1800.0),
        retry_policy=RetryPolicy(
            max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
            max_backoff_s=2.0, seed=11 + CHAOS_SEED,
        ),
        replicas=replicas,
        chain_mode=chain_mode,
    )


def _build(**kwargs):
    return build_federation(_config(**kwargs))


def _table_rows(node, table_name):
    table = node.db.table(table_name)
    return sorted(tuple(table.row(pos)) for pos in table.iter_positions())


@functools.lru_cache(maxsize=4)
def _oracle(chain_mode):
    """Fault-free run: (rows, columns, chain window, first-hop hostname).

    The simulation is deterministic, so an identically-built twin
    federation reaches ``t0`` at the same instant — a crash scheduled
    inside ``(t0, t1)`` is guaranteed to land while the twin's chain is
    executing.
    """
    fed = _build(chain_mode=chain_mode)
    t0 = fed.network.clock.now
    result = fed.client().submit(XMATCH_SQL)
    t1 = fed.network.clock.now
    assert result.failovers == 0 and not result.degraded
    victim = result.plan["steps"][0]["url"].split("/")[2]
    return tuple(result.rows), tuple(result.columns), (t0, t1), victim


class TestReplicaProvisioning:
    def test_replicas_mirror_primary_content(self):
        fed = _build()
        for archive, replica_nodes in fed.replicas.items():
            assert len(replica_nodes) == 1
            primary = fed.node(archive)
            table = primary.info.primary_table
            want = _table_rows(primary, table)
            assert want
            for replica in replica_nodes:
                assert _table_rows(replica, table) == want

    def test_catalog_lists_replica_endpoints(self):
        fed = _build()
        for archive in fed.portal.catalog.archives():
            record = fed.portal.catalog.node(archive)
            candidates = record.endpoint_candidates()
            assert len(candidates) == 2  # primary + one replica
            assert candidates[0] == record.services
            assert candidates[1]["crossmatch"] != record.services["crossmatch"]

    def test_replica_hostnames_are_distinct(self):
        fed = _build()
        hostnames = {node.hostname for node in fed.nodes.values()}
        for replicas in fed.replicas.values():
            for node in replicas:
                assert node.hostname not in hostnames

    def test_no_replicas_by_default(self):
        fed = _build(replicas=0)
        assert fed.replicas == {}
        for archive in fed.portal.catalog.archives():
            record = fed.portal.catalog.node(archive)
            assert record.endpoint_candidates() == [record.services]


class TestPlanTimeFailover:
    def test_dead_primary_substituted_at_plan_time(self):
        rows, columns, _, _ = _oracle("store-forward")
        fed = _build()
        fed.network.set_fault_plan(
            FaultPlan().crash(
                fed.node("SDSS").hostname, at_s=fed.network.clock.now
            )
        )
        result = fed.client().submit(XMATCH_SQL)
        assert tuple(result.rows) == rows
        assert tuple(result.columns) == columns
        assert result.failovers >= 1
        assert not result.degraded
        assert any(
            "unreachable; failing over to replica" in w
            for w in result.warnings
        )

    def test_mandatory_archive_with_no_live_endpoint_degrades(self):
        fed = _build()
        fed.network.fail_host(fed.node("SDSS").hostname)
        for replica in fed.replicas["SDSS"]:
            fed.network.fail_host(replica.hostname)
        result = fed.client().submit(XMATCH_SQL)
        assert result.degraded
        assert result.rows == []

    def test_failover_without_replicas_degrades_as_before(self):
        fed = _build(replicas=0)
        fed.network.fail_host(fed.node("SDSS").hostname)
        result = fed.client().submit(XMATCH_SQL)
        assert result.degraded
        assert result.failovers == 0


class TestMidChainFailover:
    """The tentpole acceptance criterion, both chain modes."""

    @pytest.mark.parametrize("chain_mode", ["store-forward", "pipelined"])
    def test_crash_mid_chain_is_byte_identical_to_oracle(self, chain_mode):
        rows, columns, (t0, t1), victim = _oracle(chain_mode)
        fed = _build(chain_mode=chain_mode)
        crash_at = t0 + 0.6 * (t1 - t0)
        fed.network.set_fault_plan(FaultPlan().crash(victim, at_s=crash_at))
        result = fed.client().submit(XMATCH_SQL)
        assert tuple(result.rows) == rows
        assert tuple(result.columns) == columns
        assert result.failovers >= 1
        assert not result.degraded
        assert any(
            "failed mid-chain; failing over to replica" in w
            for w in result.warnings
        )
        assert fed.network.metrics.failovers >= 1
        assert fed.network.metrics.fault_count("crash") >= 1

    @pytest.mark.parametrize("chain_mode", ["store-forward", "pipelined"])
    @pytest.mark.parametrize("slot", [0, 1, 2])
    def test_chaos_crash_schedule_never_loses_rows(self, chain_mode, slot):
        """Seeded sweep: wherever the crash lands, the answer is complete."""
        rows, _, (t0, t1), victim = _oracle(chain_mode)
        fraction = 0.2 + 0.25 * ((CHAOS_SEED + slot) % 3)
        fed = _build(chain_mode=chain_mode)
        fed.network.set_fault_plan(
            FaultPlan().crash(victim, at_s=t0 + fraction * (t1 - t0))
        )
        result = fed.client().submit(XMATCH_SQL)
        assert tuple(result.rows) == rows
        assert result.failovers >= 1
        assert not result.degraded


class TestCheckpoints:
    def test_chain_records_one_checkpoint_per_hop(self):
        fed = _build(replicas=0)
        fed.client().submit(XMATCH_SQL)
        for node in fed.nodes.values():
            assert node.crossmatch.open_checkpoints == 1

    def test_fresh_query_never_reuses_checkpoints(self):
        fed = _build(replicas=0)
        first = fed.client().submit(XMATCH_SQL)
        second = fed.client().submit(XMATCH_SQL)
        assert first.rows == second.rows
        # A new execution id per submit: the second query computed its
        # own checkpoints instead of being served stale ones.
        for node in fed.nodes.values():
            assert node.crossmatch.open_checkpoints == 2

    def test_checkpoint_hit_skips_downstream_recompute(self):
        fed = _build(replicas=0)
        submitted = fed.client().submit(XMATCH_SQL)
        url = submitted.plan["steps"][0]["url"]
        proxy = ServiceProxy(fed.network, "tester.skyquery.net", url)

        def downstream_requests():
            return [
                m for m in fed.network.metrics.messages
                if m.operation == "PerformXMatch" and m.kind == "request"
                and not m.src.startswith("tester")
            ]

        fed.network.metrics.reset()
        first = proxy.call(
            "PerformXMatch", plan=submitted.plan, position=0, xid="probe-x1"
        )
        assert len(downstream_requests()) >= 1  # full chain ran
        fed.network.metrics.reset()
        replay = proxy.call(
            "PerformXMatch", plan=submitted.plan, position=0, xid="probe-x1"
        )
        # Same xid: answered from the hop's checkpoint, no downstream call.
        assert downstream_requests() == []
        assert replay["rows"].rows == first["rows"].rows
        assert replay["stats"] == first["stats"]

    def test_checkpoints_reaped_after_ttl(self):
        fed = _build(replicas=0)
        fed.client().submit(XMATCH_SQL)
        fed.network.clock.advance(CHECKPOINT_TTL_S + 1.0)
        fed.client().submit(XMATCH_SQL)  # any chain call triggers the reap
        for node in fed.nodes.values():
            assert node.crossmatch.open_checkpoints == 1  # just the new one

    def test_crash_wipes_checkpoints(self):
        fed = _build(replicas=0)
        fed.client().submit(XMATCH_SQL)
        node = fed.node("SDSS")
        assert node.crossmatch.open_checkpoints == 1
        node.crash_volatile_state()
        assert node.crossmatch.open_checkpoints == 0


class TestStreamResume:
    def _open(self, proxy, plan, start_seq, batch_size=25):
        return proxy.call(
            "OpenStream", plan=plan, position=0, batch_size=batch_size,
            wire_format="columnar", start_seq=start_seq,
        )

    def test_open_stream_validates_start_seq(self):
        fed = _build(replicas=0, chain_mode="pipelined")
        submitted = fed.client().submit(XMATCH_SQL)
        proxy = ServiceProxy(
            fed.network, "tester.skyquery.net",
            submitted.plan["steps"][0]["url"],
        )
        with pytest.raises(SoapFaultError):
            self._open(proxy, submitted.plan, -1)
        opened = self._open(proxy, submitted.plan, 0)
        with pytest.raises(SoapFaultError):
            self._open(proxy, submitted.plan, opened["batch_count"] + 1)

    @pytest.mark.parametrize("window", [1, 2])
    def test_pull_window_flow_control_preserves_rows(self, window):
        """Bounded pull waves change pacing, never the answer."""
        rows, columns, _, _ = _oracle("pipelined")
        fed = _build(chain_mode="pipelined")
        fed.portal.stream_batch_size = 8
        fed.portal.stream_pull_window = window
        result = fed.client().submit(XMATCH_SQL)
        assert tuple(result.rows) == rows
        assert tuple(result.columns) == columns
        assert not result.degraded

    def test_resumed_stream_serves_only_the_tail(self):
        fed = _build(replicas=0, chain_mode="pipelined")
        submitted = fed.client().submit(XMATCH_SQL)
        proxy = ServiceProxy(
            fed.network, "tester.skyquery.net",
            submitted.plan["steps"][0]["url"],
        )
        full = self._open(proxy, submitted.plan, 0)
        count = full["batch_count"]
        assert count >= 2, "need a multi-batch stream to test resume"
        batches = [
            proxy.call("PullBatch", stream_id=full["stream_id"], seq=seq)
            for seq in range(count)
        ]
        resume_at = count // 2
        resumed = self._open(proxy, submitted.plan, resume_at)
        assert resumed["batch_count"] == count
        # Already-acknowledged batches are gone: the stream starts at the
        # high-water mark and pulling before it is a protocol error.
        with pytest.raises(SoapFaultError):
            proxy.call("PullBatch", stream_id=resumed["stream_id"], seq=0)
        for seq in range(resume_at, count):
            tail = proxy.call(
                "PullBatch", stream_id=resumed["stream_id"], seq=seq
            )
            assert tail["rows"].rows == batches[seq]["rows"].rows
