"""The UDDI-style registry."""

import pytest

from repro.errors import SoapFaultError
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost
from repro.services.registry import RegistryEntry, UDDIRegistry
from repro.transport.network import SimulatedNetwork


@pytest.fixture()
def registry_proxy():
    net = SimulatedNetwork()
    registry = UDDIRegistry()
    host = ServiceHost("uddi.net")
    url = host.mount("/registry", registry)
    net.add_host("uddi.net", host.handle)
    return registry, ServiceProxy(net, "client", url)


def test_publish_and_find(registry_proxy):
    registry, proxy = registry_proxy
    proxy.call("Publish", name="SDSSQuery", category="skynode",
               url="http://sdss/query", description="d")
    found = proxy.call("Find", category="skynode", name="")
    assert len(found) == 1
    entry = RegistryEntry.from_wire(found[0])
    assert entry.name == "SDSSQuery"
    assert entry.url == "http://sdss/query"


def test_find_by_name(registry_proxy):
    _, proxy = registry_proxy
    proxy.call("Publish", name="A", category="c1", url="http://a", description="")
    proxy.call("Publish", name="B", category="c1", url="http://b", description="")
    found = proxy.call("Find", category="", name="B")
    assert [e["name"] for e in found] == ["B"]


def test_find_all(registry_proxy):
    _, proxy = registry_proxy
    proxy.call("Publish", name="A", category="c1", url="http://a", description="")
    proxy.call("Publish", name="B", category="c2", url="http://b", description="")
    found = proxy.call("Find", category="", name="")
    assert [e["name"] for e in found] == ["A", "B"]


def test_republish_replaces(registry_proxy):
    registry, proxy = registry_proxy
    proxy.call("Publish", name="A", category="c", url="http://old", description="")
    proxy.call("Publish", name="A", category="c", url="http://new", description="")
    found = proxy.call("Find", category="c", name="A")
    assert found[0]["url"] == "http://new"
    assert registry.entry_count() == 1


def test_unpublish(registry_proxy):
    _, proxy = registry_proxy
    proxy.call("Publish", name="A", category="c", url="http://a", description="")
    assert proxy.call("Unpublish", name="A") is True
    assert proxy.call("Unpublish", name="A") is False
    assert proxy.call("Find", category="", name="") == []


def test_publish_requires_name_and_url(registry_proxy):
    _, proxy = registry_proxy
    with pytest.raises(SoapFaultError):
        proxy.call("Publish", name="", category="c", url="http://a",
                   description="")
    with pytest.raises(SoapFaultError):
        proxy.call("Publish", name="A", category="c", url="", description="")


def test_entry_wire_roundtrip():
    entry = RegistryEntry("n", "c", "http://u", "d")
    assert RegistryEntry.from_wire(entry.to_wire()) == entry
