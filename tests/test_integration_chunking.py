"""Chunked transfers and the parser-memory failure mode, end to end."""

import pytest

from repro.errors import SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.workloads.skysim import SkyField

SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T) < 3.5"
)


def make_fed(parser_memory_limit, chunk_budget_bytes, n_bodies=1200):
    return build_federation(
        FederationConfig(
            n_bodies=n_bodies,
            seed=5,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            parser_memory_limit=parser_memory_limit,
            chunk_budget_bytes=chunk_budget_bytes,
        )
    )


@pytest.fixture(scope="module")
def reference_rows():
    fed = make_fed(parser_memory_limit=None, chunk_budget_bytes=None)
    return sorted(fed.client().submit(SQL).rows)


def test_monolithic_oom_faults(reference_rows):
    fed = make_fed(parser_memory_limit=300_000, chunk_budget_bytes=None)
    with pytest.raises(SoapFaultError) as err:
        fed.client().submit(SQL)
    assert "memory" in str(err.value).lower()


def test_chunked_succeeds_under_same_limit(reference_rows):
    fed = make_fed(parser_memory_limit=300_000, chunk_budget_bytes=32_768)
    result = fed.client().submit(SQL)
    assert sorted(result.rows) == reference_rows


def test_chunk_messages_respect_budget(reference_rows):
    budget = 32_768
    fed = make_fed(parser_memory_limit=300_000, chunk_budget_bytes=budget)
    fed.network.metrics.reset()
    fed.client().submit(SQL)
    # Chunk drains carry their own phase label, separate from chain control.
    chain = [
        m
        for m in fed.network.metrics.messages
        if m.phase == "chunk-transfer" and m.operation == "FetchChunk"
        and m.kind == "response"
    ]
    assert chain, "expected chunked FetchChunk traffic"
    # HTTP headers add a little on top of the SOAP envelope budget.
    assert all(m.wire_bytes <= budget + 512 for m in chain)


def test_smaller_chunks_mean_more_messages(reference_rows):
    def chain_messages(budget):
        fed = make_fed(parser_memory_limit=None, chunk_budget_bytes=budget)
        fed.network.metrics.reset()
        fed.client().submit(SQL)
        metrics = fed.network.metrics
        return metrics.message_count(
            phase="crossmatch-chain"
        ) + metrics.message_count(phase="chunk-transfer")

    assert chain_messages(16_384) > chain_messages(65_536)


def test_chunking_preserves_results_exactly(reference_rows):
    fed = make_fed(parser_memory_limit=None, chunk_budget_bytes=16_384)
    assert sorted(fed.client().submit(SQL).rows) == reference_rows


def test_transfers_cleaned_up_after_fetch(reference_rows):
    fed = make_fed(parser_memory_limit=None, chunk_budget_bytes=16_384)
    fed.client().submit(SQL)
    for node in fed.nodes.values():
        assert node.crossmatch.sender.pending_transfers == 0
        assert node.query.sender.pending_transfers == 0
