"""Property-based equivalence: vectorized kernel vs scalar oracle.

Satellite of the vectorized-kernel work: across random skies, archive
orderings, dropout placements, empty candidate sets, and near-boundary
thresholds, the batch kernel must return exactly the scalar engine's
survivor set (same members, same order) with accumulators within 1e-3
absolute tolerance (bitwise equality is the implementation goal; the
tolerance is the contract).
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.sphere.coords import radec_to_vector  # noqa: E402
from repro.sphere.random import perturb_gaussian, random_in_cap  # noqa: E402
from repro.units import arcsec_to_rad  # noqa: E402
from repro.xmatch.stream import run_chain  # noqa: E402
from repro.xmatch.tuples import LocalObject  # noqa: E402


def build_sky(seed, n_bodies, sigmas_arcsec, detection_rates, spread_arcsec):
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    bodies = [
        random_in_cap(rng, center, arcsec_to_rad(spread_arcsec))
        for _ in range(n_bodies)
    ]
    archives = []
    for sigma_arcsec, rate in zip(sigmas_arcsec, detection_rates):
        sigma = arcsec_to_rad(sigma_arcsec)
        objects = [
            LocalObject(object_id=i, position=perturb_gaussian(rng, b, sigma))
            for i, b in enumerate(bodies)
            if rng.random() < rate
        ]
        archives.append((objects, sigma))
    return archives


chain_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "n_bodies": st.integers(0, 25),
        "n_archives": st.integers(2, 4),
        "sigma_exp": st.lists(
            st.floats(-1.0, 0.5), min_size=4, max_size=4
        ),
        "detection": st.lists(
            st.sampled_from([0.0, 0.4, 0.8, 1.0]), min_size=4, max_size=4
        ),
        # Dense fields + loose thresholds exercise multi-candidate tuples;
        # tiny thresholds exercise the accept/reject boundary.
        "spread": st.sampled_from([30.0, 120.0, 600.0]),
        "threshold": st.sampled_from([0.05, 0.5, 1.0, 3.5, 10.0]),
        "order_seed": st.integers(0, 100),
        "n_dropouts": st.integers(0, 2),
    }
)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(params=chain_strategy)
def test_vectorized_chain_equals_scalar_chain(params):
    n = params["n_archives"]
    sigmas = [10.0 ** e for e in params["sigma_exp"][:n]]
    archives = build_sky(
        params["seed"],
        params["n_bodies"],
        sigmas,
        params["detection"][:n],
        params["spread"],
    )
    order = list(range(n))
    random.Random(params["order_seed"]).shuffle(order)
    n_dropouts = min(params["n_dropouts"], n - 1)
    spec = []
    for slot, archive_idx in enumerate(order):
        objects, sigma = archives[archive_idx]
        is_dropout = slot >= n - n_dropouts
        spec.append((f"A{archive_idx}", objects, sigma, is_dropout))

    scalar = run_chain(spec, params["threshold"], engine="scalar")
    vectorized = run_chain(spec, params["threshold"], engine="vectorized")

    assert [t.members for t in vectorized] == [t.members for t in scalar]
    for v, s in zip(vectorized, scalar):
        assert v.acc.a == pytest.approx(s.acc.a, abs=1e-3)
        assert v.acc.ax == pytest.approx(s.acc.ax, abs=1e-3)
        assert v.acc.ay == pytest.approx(s.acc.ay, abs=1e-3)
        assert v.acc.az == pytest.approx(s.acc.az, abs=1e-3)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 5_000),
    depth=st.integers(0, 10),
    radius_exp=st.floats(-6.5, -0.5),
    count=st.integers(1, 8),
)
def test_batch_cap_covers_property(seed, depth, radius_exp, count):
    from repro.htm.batch import batch_cap_covers
    from repro.htm.cover import cover
    from repro.sphere.regions import Cap

    rng = random.Random(seed)
    caps = [
        Cap(
            radec_to_vector(rng.uniform(0, 360), rng.uniform(-89, 89)),
            10.0 ** (radius_exp + rng.uniform(-0.5, 0.5)),
        )
        for _ in range(count)
    ]
    for cap, batched in zip(caps, batch_cap_covers(caps, depth)):
        reference = cover(cap, depth)
        assert batched.full == reference.full
        assert batched.partial == reference.partial
