"""Parallel dispatch semantics and failure injection."""

import pytest

from repro.errors import SoapFaultError, TransportError
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import SimulatedNetwork


def echo(request):
    return HttpResponse(200, body=request.body)


def make_net():
    net = SimulatedNetwork(default_latency_s=0.1, default_bandwidth_bps=1e9)
    net.add_host("a", echo)
    net.add_host("b", echo)
    return net


class TestParallel:
    def test_parallel_clock_is_makespan(self):
        net = make_net()
        with net.parallel():
            net.request("c", HttpRequest("POST", "http://a/x"))
            net.request("c", HttpRequest("POST", "http://b/x"))
        # Each round trip ~0.2s; parallel => ~0.2s total, not 0.4s.
        assert net.clock.now == pytest.approx(0.2, abs=0.02)

    def test_sequential_clock_is_sum(self):
        net = make_net()
        net.request("c", HttpRequest("POST", "http://a/x"))
        net.request("c", HttpRequest("POST", "http://b/x"))
        assert net.clock.now == pytest.approx(0.4, abs=0.02)

    def test_parallel_metrics_unchanged(self):
        net = make_net()
        with net.parallel():
            net.request("c", HttpRequest("POST", "http://a/x", body=b"xy"))
            net.request("c", HttpRequest("POST", "http://b/x", body=b"xy"))
        assert net.metrics.message_count() == 4

    def test_parallel_slowest_link_dominates(self):
        net = make_net()
        net.set_link("c", "b", latency_s=1.0)
        with net.parallel():
            net.request("c", HttpRequest("POST", "http://a/x"))
            net.request("c", HttpRequest("POST", "http://b/x"))
        assert net.clock.now == pytest.approx(2.0, abs=0.02)

    def test_empty_parallel_block(self):
        net = make_net()
        with net.parallel():
            pass
        assert net.clock.now == 0.0

    def test_nested_requests_stay_sequential_inside_one_branch(self):
        # A handler that fans out internally: its sub-requests serialize
        # within the branch even under parallel dispatch.
        net = SimulatedNetwork(default_latency_s=0.1, default_bandwidth_bps=1e9)
        net.add_host("leaf", echo)

        def fanout(request):
            net.request("mid", HttpRequest("POST", "http://leaf/x"))
            net.request("mid", HttpRequest("POST", "http://leaf/x"))
            return HttpResponse(200)

        net.add_host("mid", fanout)
        with net.parallel():
            net.request("c", HttpRequest("POST", "http://mid/x"))
        # Branch cost: c->mid round trip (0.2) + two nested round trips (0.4).
        assert net.clock.now == pytest.approx(0.6, abs=0.05)


class TestFailureInjection:
    def test_failed_host_unreachable(self):
        net = make_net()
        net.fail_host("a")
        with pytest.raises(TransportError):
            net.request("c", HttpRequest("POST", "http://a/x"))

    def test_failed_source_cannot_send(self):
        net = make_net()
        net.fail_host("c")
        with pytest.raises(TransportError):
            net.request("c", HttpRequest("POST", "http://a/x"))

    def test_restore_host(self):
        net = make_net()
        net.fail_host("a")
        net.restore_host("a")
        assert net.request("c", HttpRequest("POST", "http://a/x")).ok
        assert not net.is_failed("a")

    def test_remove_unknown_host_raises(self):
        net = make_net()
        with pytest.raises(TransportError):
            net.remove_host("never-registered")

    def test_remove_then_rereg_roundtrip(self):
        net = make_net()
        net.remove_host("a")
        assert not net.has_host("a")
        net.add_host("a", echo)  # the name is free again
        assert net.request("c", HttpRequest("POST", "http://a/x")).ok


class TestFederationFailures:
    def test_dead_mandatory_node_degrades_instead_of_raising(
        self, small_federation
    ):
        fed = small_federation
        sql = (
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
        )
        node = fed.node("TWOMASS")
        fed.network.fail_host(node.hostname)
        try:
            result = fed.client().submit(sql)
            assert result.degraded
            assert result.rows == []
            assert any("TWOMASS" in warning for warning in result.warnings)
        finally:
            fed.network.restore_host(node.hostname)
        # Recovery: the same query works once the node is back.
        recovered = fed.client().submit(sql)
        assert len(recovered) > 0
        assert not recovered.degraded

    def test_mid_chain_failure_leaves_no_temp_tables(self, small_federation):
        fed = small_federation
        sql = (
            "SELECT O.object_id, T.obj_id, P.object_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
            "FIRST:Primary_Object P "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T, P) < 3.5"
        )
        # Kill the node that seeds the chain (FIRST has the lowest count).
        node = fed.node("FIRST")
        fed.network.fail_host(node.hostname)
        try:
            result = fed.client().submit(sql)
            assert result.degraded and result.rows == []
        finally:
            fed.network.restore_host(node.hostname)
        for other in fed.nodes.values():
            leftovers = [n for n in other.db._tables if "tmp" in n]
            assert leftovers == []

    def test_strict_portal_still_raises(self, small_federation):
        # With health probes off the seed's fail-fast contract survives.
        fed = small_federation
        sql = (
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
        )
        node = fed.node("TWOMASS")
        fed.network.fail_host(node.hostname)
        fed.portal.health_probes = False
        try:
            with pytest.raises((SoapFaultError, TransportError)):
                fed.portal.submit(sql)
        finally:
            fed.portal.health_probes = True
            fed.network.restore_host(node.hostname)

    def test_registration_of_unreachable_portal_fails(self, small_federation):
        fed = small_federation
        node = fed.node("SDSS")
        fed.network.fail_host(fed.portal.hostname)
        try:
            with pytest.raises(TransportError):
                node.register_with_portal(
                    fed.portal.service_url("registration")
                )
        finally:
            fed.network.restore_host(fed.portal.hostname)
