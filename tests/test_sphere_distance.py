"""Angular separations."""

import math

import pytest

from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import angular_separation, chord_for_angle, separation_arcsec
from repro.units import arcsec_to_rad


def test_identical_vectors():
    v = radec_to_vector(10.0, 20.0)
    assert angular_separation(v, v) == pytest.approx(0.0, abs=1e-12)


def test_orthogonal_vectors():
    a = radec_to_vector(0.0, 0.0)
    b = radec_to_vector(90.0, 0.0)
    assert angular_separation(a, b) == pytest.approx(math.pi / 2)


def test_antipodal_vectors():
    a = radec_to_vector(0.0, 0.0)
    b = radec_to_vector(180.0, 0.0)
    assert angular_separation(a, b) == pytest.approx(math.pi)


def test_tiny_separation_accuracy():
    # One milli-arcsecond apart: acos() would lose precision, atan2 must not.
    a = radec_to_vector(185.0, 0.0)
    b = radec_to_vector(185.0 + 0.001 / 3600.0, 0.0)
    assert separation_arcsec(a, b) == pytest.approx(0.001, rel=1e-6)


def test_separation_along_declination():
    a = radec_to_vector(185.0, -0.5)
    b = radec_to_vector(185.0, -0.5 + 1.0 / 3600.0)
    assert separation_arcsec(a, b) == pytest.approx(1.0, rel=1e-9)


def test_ra_separation_scales_with_cos_dec():
    # 1 arcsec of RA at dec=60 is 0.5 arcsec on the sky.
    a = radec_to_vector(10.0, 60.0)
    b = radec_to_vector(10.0 + 1.0 / 3600.0, 60.0)
    assert separation_arcsec(a, b) == pytest.approx(0.5, rel=1e-6)


def test_chord_for_angle_small():
    theta = arcsec_to_rad(10.0)
    assert chord_for_angle(theta) == pytest.approx(theta, rel=1e-6)


def test_chord_for_angle_pi():
    assert chord_for_angle(math.pi) == pytest.approx(2.0)


def test_symmetry():
    a = radec_to_vector(1.0, 2.0)
    b = radec_to_vector(3.0, 4.0)
    assert angular_separation(a, b) == pytest.approx(angular_separation(b, a))
