"""HTM point lookups."""

import random

import pytest

from repro.errors import HTMError
from repro.htm.index import HTMIndex, id_for_point, id_for_radec
from repro.htm.mesh import depth_of_id, trixel_by_id
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import random_on_sphere


def test_id_has_requested_depth():
    for depth in (0, 1, 5, 12):
        hid = id_for_radec(185.0, -0.5, depth)
        assert depth_of_id(hid) == depth


def test_point_inside_its_trixel():
    rng = random.Random(0)
    for _ in range(100):
        p = random_on_sphere(rng)
        hid = id_for_point(p, 8)
        assert trixel_by_id(hid).contains(p)


def test_nested_ids_are_prefixes():
    p = radec_to_vector(123.0, 45.0)
    deep = id_for_point(p, 10)
    shallow = id_for_point(p, 6)
    assert deep >> (2 * 4) == shallow


def test_nearby_points_share_coarse_trixel():
    a = id_for_radec(185.0, -0.5, 6)
    b = id_for_radec(185.0001, -0.5001, 6)
    assert a == b


def test_distant_points_differ():
    assert id_for_radec(0.0, 0.0, 4) != id_for_radec(180.0, 0.0, 4)


def test_depth_bounds_enforced():
    with pytest.raises(HTMError):
        id_for_point((1.0, 0.0, 0.0), -1)
    with pytest.raises(HTMError):
        id_for_point((1.0, 0.0, 0.0), 25)


def test_htm_index_object():
    index = HTMIndex(10)
    v = radec_to_vector(185.0, -0.5)
    assert index.id_for(v) == id_for_point(v, 10)
    assert index.id_for_radec(185.0, -0.5) == id_for_point(v, 10)


def test_htm_index_bad_depth():
    with pytest.raises(HTMError):
        HTMIndex(99)


def test_deterministic():
    v = radec_to_vector(271.3, -12.0)
    assert id_for_point(v, 12) == id_for_point(v, 12)
