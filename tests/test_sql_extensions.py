"""ORDER BY, BETWEEN, IS NULL, and the polygon AREA extension."""

import pytest

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import SQLSyntaxError, ValidationError
from repro.sql.area import area_from_wire, area_to_wire, is_area, region_for
from repro.sql.ast import AreaClause, IsNull, OrderItem, PolygonClause
from repro.sql.parser import parse_expression, parse_query
from repro.sql.printer import to_sql
from repro.sql.validate import validate_query


class TestParsing:
    def test_order_by_single(self):
        query = parse_query("SELECT t.a FROM T t ORDER BY t.a")
        assert query.order_by == (OrderItem(parse_expression("t.a"), False),)

    def test_order_by_desc_and_multiple(self):
        query = parse_query("SELECT t.a FROM T t ORDER BY t.a DESC, t.b ASC")
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_order_by_before_limit(self):
        query = parse_query("SELECT t.a FROM T t ORDER BY t.a LIMIT 3")
        assert query.limit == 3
        assert len(query.order_by) == 1

    def test_between_desugars(self):
        expr = parse_expression("t.a BETWEEN 1 AND 5")
        assert expr == parse_expression("t.a >= 1 AND t.a <= 5")

    def test_between_in_where(self):
        query = parse_query("SELECT t.a FROM T t WHERE t.a BETWEEN 1 AND 5 AND t.b = 2")
        assert query.where == parse_expression(
            "t.a >= 1 AND t.a <= 5 AND t.b = 2"
        )

    def test_is_null(self):
        assert parse_expression("t.a IS NULL") == IsNull(
            parse_expression("t.a"), False
        )

    def test_is_not_null(self):
        assert parse_expression("t.a IS NOT NULL") == IsNull(
            parse_expression("t.a"), True
        )

    def test_polygon_area(self):
        expr = parse_expression("AREA(POLYGON, 10.0, 10.0, 20.0, 10.0, 20.0, 20.0)")
        assert expr == PolygonClause(((10.0, 10.0), (20.0, 10.0), (20.0, 20.0)))

    def test_polygon_negative_coordinates(self):
        expr = parse_expression("AREA(POLYGON, 184.0, -1.0, 186.0, -1.0, 185.0, 0.5)")
        assert isinstance(expr, PolygonClause)
        assert expr.vertices[0] == (184.0, -1.0)

    def test_polygon_too_few_vertices(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("AREA(POLYGON, 1.0, 2.0, 3.0, 4.0)")

    def test_polygon_odd_coordinates(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("AREA(POLYGON, 1.0, 2.0, 3.0, 4.0, 5.0)")


class TestPrinting:
    def test_order_by_roundtrip(self):
        sql = "SELECT t.a FROM T t ORDER BY t.a DESC, t.b LIMIT 2"
        assert parse_query(to_sql(parse_query(sql))) == parse_query(sql)

    def test_is_null_roundtrip(self):
        for text in ("t.a IS NULL", "t.a IS NOT NULL"):
            assert parse_expression(to_sql(parse_expression(text))) == \
                parse_expression(text)

    def test_polygon_roundtrip(self):
        text = "AREA(POLYGON, 10.0, 10.0, 20.0, 10.0, 20.0, 20.0)"
        assert parse_expression(to_sql(parse_expression(text))) == \
            parse_expression(text)


class TestAreaHelpers:
    def test_is_area(self):
        assert is_area(AreaClause(1.0, 2.0, 3.0))
        assert is_area(PolygonClause(((0.0, 0.0), (1.0, 0.0), (1.0, 1.0))))
        assert not is_area(parse_expression("1 + 1"))

    def test_region_for_circle(self):
        from repro.sphere.regions import Cap

        region = region_for(AreaClause(185.0, -0.5, 4.5))
        assert isinstance(region, Cap)

    def test_region_for_polygon(self):
        from repro.sphere.regions import ConvexPolygon

        region = region_for(
            PolygonClause(((10.0, 10.0), (20.0, 10.0), (20.0, 20.0)))
        )
        assert isinstance(region, ConvexPolygon)

    def test_wire_roundtrip_circle(self):
        clause = AreaClause(185.0, -0.5, 4.5)
        assert area_from_wire(area_to_wire(clause)) == clause

    def test_wire_roundtrip_polygon(self):
        clause = PolygonClause(((10.0, 10.0), (20.0, 10.0), (20.0, 20.0)))
        assert area_from_wire(area_to_wire(clause)) == clause

    def test_wire_none(self):
        assert area_to_wire(None) is None
        assert area_from_wire(None) is None


@pytest.fixture()
def db():
    database = Database("t", page_size=8)
    database.create_table(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
            Column("flux", ColumnType.FLOAT),
        ],
        spatial=SpatialSpec("ra", "dec", htm_depth=10),
    )
    database.insert(
        "objects",
        [
            (1, 15.0, 15.0, 5.0),
            (2, 15.1, 15.1, None),
            (3, 15.2, 15.2, 1.0),
            (4, 30.0, 30.0, 9.0),
            (5, 15.3, 14.9, 3.0),
        ],
    )
    return database


class TestEngineExtensions:
    def test_order_by_asc(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o WHERE o.flux IS NOT NULL "
            "ORDER BY o.flux"
        )
        assert [r[0] for r in result.rows] == [3, 5, 1, 4]

    def test_order_by_desc(self, db):
        result = db.execute("SELECT o.object_id FROM objects o ORDER BY o.flux DESC")
        # NULLs first ascending => last descending.
        assert [r[0] for r in result.rows] == [4, 1, 5, 3, 2]

    def test_order_by_with_limit(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o ORDER BY o.flux DESC LIMIT 2"
        )
        assert [r[0] for r in result.rows] == [4, 1]

    def test_order_by_expression(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o WHERE o.flux IS NOT NULL "
            "ORDER BY 0 - o.flux"
        )
        assert [r[0] for r in result.rows] == [4, 1, 5, 3]

    def test_is_null_predicate(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o WHERE o.flux IS NULL"
        )
        assert [r[0] for r in result.rows] == [2]

    def test_is_not_null_predicate(self, db):
        result = db.execute(
            "SELECT count(*) FROM objects o WHERE o.flux IS NOT NULL"
        )
        assert result.scalar() == 4

    def test_between_predicate(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o WHERE o.flux BETWEEN 1 AND 5 "
            "ORDER BY o.object_id"
        )
        assert [r[0] for r in result.rows] == [1, 3, 5]

    def test_polygon_area_query(self, db):
        result = db.execute(
            "SELECT o.object_id FROM objects o "
            "WHERE AREA(POLYGON, 14.0, 14.0, 16.0, 14.0, 16.0, 16.0, 14.0, 16.0) "
            "ORDER BY o.object_id"
        )
        assert [r[0] for r in result.rows] == [1, 2, 3, 5]

    def test_polygon_excludes_outside(self, db):
        result = db.execute(
            "SELECT count(*) FROM objects o "
            "WHERE AREA(POLYGON, 14.0, 14.0, 16.0, 14.0, 16.0, 16.0, 14.0, 16.0)"
        )
        assert result.scalar() == 4  # object 4 at (30, 30) excluded


class TestValidateExtensions:
    def test_polygon_counts_as_area(self):
        query = parse_query(
            "SELECT a.x FROM S:T1 a, W:T2 b "
            "WHERE AREA(POLYGON, 1.0, 1.0, 2.0, 1.0, 2.0, 2.0) "
            "AND XMATCH(a, b) < 3.5"
        )
        analysis = validate_query(query)
        assert isinstance(analysis.area, PolygonClause)

    def test_circle_plus_polygon_rejected(self):
        query = parse_query(
            "SELECT a.x FROM S:T1 a, W:T2 b "
            "WHERE AREA(1.0, 2.0, 3.0) "
            "AND AREA(POLYGON, 1.0, 1.0, 2.0, 1.0, 2.0, 2.0) "
            "AND XMATCH(a, b) < 3.5"
        )
        with pytest.raises(ValidationError):
            validate_query(query)

    def test_order_by_unknown_alias_rejected(self):
        query = parse_query("SELECT t.a FROM S:T1 t ORDER BY z.b")
        with pytest.raises(ValidationError):
            validate_query(query)

    def test_order_by_spatial_rejected(self):
        query = parse_query(
            "SELECT t.a FROM S:T1 t ORDER BY AREA(1.0, 2.0, 3.0)"
        )
        with pytest.raises(ValidationError):
            validate_query(query)


class TestFederatedExtensions:
    def test_polygon_area_federated(self, small_federation):
        # A triangle around the field center, compared to a brute-force
        # in-polygon filter of the circular-area result.
        poly_sql = (
            "SELECT O.object_id, O.ra, O.dec, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(POLYGON, 184.9, -0.6, 185.1, -0.6, 185.0, -0.4) "
            "AND XMATCH(O, T) < 3.5"
        )
        result = small_federation.client().submit(poly_sql)
        assert len(result) > 0
        from repro.sphere.coords import radec_to_vector
        from repro.sphere.regions import ConvexPolygon

        polygon = ConvexPolygon.from_radec(
            [(184.9, -0.6), (185.1, -0.6), (185.0, -0.4)]
        )
        for row in result.rows:
            assert polygon.contains(radec_to_vector(row[1], row[2]))

    def test_federated_order_by(self, small_federation):
        sql = (
            "SELECT O.object_id, O.i_flux "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5 "
            "ORDER BY O.i_flux DESC LIMIT 5"
        )
        result = small_federation.client().submit(sql)
        fluxes = [row[1] for row in result.rows]
        assert fluxes == sorted(fluxes, reverse=True)
        assert len(result) == 5

    def test_federated_order_by_cross_archive_expr(self, small_federation):
        sql = (
            "SELECT O.object_id, O.i_flux - T.i_flux AS color "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5 "
            "ORDER BY O.i_flux - T.i_flux"
        )
        result = small_federation.client().submit(sql)
        colors = [row[1] for row in result.rows]
        assert colors == sorted(colors)
