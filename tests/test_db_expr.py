"""Expression evaluation semantics."""

import pytest

from repro.db.expr import RowContext, evaluate, is_true
from repro.errors import QueryError
from repro.sql.parser import parse_expression


def ctx(**values):
    context = RowContext({"GALAXY": "GALAXY", "STAR": "STAR"})
    for key, value in values.items():
        context.bind("O", key, value)
    return context


def ev(text, **values):
    return evaluate(parse_expression(text), ctx(**values))


def test_arithmetic():
    assert ev("1 + 2 * 3") == 7
    assert ev("(1 + 2) * 3") == 9
    assert ev("10 / 4") == 2.5
    assert ev("-5 + 3") == -2


def test_column_lookup_bare_and_qualified():
    assert ev("flux", flux=12.5) == 12.5
    assert ev("O.flux", flux=12.5) == 12.5


def test_unknown_column_raises():
    with pytest.raises(QueryError):
        ev("nope")


def test_unknown_qualifier_raises():
    with pytest.raises(QueryError):
        evaluate(parse_expression("T.flux"), ctx(flux=1.0))


def test_named_constants():
    assert ev("GALAXY") == "GALAXY"
    assert ev("type = GALAXY", type="GALAXY") is True
    assert ev("type = GALAXY", type="STAR") is False


def test_column_shadows_constant():
    context = RowContext({"galaxy": "CONST"})
    context.bind("O", "galaxy", "COLUMN")
    from repro.sql.ast import ColumnRef

    assert context.lookup(ColumnRef(None, "galaxy")) == "COLUMN"


def test_comparisons():
    assert ev("3 < 4") is True
    assert ev("3 >= 4") is False
    assert ev("3 <> 4") is True
    assert ev("'a' = 'a'") is True
    assert ev("'a' < 'b'") is True


def test_comparison_type_mismatch():
    with pytest.raises(QueryError):
        ev("'a' = 1")


def test_int_float_compare():
    assert ev("1 = 1.0") is True
    assert ev("2 > 1.5") is True


def test_null_propagation_in_arithmetic():
    assert ev("flux + 1", flux=None) is None


def test_null_comparisons_are_false():
    assert ev("flux > 1", flux=None) is False
    assert ev("flux = flux", flux=None) is False


def test_and_or_short_circuit():
    assert ev("1 < 2 AND 3 < 4") is True
    assert ev("1 > 2 AND nope = 1") is False  # right side never evaluated
    assert ev("1 < 2 OR nope = 1") is True


def test_not():
    assert ev("NOT 1 > 2") is True
    assert ev("NOT (1 < 2)") is False


def test_not_non_boolean_raises():
    with pytest.raises(QueryError):
        ev("NOT 5")


def test_unary_minus_non_number_raises():
    with pytest.raises(QueryError):
        ev("-'a'")


def test_division_by_zero():
    with pytest.raises(QueryError):
        ev("1 / 0")


def test_abs_function():
    assert ev("ABS(0 - 5)") == 5
    assert ev("ABS(flux)", flux=None) is None


def test_unknown_function():
    with pytest.raises(QueryError):
        ev("FOO(1)")


def test_is_true():
    assert is_true(True)
    assert not is_true(False)
    assert not is_true(None)
    assert not is_true(1)


def test_area_clause_not_evaluable():
    with pytest.raises(QueryError):
        ev("AREA(1.0, 2.0, 3.0)")
