"""The simulated network."""

import pytest

from repro.errors import TransportError
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.network import Link, SimClock, SimulatedNetwork


def echo_handler(request):
    return HttpResponse(200, body=request.body)


def test_clock_advances_monotonically():
    clock = SimClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == pytest.approx(2.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_link_transfer_time():
    link = Link(latency_s=0.1, bandwidth_bps=1000.0)
    assert link.transfer_time(500) == pytest.approx(0.1 + 0.5)


def test_request_response_delivery():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    response = net.request("client", HttpRequest("POST", "http://h/x", body=b"ping"))
    assert response.body == b"ping"


def test_unknown_host_raises():
    net = SimulatedNetwork()
    with pytest.raises(TransportError):
        net.request("client", HttpRequest("POST", "http://nowhere/x"))


def test_duplicate_host_rejected():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    with pytest.raises(TransportError):
        net.add_host("h", echo_handler)


def test_remove_host():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    net.remove_host("h")
    assert not net.has_host("h")


def test_clock_charged_both_directions():
    net = SimulatedNetwork(default_latency_s=0.1, default_bandwidth_bps=1e9)
    net.add_host("h", echo_handler)
    net.request("client", HttpRequest("POST", "http://h/x", body=b"hi"))
    assert net.clock.now == pytest.approx(0.2, abs=0.01)


def test_link_override():
    net = SimulatedNetwork(default_latency_s=0.0, default_bandwidth_bps=1e9)
    net.set_link("client", "h", latency_s=1.0)
    net.add_host("h", echo_handler)
    net.request("client", HttpRequest("POST", "http://h/x"))
    assert net.clock.now >= 2.0  # both directions use the symmetric link


def test_asymmetric_link():
    net = SimulatedNetwork()
    net.set_link("a", "b", latency_s=9.0, symmetric=False)
    assert net.link("a", "b").latency_s == 9.0
    assert net.link("b", "a").latency_s == net._default_link.latency_s


def test_metrics_recorded():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    net.request("client", HttpRequest("POST", "http://h/x", body=b"abc"),
                operation="Op")
    assert net.metrics.message_count() == 2
    kinds = [m.kind for m in net.metrics.messages]
    assert kinds == ["request", "response"]
    assert all(m.operation == "Op" for m in net.metrics.messages)


def test_phase_tagging():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    with net.phase("alpha"):
        net.request("client", HttpRequest("POST", "http://h/x"))
        with net.phase("beta"):
            net.request("client", HttpRequest("POST", "http://h/x"))
    net.request("client", HttpRequest("POST", "http://h/x"))
    by_phase = net.metrics.bytes_by_phase()
    assert set(by_phase) == {"alpha", "beta", "unspecified"}
    assert net.metrics.message_count(phase="alpha") == 2
    assert net.metrics.message_count(phase="beta") == 2


def test_bytes_by_link():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    net.request("client", HttpRequest("POST", "http://h/x", body=b"abc"))
    by_link = net.metrics.bytes_by_link()
    assert ("client", "h") in by_link
    assert ("h", "client") in by_link


def test_total_bytes_filters():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    with net.phase("p"):
        net.request("client", HttpRequest("POST", "http://h/x"))
    assert net.metrics.total_bytes(phase="p") == net.metrics.total_bytes()
    assert net.metrics.total_bytes(phase="other") == 0
    assert net.metrics.total_bytes(src="client") > 0
    assert net.metrics.total_bytes(src="nope") == 0


def test_metrics_reset():
    net = SimulatedNetwork()
    net.add_host("h", echo_handler)
    net.request("client", HttpRequest("POST", "http://h/x"))
    net.metrics.reset()
    assert net.metrics.message_count() == 0
    assert net.metrics.simulated_seconds == 0.0


def test_hostnames_sorted():
    net = SimulatedNetwork()
    net.add_host("b", echo_handler)
    net.add_host("a", echo_handler)
    assert net.hostnames() == ["a", "b"]
