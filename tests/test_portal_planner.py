"""Performance queries and plan ordering."""

import pytest

from repro.portal.decompose import decompose
from repro.portal.planner import OrderingStrategy
from repro.sql.parser import parse_query


@pytest.fixture()
def decomposed(small_federation):
    query = parse_query(
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
        "FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
        "AND O.type = GALAXY"
    )
    return decompose(query, small_federation.portal.catalog)


def test_performance_counts_match_direct_queries(small_federation, decomposed):
    portal = small_federation.portal
    counts = portal.planner.performance_counts(decomposed)
    assert set(counts) == {"O", "T", "P"}
    for alias, count in counts.items():
        subquery = decomposed.subqueries[alias]
        node = small_federation.node(subquery.archive)
        direct = node.db.execute(subquery.perf_sql).scalar()
        assert count == direct


def test_performance_queries_tagged_phase(small_federation, decomposed):
    portal = small_federation.portal
    small_federation.network.metrics.reset()
    portal.planner.performance_counts(decomposed)
    metrics = small_federation.network.metrics
    assert metrics.message_count(phase="performance-query") == 6  # 3 round trips


def test_count_desc_ordering(small_federation, decomposed):
    portal = small_federation.portal
    counts = {"O": 100, "T": 300, "P": 20}
    plan = portal.planner.build_plan(decomposed, counts)
    assert [s.alias for s in plan.steps] == ["T", "O", "P"]
    assert [s.count_star for s in plan.steps] == [300, 100, 20]


def test_count_asc_ordering(small_federation, decomposed):
    portal = small_federation.portal
    counts = {"O": 100, "T": 300, "P": 20}
    plan = portal.planner.build_plan(
        decomposed, counts, strategy=OrderingStrategy.COUNT_ASC
    )
    assert [s.alias for s in plan.steps] == ["P", "O", "T"]


def test_as_written_ordering(small_federation, decomposed):
    portal = small_federation.portal
    counts = {"O": 1, "T": 2, "P": 3}
    plan = portal.planner.build_plan(
        decomposed, counts, strategy=OrderingStrategy.AS_WRITTEN
    )
    assert [s.alias for s in plan.steps] == ["O", "T", "P"]


def test_random_ordering_deterministic_by_seed(small_federation, decomposed):
    portal = small_federation.portal
    counts = {"O": 1, "T": 2, "P": 3}
    plan_a = portal.planner.build_plan(
        decomposed, counts, strategy=OrderingStrategy.RANDOM, random_seed=5
    )
    plan_b = portal.planner.build_plan(
        decomposed, counts, strategy=OrderingStrategy.RANDOM, random_seed=5
    )
    assert [s.alias for s in plan_a.steps] == [s.alias for s in plan_b.steps]


def test_dropouts_at_beginning(small_federation):
    query = parse_query(
        "SELECT O.object_id FROM SDSS:Photo_Object O, "
        "TWOMASS:Photo_Primary T, FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
    )
    portal = small_federation.portal
    decomposed = decompose(query, portal.catalog)
    counts = portal.planner.performance_counts(decomposed)
    assert "P" not in counts  # no performance query for drop-outs
    plan = portal.planner.build_plan(decomposed, counts)
    assert plan.steps[0].alias == "P"
    assert plan.steps[0].dropout
    assert plan.steps[0].count_star is None


def test_missing_counts_rejected(small_federation, decomposed):
    from repro.errors import PlanningError

    with pytest.raises(PlanningError):
        small_federation.portal.planner.build_plan(decomposed, {"O": 1})


def test_plan_steps_carry_node_info(small_federation, decomposed):
    portal = small_federation.portal
    counts = portal.planner.performance_counts(decomposed)
    plan = portal.planner.build_plan(decomposed, counts)
    by_alias = {s.alias: s for s in plan.steps}
    assert by_alias["O"].sigma_arcsec == pytest.approx(0.1)
    assert by_alias["T"].ra_column == "ra_deg"
    assert by_alias["T"].id_column == "obj_id"
    assert by_alias["O"].url.endswith("/crossmatch")
    assert by_alias["O"].residual_sql == "O.type = GALAXY"


def test_scalar_count_rejects_bool(small_federation, decomposed):
    from repro.errors import PlanningError
    from repro.portal.planner import Planner
    from repro.soap.encoding import WireRowSet

    subquery = decomposed.subqueries["O"]
    rowset = WireRowSet(columns=[("c", "boolean")], rows=[(True,)])
    with pytest.raises(PlanningError):
        Planner._scalar_count(rowset, subquery)


def test_scalar_count_accepts_numpy_integers(small_federation, decomposed):
    import numpy as np

    from repro.portal.planner import Planner
    from repro.soap.encoding import WireRowSet

    subquery = decomposed.subqueries["O"]
    rowset = WireRowSet(columns=[("c", "int")], rows=[(np.int64(42),)])
    count = Planner._scalar_count(rowset, subquery)
    assert count == 42 and type(count) is int


def test_scalar_count_rejects_non_integral(small_federation, decomposed):
    from repro.errors import PlanningError
    from repro.portal.planner import Planner
    from repro.soap.encoding import WireRowSet

    subquery = decomposed.subqueries["O"]
    for value in (3.5, "7", None):
        rowset = WireRowSet(columns=[("c", "string")], rows=[(value,)])
        with pytest.raises(PlanningError):
            Planner._scalar_count(rowset, subquery)
