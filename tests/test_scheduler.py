"""The multi-tenant query scheduler: admission, fairness, backpressure."""

import pytest

from repro.bench.scenarios import fresh_federation, paper_query, zipf_workload
from repro.errors import SchedulerOverloadError
from repro.portal.scheduler import QueryScheduler, SchedulerConfig

SMALL = 140


def _fed(**kwargs):
    kwargs.setdefault("n_bodies", SMALL)
    return fresh_federation(**kwargs)


def test_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(max_inflight=0)
    with pytest.raises(ValueError):
        SchedulerConfig(quantum=0.0)
    with pytest.raises(ValueError):
        SchedulerConfig(max_queue=0)
    with pytest.raises(ValueError):
        SchedulerConfig(weights={"t": -1.0})


def test_builder_wires_scheduler_and_rejects_junk():
    from repro.errors import ConfigurationError
    from repro.federation.builder import FederationConfig, build_federation
    from repro.workloads.skysim import SkyField

    fed = _fed(scheduler=True)
    assert isinstance(fed.scheduler, QueryScheduler)
    assert fed.scheduler is fed.portal.scheduler
    with pytest.raises(ConfigurationError):
        build_federation(
            FederationConfig(
                n_bodies=10, sky_field=SkyField(185.0, -0.5, 900.0),
                scheduler="yes please",
            )
        )


def test_admission_cap_bounds_every_wave():
    fed = _fed(scheduler=SchedulerConfig(max_inflight=2))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for i in range(5):
        scheduler.enqueue(sql, tenant=f"t{i}")
    outcomes = scheduler.drain()
    assert len(outcomes) == 5
    assert scheduler.stats.waves == 3  # ceil(5 / 2)
    by_wave = {}
    for outcome in outcomes:
        by_wave.setdefault(outcome.wave, []).append(outcome)
    assert all(len(members) <= 2 for members in by_wave.values())
    assert all(o.result is not None for o in outcomes)


def test_drr_fairness_no_starvation():
    """A bursting tenant cannot push a one-query tenant out of wave 1."""
    fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for _ in range(8):
        scheduler.enqueue(sql, tenant="whale")
    scheduler.enqueue(sql, tenant="minnow")
    outcomes = scheduler.drain()
    minnow = next(o for o in outcomes if o.job.tenant == "minnow")
    assert minnow.wave == 1
    # Round-robin: the whale gets the remaining wave-1 slots, not all 3.
    wave1 = [o for o in outcomes if o.wave == 1]
    assert sum(1 for o in wave1 if o.job.tenant == "whale") == 2


def test_weights_tilt_admission():
    fed = _fed(
        scheduler=SchedulerConfig(max_inflight=3, weights={"gold": 2.0})
    )
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for _ in range(4):
        scheduler.enqueue(sql, tenant="gold")
        scheduler.enqueue(sql, tenant="basic")
    outcomes = scheduler.drain()
    wave1 = [o.job.tenant for o in outcomes if o.wave == 1]
    # One DRR visit grants gold 2 credits, basic 1: wave 1 is 2+1.
    assert sorted(wave1) == ["basic", "gold", "gold"]


def test_backpressure_sheds_with_structured_error():
    fed = _fed(scheduler=SchedulerConfig(max_queue=2))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    scheduler.enqueue(sql)
    scheduler.enqueue(sql)
    with pytest.raises(SchedulerOverloadError) as excinfo:
        scheduler.enqueue(sql)
    assert excinfo.value.queued == 2
    assert excinfo.value.limit == 2
    assert scheduler.stats.rejected == 1
    assert len(scheduler.drain()) == 2
    # run() surfaces shed jobs as outcomes instead of raising mid-batch.
    outcomes = scheduler.run([{"sql": sql}, {"sql": sql}, {"sql": sql}])
    shed = [o for o in outcomes if isinstance(o.error, SchedulerOverloadError)]
    assert len(shed) == 1
    assert sum(1 for o in outcomes if o.result is not None) == 2


def test_bad_job_fails_alone_not_the_wave():
    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    outcomes = scheduler.run([
        {"sql": paper_query(700.0), "tenant": "a"},
        {"sql": "SELECT nope FROM Nowhere:objects X WHERE XMATCH(X) < 1",
         "tenant": "b"},
        {"sql": paper_query(700.0), "tenant": "c"},
    ])
    assert [o.error is None for o in outcomes] == [True, False, True]
    assert scheduler.stats.completed == 2
    assert scheduler.stats.failed == 1
    good = [o for o in outcomes if o.result is not None]
    assert good[0].result.rows == good[1].result.rows


def test_concurrent_waves_beat_serial_makespan():
    jobs = zipf_workload(6, 3, seed=3, tenants=("a", "b"))
    serial = _fed()
    t0 = serial.network.clock.now
    for job in jobs:
        serial.portal.submit(job["sql"])
    serial_makespan = serial.network.clock.now - t0

    fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
    t0 = fed.network.clock.now
    outcomes = fed.scheduler.run(jobs)
    makespan = fed.network.clock.now - t0

    assert all(o.result is not None for o in outcomes)
    assert makespan < serial_makespan
    # Latency accounting: service within the wave, wait before it.
    for outcome in outcomes:
        assert outcome.latency_s == pytest.approx(
            outcome.wait_s + outcome.service_s
        )
        assert outcome.finished_s <= fed.network.clock.now + 1e-9
    wave2 = [o for o in outcomes if o.wave == 2]
    assert all(o.wait_s > 0 for o in wave2)


def test_interleaving_never_changes_answers():
    """Each scheduled job's result equals the same query run alone."""
    jobs = zipf_workload(6, 3, seed=5, tenants=("a", "b", "c"))
    fed = _fed(scheduler=SchedulerConfig(max_inflight=4))
    outcomes = fed.scheduler.run(jobs)
    alone = _fed(seed=1234)
    for outcome in outcomes:
        fresh = alone.portal.submit(outcome.job.sql)
        assert outcome.result == fresh


def test_determinism_across_twin_federations():
    jobs = zipf_workload(6, 3, seed=9, tenants=("a", "b"))
    runs = []
    for _ in range(2):
        fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
        outcomes = fed.scheduler.run([dict(job) for job in jobs])
        runs.append([
            (o.wave, o.latency_s, o.finished_s, o.job.tenant,
             tuple(map(tuple, o.result.rows)))
            for o in outcomes
        ])
    assert runs[0] == runs[1]


def test_wave_spans_and_admission_annotations():
    fed = _fed(scheduler=SchedulerConfig(max_inflight=2))
    tracer = fed.tracer
    assert tracer is not None
    tracer.reset()
    fed.scheduler.run([
        {"sql": paper_query(700.0), "tenant": "a"},
        {"sql": paper_query(800.0), "tenant": "b"},
        {"sql": paper_query(900.0), "tenant": "c"},
    ])
    waves = [
        span
        for trace in tracer.traces()
        for span in trace
        if span.name == "scheduler-wave"
    ]
    assert len(waves) == 2
    events = [e for span in waves for e in span.events("admission")]
    assert [e["wave"] for e in events] == [1, 2]
    assert events[0]["admitted"] == 2 and events[0]["backlog"] == 1
    assert events[1]["admitted"] == 1 and events[1]["backlog"] == 0


def test_enqueue_rejects_nonpositive_cost():
    fed = _fed(scheduler=True)
    with pytest.raises(ValueError):
        fed.scheduler.enqueue(paper_query(700.0), cost=0.0)
