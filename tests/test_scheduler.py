"""The multi-tenant query scheduler: admission, fairness, backpressure."""

import pytest

from repro.bench.scenarios import fresh_federation, paper_query, zipf_workload
from repro.errors import SchedulerOverloadError
from repro.portal.scheduler import QueryScheduler, SchedulerConfig

SMALL = 140


def _fed(**kwargs):
    kwargs.setdefault("n_bodies", SMALL)
    return fresh_federation(**kwargs)


def test_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(max_inflight=0)
    with pytest.raises(ValueError):
        SchedulerConfig(quantum=0.0)
    with pytest.raises(ValueError):
        SchedulerConfig(max_queue=0)
    with pytest.raises(ValueError):
        SchedulerConfig(weights={"t": -1.0})


def test_builder_wires_scheduler_and_rejects_junk():
    from repro.errors import ConfigurationError
    from repro.federation.builder import FederationConfig, build_federation
    from repro.workloads.skysim import SkyField

    fed = _fed(scheduler=True)
    assert isinstance(fed.scheduler, QueryScheduler)
    assert fed.scheduler is fed.portal.scheduler
    with pytest.raises(ConfigurationError):
        build_federation(
            FederationConfig(
                n_bodies=10, sky_field=SkyField(185.0, -0.5, 900.0),
                scheduler="yes please",
            )
        )


def test_admission_cap_bounds_every_wave():
    fed = _fed(scheduler=SchedulerConfig(max_inflight=2))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for i in range(5):
        scheduler.enqueue(sql, tenant=f"t{i}")
    outcomes = scheduler.drain()
    assert len(outcomes) == 5
    assert scheduler.stats.waves == 3  # ceil(5 / 2)
    by_wave = {}
    for outcome in outcomes:
        by_wave.setdefault(outcome.wave, []).append(outcome)
    assert all(len(members) <= 2 for members in by_wave.values())
    assert all(o.result is not None for o in outcomes)


def test_drr_fairness_no_starvation():
    """A bursting tenant cannot push a one-query tenant out of wave 1."""
    fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for _ in range(8):
        scheduler.enqueue(sql, tenant="whale")
    scheduler.enqueue(sql, tenant="minnow")
    outcomes = scheduler.drain()
    minnow = next(o for o in outcomes if o.job.tenant == "minnow")
    assert minnow.wave == 1
    # Round-robin: the whale gets the remaining wave-1 slots, not all 3.
    wave1 = [o for o in outcomes if o.wave == 1]
    assert sum(1 for o in wave1 if o.job.tenant == "whale") == 2


def test_weights_tilt_admission():
    fed = _fed(
        scheduler=SchedulerConfig(max_inflight=3, weights={"gold": 2.0})
    )
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    for _ in range(4):
        scheduler.enqueue(sql, tenant="gold")
        scheduler.enqueue(sql, tenant="basic")
    outcomes = scheduler.drain()
    wave1 = [o.job.tenant for o in outcomes if o.wave == 1]
    # One DRR visit grants gold 2 credits, basic 1: wave 1 is 2+1.
    assert sorted(wave1) == ["basic", "gold", "gold"]


def test_backpressure_sheds_with_structured_error():
    fed = _fed(scheduler=SchedulerConfig(max_queue=2))
    scheduler = fed.scheduler
    sql = paper_query(700.0)
    scheduler.enqueue(sql)
    scheduler.enqueue(sql)
    with pytest.raises(SchedulerOverloadError) as excinfo:
        scheduler.enqueue(sql)
    assert excinfo.value.queued == 2
    assert excinfo.value.limit == 2
    assert scheduler.stats.rejected == 1
    assert len(scheduler.drain()) == 2
    # run() surfaces shed jobs as outcomes instead of raising mid-batch.
    outcomes = scheduler.run([{"sql": sql}, {"sql": sql}, {"sql": sql}])
    shed = [o for o in outcomes if isinstance(o.error, SchedulerOverloadError)]
    assert len(shed) == 1
    assert sum(1 for o in outcomes if o.result is not None) == 2


def test_bad_job_fails_alone_not_the_wave():
    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    outcomes = scheduler.run([
        {"sql": paper_query(700.0), "tenant": "a"},
        {"sql": "SELECT nope FROM Nowhere:objects X WHERE XMATCH(X) < 1",
         "tenant": "b"},
        {"sql": paper_query(700.0), "tenant": "c"},
    ])
    assert [o.error is None for o in outcomes] == [True, False, True]
    assert scheduler.stats.completed == 2
    assert scheduler.stats.failed == 1
    good = [o for o in outcomes if o.result is not None]
    assert good[0].result.rows == good[1].result.rows


def test_concurrent_waves_beat_serial_makespan():
    jobs = zipf_workload(6, 3, seed=3, tenants=("a", "b"))
    serial = _fed()
    t0 = serial.network.clock.now
    for job in jobs:
        serial.portal.submit(job["sql"])
    serial_makespan = serial.network.clock.now - t0

    fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
    t0 = fed.network.clock.now
    outcomes = fed.scheduler.run(jobs)
    makespan = fed.network.clock.now - t0

    assert all(o.result is not None for o in outcomes)
    assert makespan < serial_makespan
    # Latency accounting: service within the wave, wait before it.
    for outcome in outcomes:
        assert outcome.latency_s == pytest.approx(
            outcome.wait_s + outcome.service_s
        )
        assert outcome.finished_s <= fed.network.clock.now + 1e-9
    wave2 = [o for o in outcomes if o.wave == 2]
    assert all(o.wait_s > 0 for o in wave2)


def test_interleaving_never_changes_answers():
    """Each scheduled job's result equals the same query run alone."""
    jobs = zipf_workload(6, 3, seed=5, tenants=("a", "b", "c"))
    fed = _fed(scheduler=SchedulerConfig(max_inflight=4))
    outcomes = fed.scheduler.run(jobs)
    alone = _fed(seed=1234)
    for outcome in outcomes:
        fresh = alone.portal.submit(outcome.job.sql)
        assert outcome.result == fresh


def test_determinism_across_twin_federations():
    jobs = zipf_workload(6, 3, seed=9, tenants=("a", "b"))
    runs = []
    for _ in range(2):
        fed = _fed(scheduler=SchedulerConfig(max_inflight=3))
        outcomes = fed.scheduler.run([dict(job) for job in jobs])
        runs.append([
            (o.wave, o.latency_s, o.finished_s, o.job.tenant,
             tuple(map(tuple, o.result.rows)))
            for o in outcomes
        ])
    assert runs[0] == runs[1]


def test_wave_spans_and_admission_annotations():
    fed = _fed(scheduler=SchedulerConfig(max_inflight=2))
    tracer = fed.tracer
    assert tracer is not None
    tracer.reset()
    fed.scheduler.run([
        {"sql": paper_query(700.0), "tenant": "a"},
        {"sql": paper_query(800.0), "tenant": "b"},
        {"sql": paper_query(900.0), "tenant": "c"},
    ])
    waves = [
        span
        for trace in tracer.traces()
        for span in trace
        if span.name == "scheduler-wave"
    ]
    assert len(waves) == 2
    events = [e for span in waves for e in span.events("admission")]
    assert [e["wave"] for e in events] == [1, 2]
    assert events[0]["admitted"] == 2 and events[0]["backlog"] == 1
    assert events[1]["admitted"] == 1 and events[1]["backlog"] == 0


def test_enqueue_rejects_nonpositive_cost():
    fed = _fed(scheduler=True)
    with pytest.raises(ValueError):
        fed.scheduler.enqueue(paper_query(700.0), cost=0.0)


# -- deadlines, shedding, and graceful drain ------------------------------------


def test_expired_job_shed_at_admission_without_dispatch():
    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    served_before = fed.portal.queries_served
    scheduler.enqueue(
        paper_query(700.0),
        tenant="late",
        deadline_s=fed.network.clock.now - 1.0,
    )
    outcomes = scheduler.drain()
    assert len(outcomes) == 1
    from repro.errors import DeadlineExceededError

    assert isinstance(outcomes[0].error, DeadlineExceededError)
    assert outcomes[0].result is None
    assert scheduler.stats.expired == 1
    # Shed before dispatch: the portal never saw the query.
    assert fed.portal.queries_served == served_before


def test_queue_wait_can_spend_the_whole_budget():
    """A job whose deadline passes while it waits behind earlier waves is
    shed when its turn comes, not dispatched to fail downstream."""
    from repro.errors import DeadlineExceededError

    fed = _fed(scheduler=SchedulerConfig(max_inflight=1))
    scheduler = fed.scheduler
    scheduler.enqueue(paper_query(900.0), tenant="first")
    # Generous enough to be admitted now, hopeless after wave 1 runs.
    scheduler.enqueue(
        paper_query(700.0),
        tenant="second",
        deadline_s=fed.network.clock.now + 1e-6,
    )
    outcomes = scheduler.drain()
    first = next(o for o in outcomes if o.job.tenant == "first")
    second = next(o for o in outcomes if o.job.tenant == "second")
    assert first.result is not None and first.error is None
    assert isinstance(second.error, DeadlineExceededError)
    assert "queued" in str(second.error)
    assert scheduler.stats.expired == 1


def test_predictive_shed_when_budget_below_average_service():
    from repro.errors import DeadlineExceededError

    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    scheduler.run([{"sql": paper_query(700.0)}])  # seed the service window
    average = scheduler.avg_service_s()
    assert average > 0
    scheduler.enqueue(
        paper_query(700.0),
        deadline_s=fed.network.clock.now + average / 10.0,
    )
    outcomes = scheduler.drain()
    assert isinstance(outcomes[0].error, DeadlineExceededError)
    assert scheduler.stats.expired == 1


def test_retry_after_grows_with_backlog():
    fed = _fed(scheduler=SchedulerConfig(max_inflight=2))
    scheduler = fed.scheduler
    assert scheduler.retry_after_s() == 0.0  # no history yet
    scheduler.run([{"sql": paper_query(700.0)}, {"sql": paper_query(800.0)}])
    shallow = scheduler.retry_after_s(backlog=1)
    deep = scheduler.retry_after_s(backlog=10)
    assert 0.0 < shallow < deep
    # The estimate is wave-count times observed service, not a constant.
    assert deep == pytest.approx(
        (10 // 2 + 1) * scheduler.avg_service_s()
    )


def test_overload_error_carries_retry_after():
    fed = _fed(scheduler=SchedulerConfig(max_queue=1))
    scheduler = fed.scheduler
    scheduler.run([{"sql": paper_query(700.0)}])  # seed service samples
    scheduler.enqueue(paper_query(700.0))
    with pytest.raises(SchedulerOverloadError) as excinfo:
        scheduler.enqueue(paper_query(800.0))
    assert excinfo.value.retry_after_s > 0.0
    assert "retry" in str(excinfo.value)


def test_drain_stop_admission_refuses_new_work():
    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    scheduler.drain(stop_admission=True)
    assert scheduler.draining
    with pytest.raises(SchedulerOverloadError) as excinfo:
        scheduler.enqueue(paper_query(700.0))
    assert "draining" in str(excinfo.value)


def test_drain_cancel_queued_returns_cancelled_outcomes():
    from repro.errors import QueryCancelledError

    fed = _fed(scheduler=True)
    scheduler = fed.scheduler
    served_before = fed.portal.queries_served
    for tenant in ("a", "b", "c"):
        scheduler.enqueue(paper_query(700.0), tenant=tenant)
    outcomes = scheduler.drain(stop_admission=True, cancel_queued=True)
    assert len(outcomes) == 3
    assert all(isinstance(o.error, QueryCancelledError) for o in outcomes)
    assert all(o.result is None for o in outcomes)
    assert scheduler.stats.cancelled == 3
    assert fed.portal.queries_served == served_before
    # Idempotent: a second drain finds nothing.
    assert scheduler.drain(stop_admission=True, cancel_queued=True) == []


def test_deadline_threads_through_to_portal_budget():
    """A scheduled job's deadline is enforced downstream, not only at
    admission: a mid-flight expiry surfaces as a degraded result."""
    fed = _fed(scheduler=True, chunk_budget_bytes=1024)
    solo = _fed(chunk_budget_bytes=1024)
    t0 = solo.network.clock.now
    solo.portal.submit(paper_query(900.0))
    duration = solo.network.clock.now - t0

    scheduler = fed.scheduler
    scheduler.enqueue(
        paper_query(900.0),
        deadline_s=fed.network.clock.now + 0.95 * duration,
    )
    outcomes = scheduler.drain()
    result = outcomes[0].result
    assert result is not None and result.degraded
    assert any("deadline exceeded" in w for w in result.warnings)


def test_generous_deadline_changes_nothing():
    fed = _fed(scheduler=True)
    solo = _fed()
    want = solo.portal.submit(paper_query(700.0))
    scheduler = fed.scheduler
    scheduler.enqueue(
        paper_query(700.0), deadline_s=fed.network.clock.now + 1e9
    )
    outcomes = scheduler.drain()
    assert outcomes[0].result == want
    assert scheduler.stats.expired == 0
