"""Distributed tracing: span trees as a first-class test oracle.

Beyond "the rows match", these tests pin the *shape* of federated
executions: trace-context propagation across every SOAP hop, client/server
span nesting, chain order, pipelined overlap, retry/fault tagging, and the
exact reconciliation of per-span wire bytes against the flat
``NetworkMetrics`` counters.
"""

import json

import pytest

from repro.errors import SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost, WebService
from repro.services.retry import RetryPolicy
from repro.soap.envelope import (
    build_rpc_request,
    parse_rpc_call,
    parse_trace_context,
)
from repro.soap.xmlparser import XMLParser
from repro.tracing import (
    TraceContext,
    Tracer,
    assert_overlapping,
    assert_serial,
    assert_span_tree,
    chain_hop_spans,
    check_span_invariants,
    find_spans,
    render_flamegraph,
    span_invariants,
    to_chrome_trace,
    to_chrome_trace_json,
    trace_from_dict,
)
from repro.transport.faults import FaultPlan
from repro.transport.network import SimulatedNetwork
from repro.workloads.skysim import SkyField

XMATCH_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
)


def make_fed(**kw):
    config = dict(
        n_bodies=400,
        seed=11,
        sky_field=SkyField(185.0, -0.5, 1800.0),
    )
    config.update(kw)
    return build_federation(FederationConfig(**config))


def make_clock():
    """A fake clock the unit tests can advance by hand."""
    state = {"now": 0.0}

    def advance(dt):
        state["now"] += dt

    return (lambda: state["now"]), advance


# -- Tracer unit behaviour ------------------------------------------------------


class TestTracer:
    def test_root_span_mints_fresh_trace(self):
        tracer = Tracer()
        first = tracer.begin("a", host="h")
        tracer.finish(first)
        second = tracer.begin("b", host="h")
        tracer.finish(second)
        assert first.trace_id != second.trace_id
        assert first.parent_id is None and second.parent_id is None

    def test_nested_spans_link_to_innermost_parent(self):
        tracer = Tracer()
        with tracer.span("outer", host="h") as outer:
            with tracer.span("inner", host="h") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id

    def test_explicit_context_overrides_local_stack(self):
        # A server span continues the *caller's* trace even if the local
        # tracer has its own unrelated span open.
        tracer = Tracer()
        remote = TraceContext("t-remote", "s-remote")
        with tracer.span("local", host="h"):
            with tracer.span("served", host="h", kind="server",
                             context=remote) as span:
                assert span.trace_id == "t-remote"
                assert span.parent_id == "s-remote"

    def test_span_interval_tracks_clock(self):
        clock, advance = make_clock()
        tracer = Tracer(clock_fn=clock)
        with tracer.span("work", host="h") as span:
            advance(1.5)
        assert span.start_s == 0.0
        assert span.end_s == pytest.approx(1.5)
        assert span.duration_s == pytest.approx(1.5)

    def test_exception_marks_span_errored(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", host="h"):
                raise ValueError("no")
        span = tracer.spans[0]
        assert span.status == "error"
        assert "ValueError" in span.error
        assert span.end_s is not None

    def test_bytes_charge_to_current_span_or_untraced_pool(self):
        tracer = Tracer()
        tracer.add_wire_bytes(100)  # nothing open
        with tracer.span("call", host="h") as span:
            tracer.add_wire_bytes(250)
        assert tracer.untraced_bytes == 100
        assert span.wire_bytes == 250
        assert span.messages == 1

    def test_trace_serialization_round_trips(self):
        clock, advance = make_clock()
        tracer = Tracer(clock_fn=clock)
        with tracer.span("root", host="a") as root:
            root.annotate("fault", t=clock(), kind="request-drop")
            advance(0.2)
            with tracer.span("child", host="b", kind="client") as child:
                child.retries = 2
                tracer.add_wire_bytes(512)
                advance(0.1)
        trace = tracer.trace()
        rebuilt = trace_from_dict(json.loads(json.dumps(trace.to_dict())))
        assert rebuilt.trace_id == trace.trace_id
        assert [s.to_dict() for s in rebuilt.spans] == [
            s.to_dict() for s in trace.spans
        ]


# -- SOAP header propagation ----------------------------------------------------


class TestTraceHeader:
    def test_header_rides_in_envelope_and_parses_back(self):
        envelope = build_rpc_request(
            "Echo", {"x": 1}, trace_context=TraceContext("t9", "s42")
        )
        assert "TraceContext" in envelope
        operation, params, context, _budget = parse_rpc_call(envelope)
        assert operation == "Echo"
        assert params == {"x": 1}
        assert context == TraceContext("t9", "s42")

    def test_untraced_envelope_is_byte_identical_to_headerless_form(self):
        plain = build_rpc_request("Echo", {"x": 1})
        assert "Header" not in plain
        assert plain == build_rpc_request("Echo", {"x": 1}, trace_context=None)

    def test_missing_header_parses_as_no_context(self):
        document = XMLParser().parse(build_rpc_request("Echo", {"x": 1}))
        assert parse_trace_context(document) is None


# -- propagation through the simulated network ----------------------------------


def calc_net(**proxy_kw):
    net = SimulatedNetwork(default_latency_s=0.01, default_bandwidth_bps=1e9)
    net.install_tracer(Tracer())
    service = WebService("Calc")
    service.register(
        "Add", lambda a, b: a + b,
        params=(("a", "int"), ("b", "int")), returns="int",
    )
    host = ServiceHost("svc")
    url = host.mount("/calc", service)
    net.add_host("svc", host.handle)
    return net, ServiceProxy(net, "cli", url, **proxy_kw)


class TestNetworkPropagation:
    def test_client_and_server_spans_pair_up(self):
        net, proxy = calc_net()
        assert proxy.call("Add", a=1, b=2) == 3
        trace = net.tracer.trace()
        check_span_invariants(trace)
        client = trace.root
        assert (client.name, client.kind, client.host) == ("Add", "client", "cli")
        (server,) = trace.children(client)
        assert (server.name, server.kind, server.host) == ("Add", "server", "svc")

    def test_retry_span_carries_fault_and_retry_annotations(self):
        net, proxy = calc_net(
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=1.0, base_backoff_s=0.1,
                jitter=0.0, seed=7,
            )
        )
        net.set_fault_plan(FaultPlan().drop_requests(rate=0.0, first_n=1))
        assert proxy.call("Add", a=20, b=22) == 42
        client = net.tracer.trace().root
        assert client.retries == 1
        assert client.events("retry")
        fault_kinds = {a.get("kind") for a in client.events("fault")}
        assert "request-drop" in fault_kinds
        assert net.metrics.retries == 1

    def test_soap_fault_marks_server_span_errored(self):
        net, proxy = calc_net()
        with pytest.raises(SoapFaultError):
            proxy.call("Add", a="x", b=2)
        trace = net.tracer.trace()
        (server,) = find_spans(trace, "Add", kind="server")
        assert server.status == "error"
        assert server.error


# -- federated query span trees -------------------------------------------------


class TestFederatedTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        fed = make_fed()
        result = fed.portal.submit(XMATCH_SQL)
        return fed, result

    def test_result_carries_well_formed_trace(self, traced):
        _, result = traced
        assert result.trace is not None
        assert span_invariants(result.trace) == []
        assert result.trace.root.name == "SubmitQuery"

    def test_every_soap_operation_appears_once_per_call(self, traced):
        fed, result = traced
        trace = result.trace
        archives = len(fed.nodes)
        hops = len(result.plan.steps)
        # One server span per probed archive, per count-star query, per hop.
        assert len(find_spans(trace, "IsAlive", kind="server")) == archives
        assert len(find_spans(trace, "ExecuteQueryPinned", kind="server")) == archives
        assert len(find_spans(trace, "PerformXMatch", kind="server")) == hops
        # Every server span continues a client span on the expected hosts.
        for span in trace.spans:
            if span.kind != "server":
                continue
            parent = trace.parent(span)
            assert parent is not None and parent.kind == "client"
            assert parent.name == span.name

    def test_count_star_fanout_groups_under_parallel_span(self, traced):
        _, result = traced
        trace = result.trace
        queries = find_spans(trace, "ExecuteQueryPinned", kind="client")
        parents = {trace.parent(span).span_id for span in queries}
        assert len(parents) == 1
        (parent_id,) = parents
        assert trace.span(parent_id).name == "parallel"

    def test_declarative_span_tree_shape(self, traced):
        _, result = traced
        assert_span_tree(
            result.trace,
            (
                "SubmitQuery@portal.*",
                [
                    (
                        "plan",
                        [
                            (
                                "parallel",
                                [
                                    ("parallel", ["IsAlive*"]),
                                    ("parallel", ["ExecuteQuery*"]),
                                ],
                            )
                        ],
                    ),
                    ("PerformXMatch", ["PerformXMatch@*"]),
                ],
            ),
        )

    def test_chain_hop_order_matches_plan_order(self, traced):
        _, result = traced
        hop_hosts = [span.host for span in chain_hop_spans(result.trace)]
        plan_hosts = [step.url.split("/")[2] for step in result.plan.steps]
        assert hop_hosts == plan_hosts

    def test_store_forward_hops_nest_not_overlap_siblings(self, traced):
        _, result = traced
        hops = chain_hop_spans(result.trace)
        # Store-and-forward: hop k runs INSIDE hop k-1's span.
        for outer, inner in zip(hops, hops[1:]):
            assert inner.start_s >= outer.start_s
            assert inner.end_s <= outer.end_s
        # And the serial-order oracle holds for any one host's batches.
        assert_serial(find_spans(result.trace, "IsAlive", kind="server"))

    def test_span_bytes_reconcile_with_network_metrics(self, traced):
        fed, _ = traced
        tracer = fed.tracer
        spanned = sum(s.wire_bytes for s in tracer.spans)
        assert spanned + tracer.untraced_bytes == fed.network.metrics.total_bytes()
        # Every delivered byte lands on some span: registration, WSDL
        # fetches, and the query all run under client spans.
        assert spanned > 0
        assert tracer.untraced_bytes == 0

    def test_processing_time_annotated_on_chain_spans(self, traced):
        _, result = traced
        processing = [
            event
            for span in find_spans(result.trace, "PerformXMatch", kind="server")
            for event in span.events("processing")
        ]
        assert processing
        assert all(event["elapsed_s"] > 0 for event in processing)


class TestPipelinedTrace:
    def test_pullbatch_spans_overlap_across_hops(self):
        fed = make_fed(chain_mode="pipelined", stream_batch_size=16)
        result = fed.portal.submit(XMATCH_SQL)
        trace = result.trace
        check_span_invariants(trace)
        by_host = {}
        for span in find_spans(trace, "PullBatch", kind="server"):
            by_host.setdefault(span.host, []).append(span)
        assert len(by_host) >= 2  # the pull cascades down the chain
        hosts = sorted(by_host)
        # Hop k's batch pulls overlap hop k-1's: the batches traverse the
        # chain concurrently inside one parallel block.
        for left, right in zip(hosts, hosts[1:]):
            assert_overlapping(by_host[left] + by_host[right])
        # And the portal-side pulls of distinct batches overlap each other.
        assert_overlapping(find_spans(trace, "PullBatch", kind="client"))

    def test_pipelined_trace_carries_batch_sequence_numbers(self):
        fed = make_fed(chain_mode="pipelined", stream_batch_size=16)
        result = fed.portal.submit(XMATCH_SQL)
        seqs = set()
        for span in find_spans(result.trace, "PullBatch", kind="server"):
            for event in span.events("request"):
                seqs.add(event.get("seq"))
        assert seqs  # every server span was stamped with its batch seq
        assert 0 in seqs


class TestTracingToggle:
    def test_tracing_off_means_no_tracer_and_no_headers(self):
        fed = make_fed(tracing=False)
        assert fed.tracer is None
        result = fed.portal.submit(XMATCH_SQL)
        assert result.trace is None
        assert result.rows  # the query itself still works

    def test_rows_identical_with_and_without_tracing(self):
        plain = make_fed(tracing=False)
        traced = make_fed(tracing=True)
        assert plain.portal.submit(XMATCH_SQL).rows == (
            traced.portal.submit(XMATCH_SQL).rows
        )

    def test_client_result_carries_its_own_trace(self):
        fed = make_fed()
        result = fed.client().submit(XMATCH_SQL)
        trace = result.trace
        assert trace is not None
        assert trace.root.name == "SubmitQuery"
        assert trace.root.kind == "client"
        assert trace.root.host == "client.skyquery.net"
        check_span_invariants(trace)
        assert fed.client().submit(XMATCH_SQL).trace is not None

    def test_client_result_trace_is_none_when_tracing_off(self):
        fed = make_fed(tracing=False)
        assert fed.client().submit(XMATCH_SQL).trace is None


# -- exporters ------------------------------------------------------------------


class TestExporters:
    @pytest.fixture(scope="class")
    def trace(self):
        fed = make_fed()
        return fed.portal.submit(XMATCH_SQL).trace

    def test_chrome_trace_is_valid_trace_event_json(self, trace):
        payload = json.loads(to_chrome_trace_json(trace))
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(trace.spans)
        hosts = {s.host for s in trace.spans}
        assert {e["args"]["name"] for e in metadata} == hosts
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)

    def test_chrome_trace_timestamps_are_microseconds(self, trace):
        events = {
            e["args"]["span_id"]: e
            for e in to_chrome_trace(trace)["traceEvents"]
            if e["ph"] == "X"
        }
        for span in trace.spans:
            assert events[span.span_id]["ts"] == pytest.approx(
                span.start_s * 1e6, abs=0.01
            )

    def test_flamegraph_lists_every_span(self, trace):
        art = render_flamegraph(trace)
        lines = art.splitlines()
        assert len(lines) == len(trace.spans) + 1  # header + one per span
        assert "SubmitQuery" in lines[0]
        assert all("|" in line for line in lines[1:])
