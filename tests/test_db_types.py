"""Column types and coercion."""

import pytest

from repro.db.types import ColumnType
from repro.errors import SchemaError


def test_int_accepts_int():
    assert ColumnType.INT.coerce(42) == 42


def test_int_accepts_integral_float():
    assert ColumnType.INT.coerce(42.0) == 42
    assert isinstance(ColumnType.INT.coerce(42.0), int)


def test_int_rejects_fractional_float():
    with pytest.raises(SchemaError):
        ColumnType.INT.coerce(42.5)


def test_int_rejects_bool():
    with pytest.raises(SchemaError):
        ColumnType.INT.coerce(True)


def test_float_widens_int():
    value = ColumnType.FLOAT.coerce(3)
    assert value == 3.0
    assert isinstance(value, float)


def test_float_rejects_string():
    with pytest.raises(SchemaError):
        ColumnType.FLOAT.coerce("3.0")


def test_string_accepts_string():
    assert ColumnType.STRING.coerce("abc") == "abc"


def test_string_rejects_number():
    with pytest.raises(SchemaError):
        ColumnType.STRING.coerce(1)


def test_bool_accepts_bool():
    assert ColumnType.BOOL.coerce(True) is True


def test_bool_rejects_int():
    with pytest.raises(SchemaError):
        ColumnType.BOOL.coerce(1)


def test_nullable_accepts_none():
    assert ColumnType.INT.coerce(None, nullable=True) is None


def test_not_null_rejects_none():
    with pytest.raises(SchemaError):
        ColumnType.INT.coerce(None, nullable=False)


def test_of_value_bool_before_int():
    assert ColumnType.of_value(True) is ColumnType.BOOL
    assert ColumnType.of_value(1) is ColumnType.INT


def test_of_value_all_kinds():
    assert ColumnType.of_value(1.5) is ColumnType.FLOAT
    assert ColumnType.of_value("x") is ColumnType.STRING


def test_of_value_unsupported():
    with pytest.raises(SchemaError):
        ColumnType.of_value([1, 2])
