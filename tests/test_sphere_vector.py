"""Vector arithmetic."""

import math

import pytest

from repro.errors import GeometryError
from repro.sphere.vector import add, cross, dot, midpoint, norm, normalize, scale, sub


def test_add_sub_inverse():
    a, b = (1.0, 2.0, 3.0), (0.5, -1.0, 2.0)
    assert sub(add(a, b), b) == pytest.approx(a)


def test_scale():
    assert scale((1.0, -2.0, 0.5), 2.0) == (2.0, -4.0, 1.0)


def test_dot_orthogonal():
    assert dot((1.0, 0.0, 0.0), (0.0, 1.0, 0.0)) == 0.0


def test_dot_self_is_norm_squared():
    v = (3.0, 4.0, 12.0)
    assert dot(v, v) == pytest.approx(norm(v) ** 2)


def test_cross_right_handed():
    assert cross((1.0, 0.0, 0.0), (0.0, 1.0, 0.0)) == (0.0, 0.0, 1.0)


def test_cross_anticommutative():
    a, b = (1.0, 2.0, 3.0), (-2.0, 0.5, 1.0)
    assert cross(a, b) == pytest.approx(scale(cross(b, a), -1.0))


def test_cross_parallel_is_zero():
    a = (1.0, 2.0, 3.0)
    assert cross(a, scale(a, 2.0)) == pytest.approx((0.0, 0.0, 0.0))


def test_normalize_unit_length():
    v = normalize((3.0, 4.0, 0.0))
    assert norm(v) == pytest.approx(1.0)
    assert v == pytest.approx((0.6, 0.8, 0.0))


def test_normalize_zero_raises():
    with pytest.raises(GeometryError):
        normalize((0.0, 0.0, 0.0))


def test_midpoint_on_great_circle():
    m = midpoint((1.0, 0.0, 0.0), (0.0, 1.0, 0.0))
    assert norm(m) == pytest.approx(1.0)
    assert m[0] == pytest.approx(m[1])
    assert m[2] == 0.0


def test_midpoint_of_antipodes_raises():
    with pytest.raises(GeometryError):
        midpoint((1.0, 0.0, 0.0), (-1.0, 0.0, 0.0))
