"""Typed value encoding and the rowset formats."""

import pytest

from repro.errors import SoapError
from repro.soap.encoding import (
    WireRowSet,
    decode_binary_rowset,
    decode_value,
    encode_binary_rowset,
    encode_value,
    infer_rowset,
    typecode_of,
)
from repro.soap.xmlparser import parse_xml
from repro.soap.xmlwriter import render


def roundtrip(value):
    return decode_value(parse_xml(render(encode_value("v", value))))


def test_scalar_roundtrips():
    for value in (1, -7, 3.5, "text", True, False, None, ""):
        assert roundtrip(value) == value


def test_bool_not_confused_with_int():
    assert roundtrip(True) is True
    assert roundtrip(1) == 1
    assert not isinstance(roundtrip(1), bool)


def test_float_precision_preserved():
    value = 0.1 + 0.2
    assert roundtrip(value) == value


def test_special_characters_in_strings():
    assert roundtrip("<tag> & 'quote' \"dq\"") == "<tag> & 'quote' \"dq\""


def test_struct_roundtrip():
    value = {"a": 1, "b": "x", "c": None, "nested": {"d": 2.5}}
    assert roundtrip(value) == value


def test_array_roundtrip():
    assert roundtrip([1, "two", 3.0, None]) == [1, "two", 3.0, None]


def test_array_of_structs():
    value = [{"a": 1}, {"a": 2}]
    assert roundtrip(value) == value


def test_typecode_of():
    assert typecode_of(True) == "boolean"
    assert typecode_of(2) == "int"
    assert typecode_of(2.0) == "double"
    assert typecode_of("s") == "string"
    with pytest.raises(SoapError):
        typecode_of(object())


def make_rowset():
    return WireRowSet(
        [("id", "int"), ("ra", "double"), ("name", "string"), ("ok", "boolean")],
        [
            (1, 185.5, "a <b> & 'c'", True),
            (2, -0.25, None, False),
            (None, 1.0, "x", None),
        ],
    )


def test_rowset_roundtrip_xml():
    rowset = make_rowset()
    back = roundtrip(rowset)
    assert isinstance(back, WireRowSet)
    assert back.columns == rowset.columns
    assert back.rows == rowset.rows


def test_rowset_roundtrip_binary():
    rowset = make_rowset()
    back = decode_binary_rowset(encode_binary_rowset(rowset))
    assert back.columns == rowset.columns
    assert back.rows == rowset.rows


def test_binary_smaller_than_xml():
    rowset = make_rowset()
    xml_size = len(render(encode_value("v", rowset)))
    assert len(encode_binary_rowset(rowset)) < xml_size


def test_binary_bad_magic():
    with pytest.raises(SoapError):
        decode_binary_rowset(b"NOPE" + b"\x00" * 16)


def test_rowset_bad_typecode_rejected():
    with pytest.raises(SoapError):
        WireRowSet([("a", "decimal")])


def test_rowset_wrong_width_rejected_on_encode():
    rowset = WireRowSet([("a", "int")], [(1, 2)])
    with pytest.raises(SoapError):
        encode_value("v", rowset)


def test_rowset_type_mismatch_rejected_on_encode():
    rowset = WireRowSet([("a", "int")], [("not an int",)])
    with pytest.raises(SoapError):
        encode_value("v", rowset)


def test_rowset_int_widens_to_double_column():
    rowset = WireRowSet([("a", "double")], [(1,)])
    back = roundtrip(rowset)
    assert back.rows == [(1.0,)]


def test_rowset_slice_and_concat():
    rowset = make_rowset()
    parts = [rowset.slice(0, 2), rowset.slice(2, 3)]
    merged = WireRowSet.concat(parts)
    assert merged.rows == rowset.rows


def test_concat_schema_mismatch():
    a = WireRowSet([("a", "int")])
    b = WireRowSet([("b", "int")])
    with pytest.raises(SoapError):
        WireRowSet.concat([a, b])


def test_concat_empty_rejected():
    with pytest.raises(SoapError):
        WireRowSet.concat([])


def test_column_names():
    assert make_rowset().column_names == ["id", "ra", "name", "ok"]


def test_infer_rowset():
    rowset = infer_rowset(
        ["i", "f", "s", "b", "n"],
        [(1, 2.5, "x", True, None), (2, 3.5, "y", False, None)],
    )
    codes = [code for _, code in rowset.columns]
    assert codes == ["int", "double", "string", "boolean", "string"]


def test_infer_rowset_mixed_int_float():
    rowset = infer_rowset(["v"], [(1,), (2.5,)])
    assert rowset.columns == [("v", "double")]
    assert rowset.rows[0] == (1.0,)


def test_infer_rowset_empty():
    rowset = infer_rowset(["a"], [])
    assert rowset.columns == [("a", "string")]
