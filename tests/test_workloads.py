"""The synthetic sky generator."""

import pytest

from repro.federation.surveys import FIRST, SDSS, TWOMASS, default_surveys
from repro.sphere.distance import separation_arcsec
from repro.sphere.coords import radec_to_vector
from repro.workloads.skysim import (
    SkyField,
    SurveySpec,
    generate_bodies,
    observe_survey,
)


def test_bodies_inside_field():
    field = SkyField(185.0, -0.5, 600.0)
    bodies = generate_bodies(field, 100, seed=1)
    assert len(bodies) == 100
    for body in bodies:
        assert (
            separation_arcsec(body.position, field.center) <= 600.0 + 1e-6
        )


def test_bodies_deterministic():
    field = SkyField()
    a = generate_bodies(field, 50, seed=7)
    b = generate_bodies(field, 50, seed=7)
    assert [x.position for x in a] == [y.position for y in b]
    c = generate_bodies(field, 50, seed=8)
    assert [x.position for x in a] != [y.position for y in c]


def test_body_types_weighted():
    bodies = generate_bodies(SkyField(), 2000, seed=2)
    galaxies = sum(1 for b in bodies if b.object_type == "GALAXY")
    assert 0.6 < galaxies / 2000 < 0.8


def test_observation_detection_rate():
    bodies = generate_bodies(SkyField(), 2000, seed=3)
    survey = SurveySpec(
        archive="X", sigma_arcsec=0.5, detection_rate=0.3,
        primary_table="objects",
    )
    observation = observe_survey(survey, bodies, seed=3)
    assert 0.25 < len(observation.rows) / 2000 < 0.35


def test_observation_positions_scattered_by_sigma():
    bodies = generate_bodies(SkyField(), 500, seed=4)
    survey = SurveySpec(
        archive="X", sigma_arcsec=1.0, detection_rate=1.0,
        primary_table="objects",
    )
    observation = observe_survey(survey, bodies, seed=4)
    body_by_id = {b.body_id: b for b in bodies}
    seps = []
    for row in observation.rows:
        body = body_by_id[observation.truth[row["object_id"]]]
        measured = radec_to_vector(row["ra"], row["dec"])
        seps.append(separation_arcsec(measured, body.position))
    mean = sum(seps) / len(seps)
    assert 1.0 < mean < 1.6  # Rayleigh mean = sigma * sqrt(pi/2) ~ 1.25


def test_truth_mapping_consistent():
    bodies = generate_bodies(SkyField(), 100, seed=5)
    survey = SurveySpec(
        archive="X", sigma_arcsec=0.1, detection_rate=1.0,
        primary_table="objects",
    )
    observation = observe_survey(survey, bodies, seed=5)
    assert len(observation.truth) == len(observation.rows)
    assert set(observation.truth) == {
        row["object_id"] for row in observation.rows
    }


def test_observation_deterministic_per_archive():
    bodies = generate_bodies(SkyField(), 100, seed=6)
    survey = SurveySpec(
        archive="X", sigma_arcsec=0.1, detection_rate=0.8,
        primary_table="objects",
    )
    a = observe_survey(survey, bodies, seed=6)
    b = observe_survey(survey, bodies, seed=6)
    assert a.rows == b.rows
    other = observe_survey(
        SurveySpec(archive="Y", sigma_arcsec=0.1, detection_rate=0.8,
                   primary_table="objects"),
        bodies,
        seed=6,
    )
    assert a.rows != other.rows  # different archive -> different stream


def test_survey_columns_match_spec():
    survey = SurveySpec(
        archive="X", sigma_arcsec=0.1, detection_rate=1.0,
        primary_table="objects", object_id_column="oid",
        ra_column="alpha", dec_column="delta", bands=("j", "k"),
        has_type=False,
    )
    names = [c.name for c in survey.columns()]
    assert names == ["oid", "alpha", "delta", "j_flux", "k_flux"]


def test_rows_fit_columns():
    bodies = generate_bodies(SkyField(), 20, seed=8)
    observation = observe_survey(TWOMASS, bodies, seed=8)
    column_names = {c.name for c in TWOMASS.columns()}
    for row in observation.rows:
        assert set(row) == column_names


def test_flux_offset_applied():
    bodies = generate_bodies(SkyField(), 300, seed=9)
    base = SurveySpec(
        archive="A", sigma_arcsec=0.1, detection_rate=1.0,
        primary_table="objects", bands=("i",), flux_offset=0.0,
        flux_noise=0.01,
    )
    shifted = SurveySpec(
        archive="A", sigma_arcsec=0.1, detection_rate=1.0,
        primary_table="objects", bands=("i",), flux_offset=3.0,
        flux_noise=0.01,
    )
    rows_a = observe_survey(base, bodies, seed=9).rows
    rows_b = observe_survey(shifted, bodies, seed=9).rows
    mean_a = sum(r["i_flux"] for r in rows_a) / len(rows_a)
    mean_b = sum(r["i_flux"] for r in rows_b) / len(rows_b)
    assert mean_b - mean_a == pytest.approx(3.0, abs=0.05)


def test_default_surveys_are_papers_three():
    assert [s.archive for s in default_surveys()] == ["SDSS", "TWOMASS", "FIRST"]
    assert SDSS.sigma_arcsec < TWOMASS.sigma_arcsec < FIRST.sigma_arcsec
    assert FIRST.detection_rate < 0.5  # radio survey detects a minority
