"""SkyNode services against a live (simulated) network."""

import pytest

from repro.errors import SoapFaultError
from repro.services.client import ServiceProxy
from repro.soap.encoding import WireRowSet


@pytest.fixture()
def sdss(small_federation):
    return small_federation.node("SDSS")


@pytest.fixture()
def proxy_for(small_federation):
    def make(url):
        return ServiceProxy(small_federation.network, "tester", url)

    return make


def test_information_service(sdss, proxy_for):
    info = proxy_for(sdss.service_url("information")).call("GetInfo")
    assert info["archive"] == "SDSS"
    assert info["sigma_arcsec"] == pytest.approx(0.1)
    assert info["primary_table"] == "Photo_Object"
    assert info["object_count"] > 0


def test_metadata_service(sdss, proxy_for):
    schema = proxy_for(sdss.service_url("metadata")).call("GetSchema")
    tables = {t["name"] for t in schema["tables"]}
    assert "Photo_Object" in tables


def test_query_service_count(sdss, proxy_for):
    rowset = proxy_for(sdss.service_url("query")).call(
        "ExecuteQuery",
        sql="SELECT count(*) FROM Photo_Object o",
    )
    assert isinstance(rowset, WireRowSet)
    assert rowset.rows[0][0] == sdss.db.count_rows("Photo_Object")


def test_query_service_area(sdss, proxy_for):
    rowset = proxy_for(sdss.service_url("query")).call(
        "ExecuteQuery",
        sql="SELECT o.object_id FROM Photo_Object o "
            "WHERE AREA(185.0, -0.5, 300.0)",
    )
    assert len(rowset.rows) > 0


def test_query_service_rejects_bad_sql(sdss, proxy_for):
    with pytest.raises(SoapFaultError):
        proxy_for(sdss.service_url("query")).call("ExecuteQuery", sql="NOT SQL")


def test_query_service_rejects_unknown_table(sdss, proxy_for):
    with pytest.raises(SoapFaultError):
        proxy_for(sdss.service_url("query")).call(
            "ExecuteQuery", sql="SELECT t.a FROM Nope t"
        )


def test_all_services_publish_wsdl(sdss, proxy_for):
    for service in ("information", "metadata", "query", "crossmatch"):
        description = proxy_for(sdss.service_url(service)).fetch_wsdl()
        assert description.operations, service


def test_crossmatch_rejects_bad_position(sdss, proxy_for, small_federation):
    plan = {
        "steps": [
            {
                "alias": "O",
                "archive": "TWOMASS",  # wrong archive for this node
                "url": sdss.service_url("crossmatch"),
                "sigma_arcsec": 0.1,
                "dropout": False,
                "count_star": 1,
                "table": "Photo_Object",
                "id_column": "object_id",
                "ra_column": "ra",
                "dec_column": "dec",
                "residual_sql": "",
                "attr_select": [],
                "sql": "",
            }
        ],
        "threshold": 3.5,
        "area": None,
    }
    with pytest.raises(SoapFaultError):
        proxy_for(sdss.service_url("crossmatch")).call(
            "PerformXMatch", plan=plan, position=0
        )


def test_fetch_chunk_unknown_transfer(sdss, proxy_for):
    with pytest.raises(SoapFaultError):
        proxy_for(sdss.service_url("crossmatch")).call(
            "FetchChunk", transfer_id="nope", seq=0
        )


def test_node_register_requires_network():
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.table import SpatialSpec
    from repro.db.types import ColumnType
    from repro.errors import RegistrationError
    from repro.skynode.node import SkyNode
    from repro.skynode.wrapper import ArchiveInfo

    db = Database("x")
    db.create_table(
        "t",
        [
            Column("object_id", ColumnType.INT),
            Column("ra", ColumnType.FLOAT),
            Column("dec", ColumnType.FLOAT),
        ],
        spatial=SpatialSpec("ra", "dec"),
    )
    node = SkyNode(db, ArchiveInfo("X", 0.1, "t", "object_id", "ra", "dec"))
    with pytest.raises(RegistrationError):
        node.register_with_portal("http://portal/registration")
    with pytest.raises(RegistrationError):
        node.proxy("http://anywhere/x")


def test_service_urls(sdss):
    urls = sdss.service_urls()
    assert set(urls) == {"information", "metadata", "query", "crossmatch"}
    assert all(url.startswith("http://sdss.skyquery.net/") for url in urls.values())
