"""Table schemas."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.types import ColumnType
from repro.errors import SchemaError


def make_schema():
    return TableSchema(
        "Photo_Object",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("type", ColumnType.STRING),
        ],
    )


def test_column_names_in_order():
    assert make_schema().column_names == ["object_id", "ra", "type"]


def test_case_insensitive_lookup():
    schema = make_schema()
    assert schema.column_index("RA") == 1
    assert schema.has_column("TYPE")
    assert schema.column("Object_ID").name == "object_id"


def test_unknown_column_raises():
    with pytest.raises(SchemaError):
        make_schema().column_index("nope")


def test_duplicate_column_rejected():
    with pytest.raises(SchemaError):
        TableSchema("t", [Column("a", ColumnType.INT), Column("A", ColumnType.INT)])


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        TableSchema("t", [])


def test_invalid_table_name_rejected():
    with pytest.raises(SchemaError):
        TableSchema("1bad", [Column("a", ColumnType.INT)])
    with pytest.raises(SchemaError):
        TableSchema("bad name", [Column("a", ColumnType.INT)])


def test_invalid_column_name_rejected():
    with pytest.raises(SchemaError):
        Column("bad-name", ColumnType.INT)


def test_coerce_row_positional():
    schema = make_schema()
    assert schema.coerce_row((1, 2.5, "GALAXY")) == [1, 2.5, "GALAXY"]


def test_coerce_row_mapping():
    schema = make_schema()
    row = schema.coerce_row({"ra": 2.5, "object_id": 1})
    assert row == [1, 2.5, None]


def test_coerce_row_mapping_case_insensitive():
    schema = make_schema()
    assert schema.coerce_row({"RA": 1.0, "OBJECT_ID": 2}) == [2, 1.0, None]


def test_coerce_row_unknown_key():
    with pytest.raises(SchemaError):
        make_schema().coerce_row({"object_id": 1, "nope": 2})


def test_coerce_row_wrong_width():
    with pytest.raises(SchemaError):
        make_schema().coerce_row((1, 2.0))


def test_coerce_row_not_null_enforced():
    with pytest.raises(SchemaError):
        make_schema().coerce_row({"ra": 1.0})  # object_id missing -> None


def test_coerce_row_type_enforced():
    with pytest.raises(SchemaError):
        make_schema().coerce_row((1, "not a float", None))
