"""Coordinate conversions."""

import math

import pytest

from repro.errors import GeometryError
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.vector import norm


@pytest.mark.parametrize(
    "ra,dec,expected",
    [
        (0.0, 0.0, (1.0, 0.0, 0.0)),
        (90.0, 0.0, (0.0, 1.0, 0.0)),
        (180.0, 0.0, (-1.0, 0.0, 0.0)),
        (0.0, 90.0, (0.0, 0.0, 1.0)),
        (0.0, -90.0, (0.0, 0.0, -1.0)),
    ],
)
def test_cardinal_directions(ra, dec, expected):
    assert radec_to_vector(ra, dec) == pytest.approx(expected, abs=1e-12)


@pytest.mark.parametrize(
    "ra,dec",
    [(185.0, -0.5), (0.0, 0.0), (359.999, 89.0), (12.25, -45.5), (270.0, 33.0)],
)
def test_roundtrip(ra, dec):
    back_ra, back_dec = vector_to_radec(radec_to_vector(ra, dec))
    assert back_ra == pytest.approx(ra, abs=1e-9)
    assert back_dec == pytest.approx(dec, abs=1e-9)


def test_ra_normalized_on_input():
    assert radec_to_vector(370.0, 0.0) == pytest.approx(radec_to_vector(10.0, 0.0))


def test_result_is_unit_vector():
    assert norm(radec_to_vector(123.4, 56.7)) == pytest.approx(1.0)


def test_bad_dec_raises():
    with pytest.raises(GeometryError):
        radec_to_vector(0.0, 91.0)


def test_zero_vector_raises():
    with pytest.raises(GeometryError):
        vector_to_radec((0.0, 0.0, 0.0))


def test_non_unit_vector_accepted():
    ra, dec = vector_to_radec((2.0, 0.0, 0.0))
    assert (ra, dec) == pytest.approx((0.0, 0.0))


def test_pole_roundtrip():
    ra, dec = vector_to_radec(radec_to_vector(45.0, 90.0))
    assert dec == pytest.approx(90.0)
