"""Row storage, paging, spatial ids."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.table import SpatialSpec, Table
from repro.db.types import ColumnType
from repro.errors import SchemaError
from repro.htm.index import id_for_radec


def make_table(page_size=4, spatial=True):
    schema = TableSchema(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
    )
    spec = SpatialSpec("ra", "dec", htm_depth=8) if spatial else None
    return Table(schema, page_size=page_size, spatial=spec)


def test_insert_and_len():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    table.insert({"object_id": 2, "ra": 186.0, "dec": 0.5})
    assert len(table) == 2


def test_row_retrieval():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert table.row(0) == [1, 185.0, -0.5]


def test_page_arithmetic():
    table = make_table(page_size=4)
    for i in range(10):
        table.insert((i, 10.0, 10.0))
    assert table.page_count == 3
    assert table.page_of(0) == 0
    assert table.page_of(3) == 0
    assert table.page_of(4) == 1
    assert table.page_of(9) == 2


def test_htm_id_matches_index():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert table.htm_id(0) == id_for_radec(185.0, -0.5, 8)


def test_htm_id_without_spatial_raises():
    table = make_table(spatial=False)
    table.insert((1, 185.0, -0.5))
    with pytest.raises(SchemaError):
        table.htm_id(0)


def test_spatial_entries_sorted():
    table = make_table()
    for i, ra in enumerate((300.0, 10.0, 185.0)):
        table.insert((i, ra, 0.0))
    entries = table.spatial_entries()
    assert entries == sorted(entries)
    assert len(entries) == 3


def test_spatial_entries_refresh_after_insert():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert len(table.spatial_entries()) == 1
    table.insert((2, 10.0, 0.0))
    assert len(table.spatial_entries()) == 2


def test_spatial_requires_position_columns():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    with pytest.raises(SchemaError):
        Table(schema, spatial=SpatialSpec("ra", "dec"))


def test_null_position_rejected():
    schema = TableSchema(
        "t",
        [
            Column("ra", ColumnType.FLOAT),
            Column("dec", ColumnType.FLOAT),
        ],
    )
    table = Table(schema, spatial=SpatialSpec("ra", "dec"))
    with pytest.raises(SchemaError):
        table.insert((None, 0.0))


def test_truncate():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    table.truncate()
    assert len(table) == 0
    assert table.spatial_entries() == []


def test_insert_many():
    table = make_table()
    assert table.insert_many([(i, 10.0, 10.0) for i in range(5)]) == 5
    assert len(table) == 5


def test_bad_page_size():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    with pytest.raises(SchemaError):
        Table(schema, page_size=0)


def test_insert_many_equals_repeated_insert():
    bulk, loop = make_table(), make_table()
    rows = [(i, 185.0 + i * 0.01, -0.5 + i * 0.005) for i in range(20)]
    inserted = bulk.insert_many(rows)
    for row in rows:
        loop.insert(row)
    assert inserted == 20
    assert [bulk.row(i) for i in range(20)] == [loop.row(i) for i in range(20)]
    assert bulk.spatial_entries() == loop.spatial_entries()


def test_insert_many_bad_row_leaves_table_unchanged():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    with pytest.raises(SchemaError):
        table.insert_many([(2, 186.0, 0.5), (3, None, 0.5)])
    assert len(table) == 1
    assert table.spatial_entries() == [(table.htm_id(0), 0)]


def test_insert_many_defers_derived_invalidation():
    """The bulk path is measurably cheaper: one derived-structure
    invalidation per batch instead of one per row, and spatial column
    lookups resolved at construction, not per insert."""
    bulk, loop = make_table(), make_table()
    rows = [(i, 185.0 + i * 0.001, -0.5) for i in range(50)]
    counters = {}
    for name, table in (("bulk", bulk), ("loop", loop)):
        count = 0
        original = table._invalidate_derived

        def counting(original=original):
            nonlocal count
            count += 1
            original()

        table._invalidate_derived = counting
        if name == "bulk":
            table.insert_many(rows)
        else:
            for row in rows:
                table.insert(row)
        counters[name] = count
    assert counters["bulk"] == 1
    assert counters["loop"] == len(rows)


def test_spatial_column_indexes_cached_at_construction():
    table = make_table()
    calls = []
    original = table.schema.column_index
    table.schema.column_index = lambda name: (calls.append(name), original(name))[1]
    table.insert_many([(i, 185.0, -0.5) for i in range(30)])
    for i in range(30, 40):
        table.insert((i, 185.0, -0.5))
    assert calls == []  # resolved once in __init__, never per insert


def test_position_matrix_matches_scalar_conversion():
    import numpy as np

    from repro.sphere.coords import radec_to_vector

    table = make_table()
    rows = [(i, 185.0 + i * 0.01, -0.5 + i * 0.003) for i in range(8)]
    table.insert_many(rows)
    matrix = table.position_matrix()
    assert matrix.shape == (8, 3) and matrix.dtype == np.float64
    for i, (_, ra, dec) in enumerate(rows):
        assert tuple(matrix[i]) == radec_to_vector(ra, dec)  # bitwise
        assert table.position_of(i) == radec_to_vector(ra, dec)


def test_columnar_caches_invalidated_on_insert_and_truncate():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    matrix = table.position_matrix()
    ids, positions = table.spatial_arrays()
    # Cached until the next mutation.
    assert table.position_matrix() is matrix
    assert table.spatial_arrays()[0] is ids
    table.insert((2, 186.0, 0.5))
    assert table.position_matrix() is not matrix
    assert table.position_matrix().shape == (2, 3)
    assert len(table.spatial_arrays()[0]) == 2
    table.truncate()
    assert table.position_matrix().shape == (0, 3)
    assert len(table.spatial_arrays()[0]) == 0
    assert len(table) == 0


def test_spatial_arrays_match_entries():
    import numpy as np

    table = make_table()
    table.insert_many([(i, 180.0 + i * 1.5, (-1) ** i * 20.0) for i in range(12)])
    ids, positions = table.spatial_arrays()
    assert ids.dtype == np.int64 and positions.dtype == np.int64
    assert list(zip(ids.tolist(), positions.tolist())) == table.spatial_entries()


def test_columnar_accessors_require_spatial():
    table = make_table(spatial=False)
    table.insert((1, 185.0, -0.5))
    with pytest.raises(SchemaError):
        table.position_matrix()
    with pytest.raises(SchemaError):
        table.spatial_arrays()
    with pytest.raises(SchemaError):
        table.position_of(0)
