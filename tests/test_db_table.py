"""Row storage, paging, spatial ids."""

import pytest

from repro.db.schema import Column, TableSchema
from repro.db.table import SpatialSpec, Table
from repro.db.types import ColumnType
from repro.errors import SchemaError
from repro.htm.index import id_for_radec


def make_table(page_size=4, spatial=True):
    schema = TableSchema(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
    )
    spec = SpatialSpec("ra", "dec", htm_depth=8) if spatial else None
    return Table(schema, page_size=page_size, spatial=spec)


def test_insert_and_len():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    table.insert({"object_id": 2, "ra": 186.0, "dec": 0.5})
    assert len(table) == 2


def test_row_retrieval():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert table.row(0) == [1, 185.0, -0.5]


def test_page_arithmetic():
    table = make_table(page_size=4)
    for i in range(10):
        table.insert((i, 10.0, 10.0))
    assert table.page_count == 3
    assert table.page_of(0) == 0
    assert table.page_of(3) == 0
    assert table.page_of(4) == 1
    assert table.page_of(9) == 2


def test_htm_id_matches_index():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert table.htm_id(0) == id_for_radec(185.0, -0.5, 8)


def test_htm_id_without_spatial_raises():
    table = make_table(spatial=False)
    table.insert((1, 185.0, -0.5))
    with pytest.raises(SchemaError):
        table.htm_id(0)


def test_spatial_entries_sorted():
    table = make_table()
    for i, ra in enumerate((300.0, 10.0, 185.0)):
        table.insert((i, ra, 0.0))
    entries = table.spatial_entries()
    assert entries == sorted(entries)
    assert len(entries) == 3


def test_spatial_entries_refresh_after_insert():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    assert len(table.spatial_entries()) == 1
    table.insert((2, 10.0, 0.0))
    assert len(table.spatial_entries()) == 2


def test_spatial_requires_position_columns():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    with pytest.raises(SchemaError):
        Table(schema, spatial=SpatialSpec("ra", "dec"))


def test_null_position_rejected():
    schema = TableSchema(
        "t",
        [
            Column("ra", ColumnType.FLOAT),
            Column("dec", ColumnType.FLOAT),
        ],
    )
    table = Table(schema, spatial=SpatialSpec("ra", "dec"))
    with pytest.raises(SchemaError):
        table.insert((None, 0.0))


def test_truncate():
    table = make_table()
    table.insert((1, 185.0, -0.5))
    table.truncate()
    assert len(table) == 0
    assert table.spatial_entries() == []


def test_insert_many():
    table = make_table()
    assert table.insert_many([(i, 10.0, 10.0) for i in range(5)]) == 5
    assert len(table) == 5


def test_bad_page_size():
    schema = TableSchema("t", [Column("a", ColumnType.INT)])
    with pytest.raises(SchemaError):
        Table(schema, page_size=0)
