"""End-to-end federation tests over real SOAP traffic."""

import pytest

from repro.errors import SoapFaultError
from repro.portal.planner import OrderingStrategy
from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import separation_arcsec
from repro.units import arcsec_to_rad

PAPER_SQL = (
    "SELECT O.object_id, O.ra, T.obj_id, O.i_flux - T.i_flux AS color "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
    "FIRST:Primary_Object P "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5 "
    "AND O.type = GALAXY AND O.i_flux - T.i_flux > 2"
)


def test_registration_catalogs_all_archives(small_federation):
    assert small_federation.portal.catalog.archives() == [
        "FIRST",
        "SDSS",
        "TWOMASS",
    ]


def test_paper_query_returns_rows(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    assert len(result) > 0
    assert result.columns == ["O.object_id", "O.ra", "T.obj_id", "color"]


def test_cross_archive_predicate_enforced(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    for row in result.rows:
        assert row[3] > 2  # O.i_flux - T.i_flux > 2


def test_local_predicate_enforced(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    sdss = small_federation.node("SDSS").db
    galaxies = {
        row[0]
        for row in sdss.execute(
            "SELECT o.object_id FROM Photo_Object o WHERE o.type = GALAXY"
        ).rows
    }
    assert all(row[0] in galaxies for row in result.rows)


def test_area_enforced(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    center = radec_to_vector(185.0, -0.5)
    sdss = small_federation.node("SDSS").db
    positions = {
        row[0]: (row[1], row[2])
        for row in sdss.execute(
            "SELECT o.object_id, o.ra, o.dec FROM Photo_Object o"
        ).rows
    }
    for row in result.rows:
        ra, dec = positions[row[0]]
        assert separation_arcsec(radec_to_vector(ra, dec), center) <= 900.0 + 1.0


def test_matches_are_mostly_true_bodies(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    truth_sdss = small_federation.truth["SDSS"]
    truth_twomass = small_federation.truth["TWOMASS"]
    correct = sum(
        1
        for row in result.rows
        if truth_sdss[row[0]] == truth_twomass[row[2]]
    )
    assert correct / len(result) > 0.95


def test_all_orderings_same_result(small_federation):
    client = small_federation.client()
    results = {
        strategy: sorted(client.submit(PAPER_SQL, strategy=strategy.value).rows)
        for strategy in OrderingStrategy
    }
    reference = results[OrderingStrategy.COUNT_DESC]
    assert all(rows == reference for rows in results.values())


def test_plan_order_matches_counts(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    steps = result.plan["steps"]
    counts = [s["count_star"] for s in steps if not s["dropout"]]
    assert counts == sorted(counts, reverse=True)


def test_node_stats_chain_order(small_federation):
    result = small_federation.client().submit(PAPER_SQL)
    assert result.node_stats[0]["role"] == "seed"
    assert all(s["role"] != "seed" for s in result.node_stats[1:])
    # Tuples flow: each node's input equals the previous node's output.
    for prev, cur in zip(result.node_stats, result.node_stats[1:]):
        assert cur["tuples_in"] == prev["tuples_out"]


def test_dropout_query(small_federation):
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
        "FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, !P) < 3.5"
    )
    result = small_federation.client().submit(sql)
    assert len(result) > 0
    # Drop-out results must be disjoint from the mandatory-match results.
    sql_mand = sql.replace("!P", "P")
    mandatory = small_federation.client().submit(sql_mand)
    assert {r[0] for r in result.rows}.isdisjoint({r[0] for r in mandatory.rows})


def test_dropout_plus_mandatory_covers_pairs(small_federation):
    base_sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
    )
    pairs = {tuple(r) for r in small_federation.client().submit(base_sql).rows}
    with_p = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, "
        "FIRST:Primary_Object P "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5"
    )
    without_p = with_p.replace("XMATCH(O, T, P)", "XMATCH(O, T, !P)")
    matched = {
        tuple(r) for r in small_federation.client().submit(with_p).rows
    }
    unmatched = {
        tuple(r) for r in small_federation.client().submit(without_p).rows
    }
    assert matched | unmatched == pairs
    assert matched.isdisjoint(unmatched)


def test_two_archive_query(small_federation):
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 600.0) AND XMATCH(O, T) < 3.5"
    )
    result = small_federation.client().submit(sql)
    assert len(result) > 0
    assert len(result.node_stats) == 2


def test_limit_applied(small_federation):
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5 LIMIT 3"
    )
    result = small_federation.client().submit(sql)
    assert len(result) == 3


def test_single_archive_query_routed_directly(fresh_metrics):
    fed = fresh_metrics
    result = fed.client().submit(
        "SELECT t.object_id, t.ra FROM SDSS:Photo_Object t "
        "WHERE AREA(185.0, -0.5, 300.0) LIMIT 5"
    )
    assert 0 < len(result) <= 5
    metrics = fed.network.metrics
    assert metrics.message_count(phase="direct-query") == 2
    assert metrics.message_count(phase="crossmatch-chain") == 0


def test_empty_area_returns_no_rows(small_federation):
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(10.0, 40.0, 60.0) AND XMATCH(O, T) < 3.5"
    )
    result = small_federation.client().submit(sql)
    assert len(result) == 0


def test_invalid_query_returns_fault(small_federation):
    with pytest.raises(SoapFaultError):
        small_federation.client().submit("THIS IS NOT SQL")


def test_unknown_archive_returns_fault(small_federation):
    with pytest.raises(SoapFaultError):
        small_federation.client().submit(
            "SELECT a.x, b.y FROM NOPE:T1 a, SDSS:Photo_Object b "
            "WHERE XMATCH(a, b) < 1"
        )


def test_temp_tables_cleaned_up(small_federation):
    small_federation.client().submit(PAPER_SQL)
    for node in small_federation.nodes.values():
        leftovers = [
            name
            for name in node.db._tables
            if "tmp" in name
        ]
        assert leftovers == []


def test_phases_recorded(fresh_metrics):
    fed = fresh_metrics
    fed.client().submit(PAPER_SQL)
    phases = fed.network.metrics.bytes_by_phase()
    assert {"client", "performance-query", "crossmatch-chain"} <= set(phases)


def test_simulated_time_advances(fresh_metrics):
    fed = fresh_metrics
    before = fed.network.clock.now
    fed.client().submit(PAPER_SQL)
    assert fed.network.clock.now > before


def test_unsupported_config_knobs_rejected():
    """An unsupported enumerated knob fails at build time with an
    actionable ConfigurationError, not deep inside the first query."""
    from repro.errors import ConfigurationError
    from repro.federation.builder import FederationConfig, build_federation

    for knob, bad in [
        ("match_engine", "quadtree"),
        ("xmatch_kernel", "simd"),
        ("chain_mode", "broadcast"),
        ("stream_wire_format", "json"),
    ]:
        config = FederationConfig(n_bodies=10, **{knob: bad})
        with pytest.raises(ConfigurationError) as excinfo:
            build_federation(config)
        message = str(excinfo.value)
        assert knob in message
        assert repr(bad) in message


def test_match_engine_env_var_sets_default(monkeypatch):
    from repro.federation.builder import FederationConfig

    monkeypatch.setenv("SKYQUERY_MATCH_ENGINE", "zone")
    assert FederationConfig().match_engine == "zone"
    monkeypatch.delenv("SKYQUERY_MATCH_ENGINE")
    assert FederationConfig().match_engine == "htm"
    # An explicit argument always beats the environment.
    monkeypatch.setenv("SKYQUERY_MATCH_ENGINE", "zone")
    assert FederationConfig(match_engine="htm").match_engine == "htm"
