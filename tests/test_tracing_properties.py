"""Property-based tests for distributed tracing (hypothesis).

Two layers: randomly driven tracers (any open/close/annotate interleaving
yields a well-formed, serializable trace) and randomly configured
federations (any chain mode x chaos seed x batch size still produces a
trace satisfying the span invariants, with per-span bytes reconciling
exactly against the flat network counters).
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import SkyQueryError
from repro.federation.builder import FederationConfig, build_federation
from repro.services.retry import RetryPolicy
from repro.tracing import (
    Tracer,
    chain_hop_spans,
    find_spans,
    span_invariants,
    trace_from_dict,
)
from repro.transport.faults import FaultPlan
from repro.workloads.skysim import SkyField

XMATCH_SQL = (
    "SELECT O.object_id, T.obj_id "
    "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
    "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
)


# -- randomly driven tracers ----------------------------------------------------

ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from(["Call", "Pull", "work"])),
        st.tuples(st.just("close"), st.none()),
        st.tuples(st.just("advance"), st.floats(0.0, 2.0)),
        st.tuples(st.just("bytes"), st.integers(1, 10_000)),
        st.tuples(st.just("annotate"), st.sampled_from(["fault", "retry"])),
    ),
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(actions=ACTIONS)
def test_any_action_interleaving_yields_well_formed_trace(actions):
    state = {"now": 0.0}
    tracer = Tracer(clock_fn=lambda: state["now"])
    root = tracer.begin("root", host="h")
    open_count = 1
    total_bytes = 0
    for action, value in actions:
        if action == "open":
            tracer.begin(value, host="h", kind="client")
            open_count += 1
        elif action == "close" and open_count > 1:
            tracer.finish(tracer.current_span())
            open_count -= 1
        elif action == "advance":
            state["now"] += value
        elif action == "bytes":
            tracer.add_wire_bytes(value)
            total_bytes += value
        elif action == "annotate":
            tracer.annotate(value, kind="chaos")
    while tracer.current_span() is not None:
        tracer.finish(tracer.current_span())

    trace = tracer.trace()
    assert span_invariants(trace) == []
    assert trace.root is tracer.spans[0] is root
    assert trace.total_wire_bytes() == total_bytes
    assert tracer.untraced_bytes == 0


@settings(max_examples=100, deadline=None)
@given(actions=ACTIONS)
def test_trace_serialization_round_trips(actions):
    state = {"now": 0.0}
    tracer = Tracer(clock_fn=lambda: state["now"])
    tracer.begin("root", host="h")
    open_count = 1
    for action, value in actions:
        if action == "open":
            tracer.begin(value, host="h")
            open_count += 1
        elif action == "close" and open_count > 1:
            tracer.finish(tracer.current_span())
            open_count -= 1
        elif action == "advance":
            state["now"] += value
        elif action == "bytes":
            tracer.add_wire_bytes(value)
        elif action == "annotate":
            tracer.annotate(value, kind="chaos", attempt=1)
    while tracer.current_span() is not None:
        tracer.finish(tracer.current_span())

    trace = tracer.trace()
    rebuilt = trace_from_dict(json.loads(json.dumps(trace.to_dict())))
    assert [s.to_dict() for s in rebuilt.spans] == [
        s.to_dict() for s in trace.spans
    ]


# -- randomly configured federations --------------------------------------------


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(1, 500),
    chain_mode=st.sampled_from(["store-forward", "pipelined"]),
    batch_size=st.sampled_from([16, 64, 200]),
    chaos_seed=st.integers(0, 50),
    drop_rate=st.sampled_from([0.0, 0.05]),
)
def test_random_federations_emit_invariant_satisfying_traces(
    seed, chain_mode, batch_size, chaos_seed, drop_rate
):
    fed = build_federation(
        FederationConfig(
            n_bodies=150,
            seed=seed,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            chain_mode=chain_mode,
            stream_batch_size=batch_size,
            retry_policy=(
                RetryPolicy(
                    max_attempts=4, timeout_s=5.0, base_backoff_s=0.05,
                    jitter=0.0, seed=chaos_seed,
                )
                if drop_rate
                else None
            ),
        )
    )
    if drop_rate:
        fed.network.set_fault_plan(
            FaultPlan(seed=chaos_seed).drop_requests(rate=drop_rate)
        )
    try:
        result = fed.portal.submit(XMATCH_SQL)
    except SkyQueryError:
        result = None  # chaos won; the trace must still be well-formed

    tracer = fed.tracer
    for trace in tracer.traces():
        assert span_invariants(trace) == []
    spanned = sum(s.wire_bytes for s in tracer.spans)
    assert spanned + tracer.untraced_bytes == fed.network.metrics.total_bytes()

    if result is not None and not result.degraded and result.trace is not None:
        trace = result.trace
        rebuilt = trace_from_dict(trace.to_dict())
        assert [s.span_id for s in rebuilt.spans] == [
            s.span_id for s in trace.spans
        ]
        if chain_mode == "store-forward":
            hops = chain_hop_spans(trace)
            for outer, inner in zip(hops, hops[1:]):
                assert inner.start_s >= outer.start_s
                assert inner.end_s <= outer.end_s
        else:
            assert find_spans(trace, "PullBatch", kind="server")
