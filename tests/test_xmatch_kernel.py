"""The vectorized batch kernel against the scalar reference oracle.

These tests need only numpy (no scipy, no hypothesis) so the clean-install
CI job can run them after a bare ``pip install .``.
"""

import itertools
import random

import pytest

from repro.errors import GeometryError
from repro.htm.batch import batch_cap_covers
from repro.htm.cover import cover
from repro.sphere.coords import radec_to_vector
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.sphere.regions import Cap
from repro.units import arcsec_to_rad
from repro.xmatch.kernel import (
    ColumnarObjects,
    batch_dropout_step,
    batch_match_step,
)
from repro.xmatch.stream import (
    dropout_step,
    in_memory_search,
    match_step,
    run_chain,
    seed_tuples,
)
from repro.xmatch.tuples import LocalObject


def make_sky(n_bodies=40, seed=0, sigmas=(0.1, 0.3, 1.0), detection=(1.0, 1.0, 1.0)):
    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    bodies = [
        random_in_cap(rng, center, arcsec_to_rad(600.0)) for _ in range(n_bodies)
    ]
    archives = []
    for sigma_arcsec, rate in zip(sigmas, detection):
        objects = []
        for body_id, true in enumerate(bodies):
            if rng.random() >= rate:
                continue
            objects.append(
                LocalObject(
                    object_id=body_id,
                    position=perturb_gaussian(
                        rng, true, arcsec_to_rad(sigma_arcsec)
                    ),
                    attributes={"flux": float(body_id)},
                )
            )
        archives.append((objects, arcsec_to_rad(sigma_arcsec)))
    return archives


def assert_same_tuples(batch, scalar):
    """Same survivors in the same order with bitwise-equal accumulators."""
    assert [t.members for t in batch] == [t.members for t in scalar]
    assert [t.attributes for t in batch] == [t.attributes for t in scalar]
    for b, s in zip(batch, scalar):
        assert (b.acc.a, b.acc.ax, b.acc.ay, b.acc.az) == (
            s.acc.a, s.acc.ax, s.acc.ay, s.acc.az
        )


def test_batch_match_step_equals_scalar():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=30, seed=1)
    tuples = seed_tuples("A", obj_a, sig_a)
    scalar = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    batch = batch_match_step(tuples, "B", ColumnarObjects(obj_b), sig_b, 3.5)
    assert scalar  # the scenario actually matches something
    assert_same_tuples(batch, scalar)


def test_batch_match_step_accepts_plain_object_list():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=10, seed=2)
    tuples = seed_tuples("A", obj_a, sig_a)
    scalar = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    assert_same_tuples(
        batch_match_step(tuples, "B", obj_b, sig_b, 3.5), scalar
    )


def test_batch_dropout_step_equals_scalar():
    archives = make_sky(n_bodies=25, seed=3, detection=(1.0, 1.0, 0.5))
    (obj_a, sig_a), (obj_b, sig_b), (obj_c, sig_c) = archives
    tuples = match_step(
        seed_tuples("A", obj_a, sig_a), "B", in_memory_search(obj_b), sig_b, 3.5
    )
    scalar = dropout_step(tuples, in_memory_search(obj_c), sig_c, 3.5)
    batch = batch_dropout_step(tuples, ColumnarObjects(obj_c), sig_c, 3.5)
    assert scalar
    assert_same_tuples(batch, scalar)


def test_batch_steps_with_empty_inputs():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=5, seed=4)
    tuples = seed_tuples("A", obj_a, sig_a)
    assert batch_match_step([], "B", obj_b, sig_b, 3.5) == []
    assert batch_match_step(tuples, "B", [], sig_b, 3.5) == []
    assert batch_dropout_step([], obj_b, sig_b, 3.5) == []
    # An empty drop-out archive excludes nothing.
    assert batch_dropout_step(tuples, [], sig_b, 3.5) == tuples


def test_small_block_size_is_equivalent():
    (obj_a, sig_a), (obj_b, sig_b), _ = make_sky(n_bodies=40, seed=5)
    tuples = seed_tuples("A", obj_a, sig_a)
    scalar = match_step(tuples, "B", in_memory_search(obj_b), sig_b, 3.5)
    batch = batch_match_step(
        tuples, "B", obj_b, sig_b, 3.5, block_size=7
    )
    assert_same_tuples(batch, scalar)


def test_batch_match_rejects_nonpositive_sigma():
    (obj_a, sig_a), (obj_b, _), _ = make_sky(n_bodies=3, seed=6)
    tuples = seed_tuples("A", obj_a, sig_a)
    with pytest.raises(GeometryError):
        batch_match_step(tuples, "B", obj_b, 0.0, 3.5)


def test_run_chain_engines_agree_over_all_orders():
    archives = make_sky(n_bodies=15, seed=7, detection=(1.0, 0.9, 0.7))
    named = [("A", *archives[0]), ("B", *archives[1]), ("C", *archives[2])]
    for perm in itertools.permutations(named):
        for dropout_last in (False, True):
            spec = [
                (alias, objs, sigma, dropout_last and i == 2)
                for i, (alias, objs, sigma) in enumerate(perm)
            ]
            scalar = run_chain(spec, 3.5, engine="scalar")
            vectorized = run_chain(spec, 3.5, engine="vectorized")
            assert_same_tuples(vectorized, scalar)


def test_run_chain_default_engine_is_vectorized():
    archives = make_sky(n_bodies=10, seed=8)
    spec = [("A", archives[0][0], archives[0][1], False),
            ("B", archives[1][0], archives[1][1], False)]
    default = run_chain(spec, 3.5)
    assert_same_tuples(default, run_chain(spec, 3.5, engine="vectorized"))


def test_run_chain_rejects_unknown_engine():
    archives = make_sky(n_bodies=3, seed=9)
    spec = [("A", archives[0][0], archives[0][1], False)]
    with pytest.raises(ValueError):
        run_chain(spec, 3.5, engine="quantum")


def test_use_kdtree_false_selects_scalar():
    archives = make_sky(n_bodies=10, seed=10)
    spec = [("A", archives[0][0], archives[0][1], False),
            ("B", archives[1][0], archives[1][1], False)]
    legacy = run_chain(spec, 3.5, use_kdtree=False)
    assert_same_tuples(legacy, run_chain(spec, 3.5, engine="scalar"))


# -- batched HTM cap covers ------------------------------------------------


def random_caps(seed, count, radius_exp_range=(-6.0, -2.0)):
    rng = random.Random(seed)
    caps = []
    for _ in range(count):
        ra = rng.uniform(0.0, 360.0)
        dec = rng.uniform(-89.0, 89.0)
        radius = 10.0 ** rng.uniform(*radius_exp_range)
        caps.append(Cap(radec_to_vector(ra, dec), radius))
    return caps


@pytest.mark.parametrize("depth", [0, 4, 8, 12])
def test_batch_cap_covers_equal_scalar_cover(depth):
    caps = random_caps(seed=depth, count=60)
    caps.append(Cap(radec_to_vector(185.0, -0.5), 0.0))  # degenerate radius
    for cap, batched in zip(caps, batch_cap_covers(caps, depth)):
        reference = cover(cap, depth)
        assert batched.full == reference.full
        assert batched.partial == reference.partial


def test_batch_cap_covers_wide_caps():
    # Radii beyond pi/2 take the conservative PARTIAL branch.
    caps = [
        Cap(radec_to_vector(10.0, 40.0), 2.0),
        Cap(radec_to_vector(200.0, -70.0), 3.0),
        Cap((0.0, 0.0, 1.0), 1.6),
    ]
    for cap, batched in zip(caps, batch_cap_covers(caps, 4)):
        reference = cover(cap, 4)
        assert batched.full == reference.full
        assert batched.partial == reference.partial


def test_batch_cap_covers_empty():
    assert batch_cap_covers([], 8) == []
