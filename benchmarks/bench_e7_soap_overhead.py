"""E7 — Section 6: SOAP (de)serialization overhead vs binary middleware."""

import random

from repro.bench import run_e7_soap_overhead
from repro.soap.encoding import WireRowSet, encode_binary_rowset
from repro.soap.envelope import build_rpc_response, parse_rpc_response


def _rowset(n_rows=1000):
    rng = random.Random(3)
    return WireRowSet(
        [("object_id", "int"), ("ra", "double"), ("dec", "double"),
         ("type", "string")],
        [
            (i, rng.uniform(0, 360), rng.uniform(-90, 90),
             rng.choice(["GALAXY", "STAR", "QSO"]))
            for i in range(n_rows)
        ],
    )


def test_e7_report(benchmark, report_sink):
    report = report_sink(run_e7_soap_overhead(row_counts=(100, 1000, 5000)))
    # Shape check: binary is smaller and faster at every size.
    for n_rows in (100, 1000, 5000):
        rows = {row[1]: row for row in report.rows if row[0] == n_rows}
        assert rows["binary"][2] < rows["SOAP/XML"][2]  # bytes
        assert rows["binary"][6] < 1.0  # time ratio < 1

    rowset = _rowset()
    benchmark(lambda: build_rpc_response("Q", rowset))


def test_e7_xml_decode(benchmark):
    doc = build_rpc_response("Q", _rowset())
    benchmark(lambda: parse_rpc_response(doc))


def test_e7_binary_encode(benchmark):
    rowset = _rowset()
    benchmark(lambda: encode_binary_rowset(rowset))
