"""E12 — ablation: the candidate search radius used at each archive."""

from repro.bench import run_e12_radius_ablation


def test_e12_radius_ablation(benchmark, report_sink):
    report = report_sink(run_e12_radius_ablation(n_bodies=800))
    rows = {row[0]: row for row in report.rows}
    adaptive = rows["adaptive t*(sigma_c+1/sqrt(a))"]
    fixed = rows["fixed worst-case t*sum(sigma)"]
    tight = rows["tight t*sigma_c/2"]
    # Adaptive tests no more candidates than the fixed worst case while
    # keeping identical recall; the tight rule loses matches.
    assert adaptive[1] <= fixed[1]
    assert adaptive[2] == fixed[2]
    assert tight[2] < adaptive[2]

    benchmark(lambda: run_e12_radius_ablation(n_bodies=300))
