"""E5 — Section 5.1: chained partial results vs pull-to-portal."""

from repro.baselines.pull_mediator import PullMediator
from repro.bench import run_e5_chain_vs_pull
from repro.bench.scenarios import paper_query


def test_e5_chain_vs_pull(benchmark, report_sink, shared_federation):
    report = report_sink(
        run_e5_chain_vs_pull(n_bodies=1200, radii=(450.0, 900.0, 1800.0))
    )
    # Shape check: for the largest (least selective) AREA, the chain ships
    # fewer data bytes than pulling every archive's rows to the Portal.
    largest = max(row[0] for row in report.rows)
    bytes_at_largest = {
        row[1]: row[2] for row in report.rows if row[0] == largest
    }
    assert bytes_at_largest["chain (SkyQuery)"] < bytes_at_largest["pull-to-portal"]

    puller = PullMediator(shared_federation.portal)
    sql = paper_query(radius_arcsec=900.0)
    benchmark(lambda: puller.execute(sql))
