"""E22 — end-to-end deadlines: eager cancellation vs TTL-only reaping.

``SKYQUERY_BENCH_QUICK=1`` shrinks the federation to smoke-test sizes
(the CI benchmark job). The assertions are the experiment's acceptance
bars and hold at either scale: in BOTH chain modes the eager arm ends
the query with zero residual custody and zero reclaim latency while the
TTL-only twin holds the same state for the full reaper horizon, every
degraded answer is empty-with-warning rather than silently partial, and
a follow-up query on the cancelled federation still matches the oracle.
"""

import os

from repro.bench import run_e22_deadline_cancellation

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e22_deadline_cancellation(benchmark, report_sink):
    if QUICK:
        report = report_sink(
            run_e22_deadline_cancellation(n_bodies=300, storm_queries=3)
        )
    else:
        report = report_sink(run_e22_deadline_cancellation())

    rows = {(row[0], row[1]): row for row in report.rows}
    for mode in ("store-forward", "pipelined"):
        eager = rows[("eager cancel", mode)]
        ttl = rows[("TTL-only", mode)]
        # Eager cancellation strictly reduces wasted downstream custody:
        # zero leftovers at zero latency vs items parked until the TTL.
        assert eager[4] == 0, f"eager arm left residual state: {eager}"
        assert eager[6] == 0.0, f"eager arm had reclaim latency: {eager}"
        assert ttl[4] > eager[4], (ttl, eager)
        assert ttl[6] > 0.0, f"TTL arm claims instant reclaim: {ttl}"
        # The eager arm actually cancelled; the TTL arm never did.
        assert eager[2] > 0 and eager[3] > 0, eager
        assert ttl[2] == 0 and ttl[3] == 0, ttl
        # Cancellation costs wire bytes — nonzero, reported, and only
        # on the arm that fans out.
        assert eager[7] > 0.0 and ttl[7] == 0.0, (eager, ttl)
        # Neither arm perturbs the federation for the next caller.
        assert eager[8] == "oracle" and ttl[8] == "oracle", (eager, ttl)

    # Losing regimes are documented, not hidden.
    assert any("instant queries" in n for n in report.notes)
    assert any("cancel storm" in n for n in report.notes)
    assert any("LOWER bound" in n for n in report.notes)

    # Hot path: minting, checking, and expiring a budget is O(1) and
    # never touches the network.
    from repro.budget import QueryBudget, active_budget, use_budget

    def budget_lifecycle():
        budget = QueryBudget(100.0, "bench-q1")
        with use_budget(budget):
            current = active_budget()
            assert current is not None
            alive = not current.expired(50.0)
            dead = current.expired(200.0)
        return alive and dead

    assert benchmark(budget_lifecycle)
