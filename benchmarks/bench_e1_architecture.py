"""E1 — Figure 1: the Web-service architecture and registration handshake."""

from repro.bench import run_e1_architecture


def test_e1_registration_handshake(benchmark, report_sink):
    report = report_sink(run_e1_architecture(n_bodies=300))
    # Every handshake is Register -> GetSchema -> GetInfo.
    operations = {row[0] for row in report.rows}
    assert operations == {"Register", "GetSchema", "GetInfo"}

    # Hot path: one full node registration round trip over SOAP.
    from repro.bench.scenarios import fresh_federation

    fed = fresh_federation(n_bodies=100)
    node = fed.node("SDSS")
    registration_url = fed.portal.service_url("registration")

    benchmark(lambda: node.register_with_portal(registration_url))
