"""E4 — Section 5.3: count-star ordering reduces chain transmission."""

from collections import defaultdict

from repro.bench import run_e4_countstar_ordering
from repro.bench.scenarios import paper_query


def test_e4_countstar_ordering(benchmark, report_sink, shared_federation):
    report = report_sink(
        run_e4_countstar_ordering(n_bodies=1200, radii=(450.0, 900.0, 1800.0))
    )
    # Shape check: at every radius the paper's ordering ships no more bytes
    # than the worst baseline, and beats count-ascending.
    by_radius = defaultdict(dict)
    for radius, ordering, chain_bytes, _, _, _ in report.rows:
        by_radius[radius][ordering] = chain_bytes
    for radius, orderings in by_radius.items():
        assert orderings["count_desc"] <= max(orderings.values())
        assert orderings["count_desc"] <= orderings["count_asc"], radius

    client = shared_federation.client()
    sql = paper_query(radius_arcsec=900.0)
    benchmark(lambda: client.submit(sql, strategy="count_desc"))
