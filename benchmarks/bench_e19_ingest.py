"""E19 — extension: live ingest under load, snapshot reads, replica lag.

``SKYQUERY_BENCH_QUICK=1`` shrinks the federation to smoke-test size.
"""

import os

from repro.bench import run_e19_ingest_under_load

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e19_ingest_under_load(benchmark, report_sink):
    report = report_sink(
        run_e19_ingest_under_load(
            n_bodies=400 if QUICK else 800,
            rows_per_epoch=30 if QUICK else 60,
        )
    )
    rows = {(row[0], row[1]): row for row in report.rows}

    quiescent = rows[("quiescent", 0)]
    load0 = rows[("under load", 0)]
    # Epoch 0 under load IS the quiescent run (identical build, no ingest
    # yet): same matches, same simulated latency.
    assert load0[2] == quiescent[2]
    assert abs(load0[3] - quiescent[3]) < 1e-6

    # Each committed epoch grows the answer (both surveys saw the same
    # fresh bodies) and carries real fan-out: a positive commit makespan,
    # a positive replica catch-up lag, and staged bytes on the wire.
    epochs = sorted(e for arm, e in rows if arm == "under load" and e > 0)
    assert epochs, "no ingest epochs measured"
    last_matches = load0[2]
    for epoch in epochs:
        arm = rows[("under load", epoch)]
        assert arm[2] >= last_matches, f"epoch {epoch} shrank the answer"
        last_matches = arm[2]
        assert arm[5] > 0, f"epoch {epoch}: zero ingest makespan"
        assert arm[6] > 0, f"epoch {epoch}: mirror committed instantly?"
        assert arm[7] > 0, f"epoch {epoch}: no ingest bytes on the wire"
    assert rows[("under load", epochs[-1])][2] > load0[2], (
        "ingest never grew the match set — the epochs measured nothing"
    )

    # The repeatable read: pinned at the epoch-0 snapshot, the replay
    # stays at (or near) quiescent latency even after every ingest.
    pinned = rows[("pinned replay @0", 0)]
    assert pinned[2] == quiescent[2]
    loaded = rows[("under load", epochs[-1])]
    assert pinned[3] <= loaded[3], (
        "a pinned snapshot read should not pay the grown-table price"
    )

    # The losing regime is honest: replica fan-out costs real bytes —
    # the replicated commit stages strictly more than the no-replica arm
    # (every batch travels once per participant).
    bare = rows[("no-replica ingest", 1)]
    replicated = rows[("under load", epochs[0])]
    assert replicated[7] > bare[7] * 1.5, (
        f"fan-out cost missing: replicated {replicated[7]} B vs "
        f"bare {bare[7]} B"
    )
    assert bare[6] == 0.0  # and with no mirror there is nothing to lag

    # Hot path: one epoch commit (upload -> stage -> 2PC) on a
    # replica-backed federation.
    from repro.bench.scenarios import fresh_federation
    from repro.workloads.skysim import generate_bodies, observe_survey

    fed = fresh_federation(
        n_bodies=400 if QUICK else 800, seed=19, replicas=1, ingest=True,
        keep_epochs=None,
    )
    survey = next(s for s in fed.config.surveys if s.archive == "SDSS")
    obs = observe_survey(
        survey,
        generate_bodies(fed.config.sky_field, 30, fed.config.seed + 500),
        fed.config.seed + 500,
    )
    columns = list(obs.rows[0].keys())
    batch = [tuple(row[c] for c in columns) for row in obs.rows]
    client = fed.ingest_client("SDSS")

    def commit_one_epoch():
        result = client.ingest_rows(survey.primary_table, columns, batch)
        assert result.committed

    benchmark(commit_one_epoch)
