"""E3 — Figure 3: the seven-step execution flow of the sample query."""

from repro.bench import run_e3_execution_flow
from repro.bench.scenarios import paper_query


def test_e3_execution_flow(benchmark, report_sink, shared_federation):
    report = report_sink(run_e3_execution_flow(n_bodies=800))
    assert len(report.rows) == 7  # the seven steps of Figure 3

    client = shared_federation.client()
    sql = paper_query(radius_arcsec=600.0)
    benchmark(lambda: client.submit(sql))
