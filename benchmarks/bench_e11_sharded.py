"""E11-sharded — scatter-gather shards vs the monolithic twin.

Quick mode (CI): body counts small enough for the smoke job; the
crossover already shows at 30k bodies on a cluster link. The full-size
acceptance point (sharded beating monolithic at 1e5 bodies) runs with
the experiment's defaults via the report CLI.
"""

from repro.bench import run_e11_sharded


def test_e11_sharded(benchmark, report_sink):
    report = report_sink(run_e11_sharded(body_counts=(2_000, 30_000)))
    rows = {row[0]: row for row in report.rows if row[0] != "cluster link"}
    cluster = [row for row in report.rows if row[0] == "cluster link"]

    # Winning regime: compute-bound scans over a cluster link. The
    # speedup must be real at the larger count and grow with table size.
    speedups = [row[4] for row in cluster]
    assert speedups[-1] > 1.2
    assert speedups == sorted(speedups)

    # Losing regimes are measured, not hidden: an AREA pruned to one
    # shard parallelizes nothing, and a WAN between coordinator and
    # shards makes the fan-out re-shipping dominate outright.
    assert rows["single-shard AREA"][4] < 1.2
    assert rows["wan link"][4] < 1.0

    # Hot path: one sharded submission on a mid-size federation.
    from repro.federation.builder import FederationConfig, build_federation

    fed = build_federation(
        FederationConfig(
            n_bodies=10_000, seed=42, shards=4,
            processing_seconds_per_row=2e-4,
            default_latency_s=0.002, default_bandwidth_bps=100_000_000.0,
        )
    )
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T) < 3.5"
    )
    benchmark(lambda: fed.portal.submit(sql))
