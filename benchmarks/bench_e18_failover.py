"""E18 — extension: replica failover, checkpoint/resume vs restart vs degrade.

``SKYQUERY_BENCH_QUICK=1`` shrinks the federation to smoke-test size.
"""

import os

from repro.bench import run_e18_failover_recovery

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e18_failover_recovery(benchmark, report_sink):
    report = report_sink(
        run_e18_failover_recovery(n_bodies=400 if QUICK else 800)
    )
    rows = {(row[0], row[1]): row for row in report.rows}

    for mode in ("store-forward", "pipelined"):
        oracle = rows[(mode, "fault-free oracle")]
        resume = rows[(mode, "resume (late crash)")]
        restart = rows[(mode, "full restart (late crash)")]

        # Failover must keep the answer complete and byte-identical.
        for arm in (resume, restart):
            assert arm[2] == "yes", f"{mode}: crashed arm did not complete"
            assert arm[4] == "yes", f"{mode}: rows differ from oracle"
            assert arm[5] >= 1, f"{mode}: no failover recorded"
            assert arm[3] == oracle[3]

        # The acceptance criterion: checkpoint/resume re-transfers
        # strictly fewer bytes than a full restart after a late crash.
        assert resume[7] < restart[7], (
            f"{mode}: resume wasted {resume[7]} B, "
            f"restart wasted {restart[7]} B — resume must win strictly"
        )

        # The losing regime is honest: an early crash leaves nothing to
        # resume, so the two strategies waste (almost) the same bytes.
        early_resume = rows[(mode, "resume (early crash)")]
        early_restart = rows[(mode, "full restart (early crash)")]
        early_gap = abs(early_resume[7] - early_restart[7])
        late_gap = restart[7] - resume[7]
        assert early_gap < late_gap, (
            f"{mode}: the early-crash arms should show resume's advantage "
            f"collapsing (early gap {early_gap} B vs late gap {late_gap} B)"
        )

        # Without replicas the same crash degrades to an empty answer.
        degrade = rows[(mode, "degrade (late crash)")]
        assert degrade[2] == "degraded"
        assert degrade[3] == 0

    # Hot path: a replica-backed resilient submit, zero faults.
    from repro.bench.scenarios import fresh_federation, paper_query
    from repro.services.retry import RetryPolicy

    fed = fresh_federation(
        n_bodies=400 if QUICK else 800,
        retry_policy=RetryPolicy(max_attempts=3, timeout_s=5.0),
        replicas=1,
    )
    sql = paper_query(radius_arcsec=900.0)
    benchmark(lambda: fed.client().submit(sql))
