"""E21 — the multi-tenant scheduler + epoch-aware semantic cache.

``SKYQUERY_BENCH_QUICK=1`` shrinks the federation and workload to
smoke-test sizes (the CI benchmark job). The assertions are the
experiment's acceptance bars and hold at either scale: scheduling beats
the serial portal's makespan, the warmed cache answers the whole zipf
workload for zero simulated wire bytes, and every arm stays
row-identical to the serial uncached oracle.
"""

import os

from repro.bench import run_e21_scheduler_cache

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e21_scheduler_cache(benchmark, report_sink):
    if QUICK:
        report = report_sink(
            run_e21_scheduler_cache(
                n_bodies=300, n_queries=8, pool_size=3, ingest_rows=40
            )
        )
    else:
        report = report_sink(run_e21_scheduler_cache())

    rows = {row[0]: row for row in report.rows}
    serial = rows["serial uncached"]
    sched = rows["scheduler only"]
    cold = rows["scheduler + cache (cold)"]
    warm = rows["scheduler + cache (warm)"]
    unique = rows["unique queries + cache"]

    # Answers: every arm identical to the serial oracle.
    for row in (sched, cold, warm, unique):
        assert row[-1] == "yes", f"answers diverged from serial: {row}"

    # Scheduling beats the serial portal's makespan on the same workload.
    assert sched[4] < serial[4], (sched, serial)
    # The cache stacks: cold already no worse, warm strictly better on
    # p50/p99 and provably zero-wire.
    assert cold[4] <= sched[4], (cold, sched)
    assert warm[2] <= cold[2] and warm[3] <= cold[3], (warm, cold)
    assert warm[5] == 0, f"warm cache still shipped bytes: {warm}"
    assert warm[6] == warm[1], f"warm arm missed: {warm}"
    # Losing regime honesty: an all-unique workload cannot hit.
    assert unique[6] == 0, f"unique workload hit the cache: {unique}"

    # The invalidation note proves an ingest commit dropped entries and
    # the follow-up query re-executed at the new epoch.
    invalidation = next(n for n in report.notes if "Ingest invalidation" in n)
    assert "cache=None" in invalidation and "epoch 1" in invalidation

    # Hot path: one warmed exact hit — the cache's O(1) lookup.
    from repro.bench.scenarios import fresh_federation, paper_query

    fed = fresh_federation(n_bodies=300 if QUICK else 800, cache=True)
    sql = paper_query(900.0)
    fed.portal.submit(sql)

    def hit():
        result = fed.portal.submit(sql)
        assert result.cache == "exact"
        return result

    benchmark(hit)
