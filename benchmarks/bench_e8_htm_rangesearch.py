"""E8 — Sections 5.1/5.4: HTM range search vs full scan, plus depth ablation."""

from repro.bench import run_e8_htm_rangesearch


def test_e8_htm_rangesearch(benchmark, report_sink):
    report = report_sink(
        run_e8_htm_rangesearch(
            n_objects=20000, radii=(60.0, 300.0, 900.0), depths=(6, 8, 10, 12, 14)
        )
    )
    rows = {(row[0], row[1]): row for row in report.rows}
    for radius in (60.0, 300.0, 900.0):
        indexed = rows[("HTM depth 12", radius)]
        scanned = rows[("full scan", radius)]
        assert indexed[2] < scanned[2], "HTM must examine fewer rows"
        assert indexed[3] == scanned[3], "identical result counts"
    # Depth ablation: rows examined shrink monotonically with depth.
    depth_rows = [row[2] for row in report.rows if str(row[0]).startswith("depth")]
    assert depth_rows == sorted(depth_rows, reverse=True)

    # Hot path: one indexed AREA count on a 20k-object table.
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.table import SpatialSpec
    from repro.db.types import ColumnType
    from repro.sphere.coords import radec_to_vector, vector_to_radec
    from repro.sphere.random import random_in_cap
    from repro.units import arcsec_to_rad
    import random

    db = Database("bench", page_size=128, buffer_pages=4096)
    db.create_table(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
        spatial=SpatialSpec("ra", "dec", htm_depth=12),
    )
    rng = random.Random(1)
    center = radec_to_vector(185.0, -0.5)
    rows_data = []
    for i in range(20000):
        ra, dec = vector_to_radec(random_in_cap(rng, center, arcsec_to_rad(7200.0)))
        rows_data.append((i, ra, dec))
    db.insert("objects", rows_data)
    db.table("objects").spatial_entries()
    sql = "SELECT count(*) FROM objects o WHERE AREA(185.0, -0.5, 300.0)"
    benchmark(lambda: db.execute(sql))
