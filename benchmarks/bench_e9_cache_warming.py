"""E9 — Section 5.3: performance queries warm the buffer cache."""

from collections import defaultdict

from repro.bench import run_e9_cache_warming


def test_e9_cache_warming(benchmark, report_sink):
    report = report_sink(run_e9_cache_warming(n_bodies=2000))
    physical = defaultdict(dict)
    for scenario, archive, phys, _, _ in report.rows:
        physical[archive][scenario] = phys
    for archive, scenarios in physical.items():
        assert (
            scenarios["after performance queries"] <= scenarios["cold cache"]
        ), archive
    total_cold = sum(s["cold cache"] for s in physical.values())
    total_warm = sum(
        s["after performance queries"] for s in physical.values()
    )
    assert total_warm < total_cold, "warming must reduce physical reads overall"

    # Hot path: the warming pass itself (3 count-star queries over SOAP).
    from repro.bench.scenarios import fresh_federation, paper_query
    from repro.portal.decompose import decompose
    from repro.sql.parser import parse_query

    fed = fresh_federation(n_bodies=1000)
    decomposed = decompose(
        parse_query(paper_query(radius_arcsec=900.0)), fed.portal.catalog
    )
    benchmark(lambda: fed.portal.planner.performance_counts(decomposed))
