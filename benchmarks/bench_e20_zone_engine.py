"""E20 — the zone match engine vs the HTM reference at scale.

``SKYQUERY_BENCH_QUICK=1`` shrinks every layer to smoke-test sizes (the
CI benchmark job); at that scale the zone engine's index-build overhead
dominates and wall-clock ratios are meaningless, so quick mode checks
only the identity half of each row.
"""

import os

from repro.bench import run_e20_zone_engine

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e20_zone_engine(benchmark, report_sink):
    if QUICK:
        report = report_sink(
            run_e20_zone_engine(
                kernel_sizes=(200, 1_000),
                proc_sizes=(2_000,),
                chain_sizes=(1_000,),
                proc_tuples=500,
                repeats=1,
            )
        )
    else:
        report = report_sink(run_e20_zone_engine())
    for row in report.rows:
        scenario, bodies, _, _, _, speedup, _, _, identical = row
        # "-" marks a size where zone ran alone (nothing to compare).
        assert identical in ("yes", "-"), f"engines diverged: {row}"
        if not QUICK and scenario == "sp_xmatch" and bodies >= 100_000:
            # The acceptance bar: at 10^5+ bodies the isolated zone
            # kernel must beat the batched-HTM kernel.
            assert speedup > 1.0, f"zone not faster at scale: {row}"

    # Hot path: the zone window probe against a 20k-row archive.
    from repro.bench.experiments import _e20_database
    from repro.skynode.xmatch_proc import PROCEDURE_NAME

    n = 2_000 if QUICK else 20_000
    db, temp = _e20_database(n, 500 if QUICK else 2_000)

    def probe():
        return db.call_procedure(
            PROCEDURE_NAME, temp_table=temp.name, primary_table="objects",
            id_column="object_id", ra_column="ra", dec_column="dec",
            alias="X", sigma_arcsec=0.3, threshold=3.5, area=None,
            residual=None, attr_columns=(), kernel="vectorized",
            engine="zone",
        )

    benchmark(probe)
