"""E14 — extension: byte-calibrated ordering vs the paper's count star."""

from repro.bench import run_e14_byte_ordering


def test_e14_byte_ordering(benchmark, report_sink):
    report = report_sink(run_e14_byte_ordering(n_bodies=1500))
    rows = {row[0]: row for row in report.rows}
    count_row = rows["count_desc"]
    bytes_row = rows["bytes_desc"]
    # Same results, fewer chain bytes for the calibrated plan, and the
    # saving must exceed the calibration probes' own cost.
    assert count_row[4] == bytes_row[4]
    assert bytes_row[2] < count_row[2]
    assert (count_row[2] - bytes_row[2]) > bytes_row[3] * 0.5

    from repro.bench.scenarios import fresh_federation
    from repro.portal.calibration import CostCalibrator
    from repro.portal.decompose import decompose
    from repro.sql.parser import parse_query

    fed = fresh_federation(n_bodies=800)
    decomposed = decompose(
        parse_query(
            "SELECT O.object_id, O.i_flux, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
        ),
        fed.portal.catalog,
    )
    calibrator = CostCalibrator(fed.portal)
    benchmark(lambda: calibrator.calibrate(decomposed))
