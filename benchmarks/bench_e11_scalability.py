"""E11 — scaling the daisy chain from 2 to 5 federated archives."""

from repro.bench import run_e11_scalability


def test_e11_scalability(benchmark, report_sink):
    report = report_sink(run_e11_scalability(node_counts=(2, 3, 4, 5),
                                             n_bodies=800))
    # Chain messages grow linearly: 2 per hop, hops = archives.
    for row in report.rows:
        archives, _, messages = row[0], row[1], row[2]
        assert messages == 2 * archives
    # Tuple counts shrink monotonically along every chain.
    for row in report.rows:
        hops = [int(x) for x in str(row[4]).split(" -> ")]
        assert hops == sorted(hops, reverse=True)

    # Hot path: the 3-archive chain on the shared federation.
    from repro.bench.scenarios import paper_query, standard_federation

    fed = standard_federation(n_bodies=1200)
    client = fed.client()
    sql = paper_query(radius_arcsec=900.0)
    benchmark(lambda: client.submit(sql))
