"""Shared benchmark fixtures.

Every bench file prints its experiment report (the regenerated
figure/claim table from the paper) and benchmarks a representative hot
path with pytest-benchmark. Reports are also collected under
``benchmarks/_reports/`` so EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).resolve().parent / "_reports"


@pytest.fixture(scope="session")
def report_sink():
    """Write an ExperimentReport to stdout and benchmarks/_reports/.

    ``SKYQUERY_BENCH_QUICK`` runs shrink experiments to smoke sizes, so
    their tables would overwrite the committed full-size reports; quick
    mode prints but does not write.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    quick = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))

    def sink(report):
        text = report.to_text()
        print("\n" + text)
        if not quick:
            path = REPORT_DIR / f"{report.exp_id.lower()}.md"
            path.write_text(report.to_markdown(), encoding="utf-8")
        return report

    return sink


@pytest.fixture(scope="session")
def shared_federation():
    """One default federation reused by several benchmarks."""
    from repro.bench.scenarios import standard_federation

    return standard_federation(n_bodies=1200)
