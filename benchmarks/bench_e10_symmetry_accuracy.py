"""E10 — Section 5.4: order symmetry; accuracy vs ground truth."""

from repro.bench import run_e10_symmetry_accuracy


def test_e10_symmetry_accuracy(benchmark, report_sink):
    report = report_sink(
        run_e10_symmetry_accuracy(n_bodies=1200, thresholds=(1.0, 2.0, 3.5, 5.0))
    )
    # Orders must agree at every threshold (full symmetry).
    assert all(row[4] for row in report.rows)
    # Recall grows monotonically with the threshold.
    recalls = [row[3] for row in report.rows]
    assert recalls == sorted(recalls)
    # At the paper's 3.5-sigma threshold both precision and recall are high.
    at_35 = next(row for row in report.rows if row[0] == 3.5)
    assert at_35[2] > 0.95 and at_35[3] > 0.95

    from repro.bench.scenarios import standard_federation

    fed = standard_federation(n_bodies=1200)
    client = fed.client()
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
    )
    benchmark(lambda: client.submit(sql))
