"""E2 — Figure 2: XMATCH selects {aO,aT,aP}; XMATCH with !P selects {bO,bT}."""

from repro.bench import build_figure2_federation, run_e2_xmatch_semantics


def test_e2_figure2_scenario(benchmark, report_sink):
    report = report_sink(run_e2_xmatch_semantics())
    assert all(row[3] for row in report.rows), "Figure 2 semantics must hold"

    fed, _ = build_figure2_federation()
    client = fed.client()
    sql = (
        "SELECT O.object_id, T.object_id, P.object_id "
        "FROM SDSS:objects O, TWOMASS:objects T, FIRST:objects P "
        "WHERE AREA(185.0, -0.5, 180.0) AND XMATCH(O, T, P) < 3.5"
    )
    benchmark(lambda: client.submit(sql))
