"""E15 — extension: fault injection, retries, graceful degradation."""

from repro.bench import run_e15_fault_recovery


def test_e15_fault_recovery(benchmark, report_sink):
    report = report_sink(run_e15_fault_recovery(n_bodies=600))
    rows = {row[0]: row for row in report.rows}

    # Resilience must be ~free when the network is clean...
    baseline_s = rows["single-shot (seed)"][7]
    resilient_s = rows["resilient, 0% faults"][7]
    assert resilient_s <= baseline_s * 1.05, (
        "retry/timeout/probe machinery must cost <=5% at zero faults"
    )

    # ...and every faulted arm must complete with identical rows.
    for rate in ("5%", "10%", "20%"):
        row = rows[f"resilient, {rate} request drops"]
        assert row[1] == "yes", f"{rate} drops: query did not complete"
        assert row[3] == "yes", f"{rate} drops: rows differ from fault-free"
        assert row[6] > 0, f"{rate} drops: the plan injected no faults"

    # A permanently partitioned drop-out archive degrades, not raises.
    degraded = rows["resilient, drop-out archive partitioned"]
    assert degraded[1] == "degraded"
    assert degraded[2] > 0, "the degraded cross-match still returns rows"

    # Hot path: a resilient submit (health probes + armed retries, 0 faults).
    from repro.bench.scenarios import fresh_federation, paper_query
    from repro.services.retry import RetryPolicy

    fed = fresh_federation(
        n_bodies=600,
        retry_policy=RetryPolicy(max_attempts=4, timeout_s=8.0),
        health_probes=True,
    )
    sql = paper_query(radius_arcsec=900.0)
    benchmark(lambda: fed.client().submit(sql))
