"""E16 — the vectorized batch kernel vs the scalar reference loop.

``SKYQUERY_BENCH_QUICK=1`` shrinks the scenario to smoke-test sizes (the
CI benchmark job); wall-clock ratios are noisy at that scale, so quick
mode checks only the correctness half of each row.
"""

import os

from repro.bench import run_e16_kernel_speedup

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e16_kernel_speedup(benchmark, report_sink):
    if QUICK:
        report = report_sink(
            run_e16_kernel_speedup(node_counts=(3,), n_bodies=400, repeats=1)
        )
    else:
        report = report_sink(
            run_e16_kernel_speedup(node_counts=(3, 5), n_bodies=1200)
        )
    for row in report.rows:
        speedup = row[4]
        # The acceptance bar: strictly faster wall-clock with identical
        # match sets and byte-identical wire traffic.
        if not QUICK:
            assert speedup > 1.0, f"vectorized kernel not faster: {row}"
        assert row[6] == "yes", f"wire bytes diverged: {row}"
        assert row[7] == "yes", f"node stats diverged: {row}"

    # Hot path: the vectorized 3-archive chain end to end.
    from repro.bench.experiments import _e16_federation

    fed = _e16_federation(3, 400 if QUICK else 1200, "vectorized")
    client = fed.client()
    sql = (
        "SELECT S0.object_id "
        "FROM SURV0:objects S0, SURV1:objects S1, SURV2:objects S2 "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(S0, S1, S2) < 3.5"
    )
    benchmark(lambda: client.submit(sql))


def test_kernel_only_speedup_isolated(report_sink):
    """The kernel itself (no SOAP, no simulation): run_chain at scale."""
    import random
    import time

    from repro.sphere.coords import radec_to_vector
    from repro.sphere.random import perturb_gaussian, random_in_cap
    from repro.units import arcsec_to_rad
    from repro.xmatch.stream import run_chain
    from repro.xmatch.tuples import LocalObject

    rng = random.Random(12)
    center = radec_to_vector(185.0, -0.5)
    bodies = [
        random_in_cap(rng, center, arcsec_to_rad(1200.0)) for _ in range(2000)
    ]
    spec = []
    for alias, sigma_arcsec in (("A", 0.1), ("B", 0.3), ("C", 0.5)):
        sigma = arcsec_to_rad(sigma_arcsec)
        objects = [
            LocalObject(object_id=i, position=perturb_gaussian(rng, b, sigma))
            for i, b in enumerate(bodies)
        ]
        spec.append((alias, objects, sigma, False))

    elapsed = {}
    survivors = {}
    for engine in ("scalar", "vectorized"):
        started = time.perf_counter()
        tuples = run_chain(spec, 3.5, engine=engine)
        elapsed[engine] = time.perf_counter() - started
        survivors[engine] = [t.members for t in tuples]
    assert survivors["vectorized"] == survivors["scalar"]
    speedup = elapsed["scalar"] / elapsed["vectorized"]
    # Conservative floor; typically 40-50x on this workload.
    assert speedup > 5.0, f"isolated kernel speedup only {speedup:.1f}x"
