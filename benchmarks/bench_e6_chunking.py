"""E6 — Section 6: the XML parser memory ceiling and chunked transfers."""

from repro.bench import run_e6_chunking


def test_e6_chunking(benchmark, report_sink):
    report = report_sink(
        run_e6_chunking(
            n_bodies=2500,
            parser_memory_limit=600_000,
            budgets=(32_768, 65_536, 131_072),
        )
    )
    outcomes = {row[0]: row[1] for row in report.rows}
    assert outcomes["monolithic"].startswith("FAULT"), (
        "monolithic transfer must hit the parser memory ceiling"
    )
    assert all(
        outcome.startswith("ok")
        for mode, outcome in outcomes.items()
        if mode.startswith("chunked")
    )
    # Smaller chunk budgets -> more chain messages.
    msgs = [row[2] for row in report.rows if str(row[0]).startswith("chunked")]
    assert msgs == sorted(msgs, reverse=True)

    # Hot path: one chunked end-to-end query.
    from repro.bench.scenarios import fresh_federation

    fed = fresh_federation(
        n_bodies=1200, parser_memory_limit=600_000, chunk_budget_bytes=65_536
    )
    client = fed.client()
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T) < 3.5"
    )
    benchmark(lambda: client.submit(sql))
