"""E13 — ablation: asynchronous vs sequential performance queries."""

from repro.bench import run_e13_async_dispatch


def test_e13_async_dispatch(benchmark, report_sink):
    report = report_sink(run_e13_async_dispatch(n_bodies=800))
    rows = {row[0]: row for row in report.rows}
    sequential = rows["sequential"][1]
    parallel = rows["asynchronous (paper)"][1]
    assert parallel < sequential, (
        "asynchronous dispatch must beat sequential over uneven links"
    )

    # Hot path: the (parallel) performance-count pass.
    from repro.bench.scenarios import fresh_federation, paper_query
    from repro.portal.decompose import decompose
    from repro.sql.parser import parse_query

    fed = fresh_federation(n_bodies=600)
    decomposed = decompose(
        parse_query(paper_query(radius_arcsec=900.0)), fed.portal.catalog
    )
    benchmark(lambda: fed.portal.planner.performance_counts(decomposed))
