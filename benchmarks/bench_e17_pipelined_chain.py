"""E17 — pipelined streaming chain vs store-and-forward.

``SKYQUERY_BENCH_QUICK=1`` shrinks the sweep to smoke-test sizes (used by
the CI benchmark job). Tiny scenarios sit in the latency-dominated regime
where pipelining legitimately loses, so quick mode checks only result
equivalence and byte reduction; the full run also enforces the speedup in
the transfer-dominated arms.
"""

import os

from repro.bench import run_e17_pipelined_chain

QUICK = bool(os.environ.get("SKYQUERY_BENCH_QUICK"))


def test_e17_pipelined_chain(benchmark, report_sink):
    if QUICK:
        report = report_sink(
            run_e17_pipelined_chain(
                node_counts=(3,),
                body_counts=(400,),
                batch_sizes=(50,),
                bandwidths=(250_000.0,),
            )
        )
    else:
        report = report_sink(run_e17_pipelined_chain())
    for row in report.rows:
        bodies, bandwidth = row[1], row[3]
        speedup, byte_ratio, identical = row[6], row[9], row[10]
        assert identical == "yes", f"modes diverged: {row}"
        # The colset encoding must shrink the chain's wire bytes.
        assert byte_ratio > 1.0, f"no wire-byte reduction: {row}"
        # Pipelining wins where transfer dominates latency: the largest
        # scenario at default-or-slower links. Small payloads on fast
        # links pay the extra chain fill and legitimately lose.
        if not QUICK and bodies >= 8000 and bandwidth <= 1_000_000:
            assert speedup > 1.0, f"pipelined chain not faster: {row}"

    # Hot path: the pipelined 3-archive chain end to end.
    from repro.bench.experiments import _e17_federation

    fed = _e17_federation(3, 400 if QUICK else 1200, 1_000_000.0)
    fed.portal.chain_mode = "pipelined"
    client = fed.client()
    sql = (
        "SELECT S0.object_id "
        "FROM SURV0:objects S0, SURV1:objects S1, SURV2:objects S2 "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(S0, S1, S2) < 3.5"
    )
    benchmark(lambda: client.submit(sql))
