"""SkyQuery reproduction: a Web-service federation of astronomy archives.

Reproduction of *SkyQuery: A Web Service Approach to Federate Databases*
(Malik, Szalay, Budavari, Thakar — CIDR 2003): the wrapper–mediator
federation (Portal + SkyNodes over SOAP/WSDL), the cross-match query
language (AREA / XMATCH with drop-outs), the incremental chi-squared
cross-match algorithm, and the count-star query optimization — on top of
fully implemented substrates (spherical geometry, HTM index, a relational
engine, an XML/SOAP stack, and a simulated network with transmission-cost
accounting).

Quickstart::

    from repro import build_federation, FederationConfig

    fed = build_federation(FederationConfig(n_bodies=500))
    client = fed.client()
    result = client.submit(
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
    )
    for row in result.rows:
        print(row)
"""

from repro.client import ClientResult, SkyQueryClient, format_table
from repro.errors import SkyQueryError
from repro.federation import (
    FIRST,
    SDSS,
    TWOMASS,
    Federation,
    FederationConfig,
    build_federation,
    default_surveys,
)
from repro.portal import Portal
from repro.portal.planner import OrderingStrategy
from repro.skynode import ArchiveInfo, SkyNode
from repro.sql import parse_query, to_sql
from repro.tracing import (
    Span,
    Trace,
    Tracer,
    render_flamegraph,
    to_chrome_trace,
    to_chrome_trace_json,
)
from repro.transport import SimulatedNetwork
from repro.workloads import SkyField, SurveySpec

__version__ = "1.0.0"

__all__ = [
    "ClientResult",
    "SkyQueryClient",
    "format_table",
    "SkyQueryError",
    "FIRST",
    "SDSS",
    "TWOMASS",
    "Federation",
    "FederationConfig",
    "build_federation",
    "default_surveys",
    "Portal",
    "OrderingStrategy",
    "ArchiveInfo",
    "SkyNode",
    "parse_query",
    "to_sql",
    "Span",
    "Trace",
    "Tracer",
    "render_flamegraph",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "SimulatedNetwork",
    "SkyField",
    "SurveySpec",
    "__version__",
]
