"""Semantic validation of parsed cross-match queries.

Run by the Portal before planning: catches inconsistencies that the grammar
cannot (duplicate aliases, XMATCH over unknown archives, multiple XMATCH or
AREA clauses, dropout-only matches) and classifies WHERE conjuncts by which
archives they touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.sql.ast import (
    AreaClause,
    AreaLike,
    Expr,
    PolygonClause,
    Query,
    XMatchClause,
    conjuncts,
    referenced_aliases,
)


@dataclass
class QueryAnalysis:
    """The validated decomposition-relevant structure of a cross-match query.

    ``local_conjuncts`` maps each table alias to the WHERE conjuncts that
    reference only that alias (pushable to its SkyNode); ``cross_conjuncts``
    are the conjuncts spanning several archives (evaluated at the Portal on
    the final joined tuples, since no single archive can decide them).
    """

    area: Optional[AreaLike]
    xmatch: Optional[XMatchClause]
    local_conjuncts: Dict[str, List[Expr]] = field(default_factory=dict)
    cross_conjuncts: List[Expr] = field(default_factory=list)
    aliases: Tuple[str, ...] = ()


def validate_query(query: Query) -> QueryAnalysis:
    """Validate a query and classify its WHERE conjuncts.

    Raises :class:`~repro.errors.ValidationError` on semantic problems.
    """
    if not query.tables:
        raise ValidationError("query has no FROM tables")

    aliases: List[str] = []
    for table in query.tables:
        alias = table.effective_alias
        if alias in aliases:
            raise ValidationError(f"duplicate table alias {alias!r}")
        aliases.append(alias)
    alias_set = frozenset(aliases)

    area: Optional[AreaLike] = None
    xmatch: Optional[XMatchClause] = None
    analysis = QueryAnalysis(area=None, xmatch=None, aliases=tuple(aliases))
    analysis.local_conjuncts = {alias: [] for alias in aliases}

    for conjunct in conjuncts(query.where):
        if isinstance(conjunct, (AreaClause, PolygonClause)):
            if area is not None:
                raise ValidationError("multiple AREA clauses in one query")
            area = conjunct
            continue
        if isinstance(conjunct, XMatchClause):
            if xmatch is not None:
                raise ValidationError("multiple XMATCH clauses in one query")
            _check_xmatch(conjunct, alias_set)
            xmatch = conjunct
            continue
        if _contains_spatial(conjunct):
            raise ValidationError(
                "AREA/XMATCH may only appear as top-level AND conditions"
            )
        refs = referenced_aliases(conjunct)
        unknown = refs - alias_set
        if unknown:
            raise ValidationError(
                f"condition references unknown alias(es) {sorted(unknown)!r}"
            )
        if len(refs) <= 1:
            target = next(iter(refs), aliases[0])
            analysis.local_conjuncts[target].append(conjunct)
        else:
            analysis.cross_conjuncts.append(conjunct)

    if len(query.tables) > 1 and xmatch is None:
        raise ValidationError(
            "queries over multiple archives must have an XMATCH clause"
        )
    if len(query.tables) > 1:
        from repro.db.aggregates import is_aggregate_query

        if is_aggregate_query(query):
            raise ValidationError(
                "aggregates/GROUP BY are not supported in cross-match "
                "queries; run them against a single archive"
            )
    _check_select_aliases(query, alias_set)
    _check_order_by(query, alias_set)

    analysis.area = area
    analysis.xmatch = xmatch
    return analysis


def _check_xmatch(clause: XMatchClause, alias_set: frozenset[str]) -> None:
    seen: set[str] = set()
    for term in clause.terms:
        if term.alias not in alias_set:
            raise ValidationError(f"XMATCH references unknown alias {term.alias!r}")
        if term.alias in seen:
            raise ValidationError(f"XMATCH lists alias {term.alias!r} twice")
        seen.add(term.alias)
    if not clause.mandatory:
        raise ValidationError("XMATCH needs at least one mandatory (non-!) archive")
    if len(clause.mandatory) < 2 and clause.dropouts:
        raise ValidationError(
            "XMATCH with dropouts needs at least two mandatory archives "
            "to define a mean position"
        )
    if clause.threshold != clause.threshold or clause.threshold <= 0:
        raise ValidationError("XMATCH threshold must be a positive number")


def _check_select_aliases(query: Query, alias_set: frozenset[str]) -> None:
    for item in query.items:
        refs = referenced_aliases(item.expr) if not _is_star(item.expr) else frozenset()
        unknown = refs - alias_set
        if unknown:
            raise ValidationError(
                f"SELECT item references unknown alias(es) {sorted(unknown)!r}"
            )


def _check_order_by(query: Query, alias_set: frozenset[str]) -> None:
    for item in query.order_by:
        if _contains_spatial(item.expr):
            raise ValidationError("ORDER BY cannot contain AREA/XMATCH")
        unknown = referenced_aliases(item.expr) - alias_set
        if unknown:
            raise ValidationError(
                f"ORDER BY references unknown alias(es) {sorted(unknown)!r}"
            )


def _is_star(expr: Expr) -> bool:
    from repro.sql.ast import Star

    return isinstance(expr, Star)


def _contains_spatial(expr: Expr) -> bool:
    if isinstance(expr, (AreaClause, PolygonClause, XMatchClause)):
        return True
    from repro.sql.ast import BinaryOp, FuncCall, IsNull, UnaryOp

    if isinstance(expr, BinaryOp):
        return _contains_spatial(expr.left) or _contains_spatial(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_spatial(expr.operand)
    if isinstance(expr, IsNull):
        return _contains_spatial(expr.operand)
    if isinstance(expr, FuncCall):
        return any(_contains_spatial(a) for a in expr.args)
    return False
