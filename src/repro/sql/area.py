"""Bridging AREA clauses to spherical regions and the plan wire format.

Both AREA shapes — the paper's circle and its Section 6 polygon extension —
flow through the same places (engine scans, the cross-match stored
procedure, the execution plan); this module is the single point where a
clause becomes a :class:`~repro.sphere.regions.Region` or a SOAP struct.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import PlanningError
from repro.sphere.regions import Cap, ConvexPolygon, Region
from repro.sql.ast import AreaClause, AreaLike, PolygonClause


def is_area(expr: object) -> bool:
    """True for either AREA clause shape."""
    return isinstance(expr, (AreaClause, PolygonClause))


def region_for(clause: AreaLike) -> Region:
    """The spherical region an AREA clause denotes."""
    if isinstance(clause, AreaClause):
        return Cap.from_radec(
            clause.ra_deg, clause.dec_deg, clause.radius_arcsec
        )
    if isinstance(clause, PolygonClause):
        return ConvexPolygon.from_radec(clause.vertices)
    raise TypeError(f"not an AREA clause: {clause!r}")


def area_to_wire(clause: Optional[AreaLike]) -> Optional[Dict[str, Any]]:
    """Encode an AREA clause as a SOAP struct (None passes through)."""
    if clause is None:
        return None
    if isinstance(clause, AreaClause):
        return {
            "shape": "circle",
            "ra_deg": clause.ra_deg,
            "dec_deg": clause.dec_deg,
            "radius_arcsec": clause.radius_arcsec,
        }
    if isinstance(clause, PolygonClause):
        coords: list[float] = []
        for ra, dec in clause.vertices:
            coords.extend((ra, dec))
        return {"shape": "polygon", "coords": coords}
    raise TypeError(f"not an AREA clause: {clause!r}")


def area_from_wire(data: Optional[Dict[str, Any]]) -> Optional[AreaLike]:
    """Decode :func:`area_to_wire` output."""
    if not data:
        return None
    shape = data.get("shape", "circle")
    if shape == "circle":
        return AreaClause(
            ra_deg=float(data["ra_deg"]),
            dec_deg=float(data["dec_deg"]),
            radius_arcsec=float(data["radius_arcsec"]),
        )
    if shape == "polygon":
        coords = [float(c) for c in data["coords"]]
        if len(coords) < 6 or len(coords) % 2 != 0:
            raise PlanningError("polygon area wire struct has bad coords")
        return PolygonClause(
            vertices=tuple(
                (coords[i], coords[i + 1]) for i in range(0, len(coords), 2)
            )
        )
    raise PlanningError(f"unknown AREA shape {shape!r}")
