"""Tokenizer for the SkyQuery SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, List

from repro.errors import SQLSyntaxError


class TokenType(Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "AND",
        "OR",
        "NOT",
        "AS",
        "AREA",
        "XMATCH",
        "COUNT",
        "NULL",
        "TRUE",
        "FALSE",
        "LIMIT",
        "INSERT",
        "INTO",
        "VALUES",
        "CREATE",
        "DROP",
        "TABLE",
        "TEMP",
        "ORDER",
        "BY",
        "GROUP",
        "HAVING",
        "ASC",
        "DESC",
        "BETWEEN",
        "IS",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = {",", "(", ")", ".", ":", "!", ";"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, ttype: TokenType, value: str | None = None) -> bool:
        """True if this token has the given type (and value, if provided)."""
        if self.type is not ttype:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> List[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch.isspace():
            i += 1
            continue
        col = i - line_start + 1
        if ch == "-" and text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    if j + 1 < n and (text[j + 1].isdigit() or text[j + 1] in "+-"):
                        seen_exp = True
                        j += 2
                    else:
                        break
                else:
                    break
            yield Token(TokenType.NUMBER, text[i:j], line, col)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.upper(), line, col)
            else:
                yield Token(TokenType.IDENT, word, line, col)
            i = j
            continue
        if ch == "'":
            j = i + 1
            chunks: List[str] = []
            while True:
                if j >= n:
                    raise SQLSyntaxError("unterminated string literal", line, col)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            yield Token(TokenType.STRING, "".join(chunks), line, col)
            i = j + 1
            continue
        matched_op = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched_op is not None:
            yield Token(TokenType.OP, matched_op, line, col)
            i += len(matched_op)
            continue
        if ch in _PUNCT:
            yield Token(TokenType.PUNCT, ch, line, col)
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", line, col)
    yield Token(TokenType.EOF, "", line, n - line_start + 1)
