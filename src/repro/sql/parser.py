"""Recursive-descent parser for the SkyQuery SQL dialect."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    AreaClause,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    OrderItem,
    PolygonClause,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    XMatchClause,
    XMatchTerm,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers ----------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.type is not TokenType.EOF:
            self._pos += 1
        return tok

    def _check(self, ttype: TokenType, value: Optional[str] = None) -> bool:
        return self._cur.matches(ttype, value)

    def _accept(self, ttype: TokenType, value: Optional[str] = None) -> Optional[Token]:
        if self._check(ttype, value):
            return self._advance()
        return None

    def _expect(self, ttype: TokenType, value: Optional[str] = None) -> Token:
        if not self._check(ttype, value):
            wanted = value or ttype.value
            raise SQLSyntaxError(
                f"expected {wanted!r}, found {self._cur.value!r}",
                self._cur.line,
                self._cur.column,
            )
        return self._advance()

    # -- productions --------------------------------------------------------

    def query(self) -> Query:
        self._expect(TokenType.KEYWORD, "SELECT")
        distinct = self._accept(TokenType.KEYWORD, "DISTINCT") is not None
        items = self._select_list()
        self._expect(TokenType.KEYWORD, "FROM")
        tables = self._table_list()
        where: Optional[Expr] = None
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self.expression()
        group_by: List[Expr] = []
        if self._accept(TokenType.KEYWORD, "GROUP"):
            self._expect(TokenType.KEYWORD, "BY")
            group_by.append(self.expression())
            while self._accept(TokenType.PUNCT, ","):
                group_by.append(self.expression())
        having: Optional[Expr] = None
        if self._accept(TokenType.KEYWORD, "HAVING"):
            having = self.expression()
        order_by: List[OrderItem] = []
        if self._accept(TokenType.KEYWORD, "ORDER"):
            self._expect(TokenType.KEYWORD, "BY")
            order_by.append(self._order_item())
            while self._accept(TokenType.PUNCT, ","):
                order_by.append(self._order_item())
        limit: Optional[int] = None
        if self._accept(TokenType.KEYWORD, "LIMIT"):
            tok = self._expect(TokenType.NUMBER)
            limit = int(float(tok.value))
        self._accept(TokenType.PUNCT, ";")
        self._expect(TokenType.EOF)
        return Query(
            items=tuple(items),
            tables=tuple(tables),
            distinct=distinct,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
        )

    def _order_item(self) -> OrderItem:
        expr = self.expression()
        descending = False
        if self._accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self._accept(TokenType.KEYWORD, "ASC")
        return OrderItem(expr, descending)

    def _select_list(self) -> List[SelectItem]:
        if self._check(TokenType.OP, "*"):
            self._advance()
            return [SelectItem(Star())]
        items = [self._select_item()]
        while self._accept(TokenType.PUNCT, ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self.expression()
        alias: Optional[str] = None
        if self._accept(TokenType.KEYWORD, "AS"):
            alias = self._expect(TokenType.IDENT).value
        elif self._check(TokenType.IDENT):
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _table_list(self) -> List[TableRef]:
        tables = [self._table_ref()]
        while self._accept(TokenType.PUNCT, ","):
            tables.append(self._table_ref())
        return tables

    def _table_ref(self) -> TableRef:
        first = self._expect(TokenType.IDENT).value
        archive: Optional[str] = None
        table = first
        if self._accept(TokenType.PUNCT, ":"):
            archive = first
            table = self._expect(TokenType.IDENT).value
        alias: Optional[str] = None
        if self._check(TokenType.IDENT):
            alias = self._advance().value
        return TableRef(archive=archive, table=table, alias=alias)

    # Expression grammar, loosest to tightest binding.

    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept(TokenType.KEYWORD, "OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept(TokenType.KEYWORD, "AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept(TokenType.KEYWORD, "NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        if self._accept(TokenType.KEYWORD, "IS"):
            negated = self._accept(TokenType.KEYWORD, "NOT") is not None
            self._expect(TokenType.KEYWORD, "NULL")
            return IsNull(left, negated)
        if self._check(TokenType.KEYWORD, "BETWEEN"):
            self._advance()
            low = self._additive()
            self._expect(TokenType.KEYWORD, "AND")
            high = self._additive()
            # Desugar: `x BETWEEN a AND b` == `x >= a AND x <= b`.
            return BinaryOp(
                "AND", BinaryOp(">=", left, low), BinaryOp("<=", left, high)
            )
        if self._cur.type is TokenType.OP and self._cur.value in _COMPARISONS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._additive()
            # `XMATCH(A, B) < t` parses as a comparison whose left side is
            # the XMATCH term list; fold it into a proper XMatchClause here.
            if isinstance(left, XMatchClause) and left.threshold != left.threshold:
                if op != "<":
                    raise SQLSyntaxError("XMATCH supports only the '<' comparison")
                threshold = _numeric_value(right)
                if threshold is None:
                    raise SQLSyntaxError("XMATCH threshold must be a number")
                return XMatchClause(left.terms, threshold)
            return BinaryOp(op, left, right)
        if isinstance(left, XMatchClause) and left.threshold != left.threshold:
            raise SQLSyntaxError("XMATCH clause must be followed by '< threshold'")
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while self._cur.type is TokenType.OP and self._cur.value in ("+", "-"):
            op = self._advance().value
            left = BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while self._cur.type is TokenType.OP and self._cur.value in ("*", "/"):
            op = self._advance().value
            left = BinaryOp(op, left, self._unary())
        return left

    def _unary(self) -> Expr:
        if self._accept(TokenType.OP, "-"):
            return UnaryOp("-", self._unary())
        if self._accept(TokenType.OP, "+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        tok = self._cur
        if tok.type is TokenType.NUMBER:
            self._advance()
            text = tok.value
            value = float(text) if any(c in text for c in ".eE") else int(text)
            return Literal(value)
        if tok.type is TokenType.STRING:
            self._advance()
            return Literal(tok.value)
        if tok.type is TokenType.KEYWORD:
            if tok.value == "NULL":
                self._advance()
                return Literal(None)
            if tok.value == "TRUE":
                self._advance()
                return Literal(True)
            if tok.value == "FALSE":
                self._advance()
                return Literal(False)
            if tok.value == "COUNT":
                return self._count_call()
            if tok.value == "AREA":
                return self._area_clause()
            if tok.value == "XMATCH":
                return self._xmatch_terms()
        if tok.type is TokenType.PUNCT and tok.value == "(":
            self._advance()
            inner = self.expression()
            self._expect(TokenType.PUNCT, ")")
            return inner
        if tok.type is TokenType.IDENT:
            self._advance()
            if self._accept(TokenType.PUNCT, "."):
                name = self._expect(TokenType.IDENT).value
                return ColumnRef(tok.value, name)
            if self._check(TokenType.PUNCT, "("):
                return self._func_call(tok.value)
            return ColumnRef(None, tok.value)
        raise SQLSyntaxError(
            f"unexpected token {tok.value!r}", tok.line, tok.column
        )

    def _func_call(self, name: str) -> Expr:
        self._expect(TokenType.PUNCT, "(")
        args: list[Expr] = []
        if not self._check(TokenType.PUNCT, ")"):
            args.append(self.expression())
            while self._accept(TokenType.PUNCT, ","):
                args.append(self.expression())
        self._expect(TokenType.PUNCT, ")")
        return FuncCall(name.upper(), tuple(args))

    def _count_call(self) -> Expr:
        self._expect(TokenType.KEYWORD, "COUNT")
        self._expect(TokenType.PUNCT, "(")
        if self._accept(TokenType.OP, "*"):
            args: Tuple[Expr, ...] = (Star(),)
        else:
            args = (self.expression(),)
        self._expect(TokenType.PUNCT, ")")
        return FuncCall("COUNT", args)

    def _area_clause(self) -> Expr:
        self._expect(TokenType.KEYWORD, "AREA")
        self._expect(TokenType.PUNCT, "(")
        if self._check(TokenType.IDENT) and self._cur.value.upper() == "POLYGON":
            self._advance()
            coords: List[float] = []
            while self._accept(TokenType.PUNCT, ","):
                coords.append(self._signed_number())
            self._expect(TokenType.PUNCT, ")")
            if len(coords) < 6 or len(coords) % 2 != 0:
                raise SQLSyntaxError(
                    "AREA(POLYGON, ...) needs at least 3 (ra, dec) pairs"
                )
            vertices = tuple(
                (coords[i], coords[i + 1]) for i in range(0, len(coords), 2)
            )
            return PolygonClause(vertices=vertices)
        ra = self._signed_number()
        self._expect(TokenType.PUNCT, ",")
        dec = self._signed_number()
        self._expect(TokenType.PUNCT, ",")
        radius = self._signed_number()
        self._expect(TokenType.PUNCT, ")")
        return AreaClause(ra_deg=ra, dec_deg=dec, radius_arcsec=radius)

    def _signed_number(self) -> float:
        sign = 1.0
        while True:
            if self._accept(TokenType.OP, "-"):
                sign = -sign
                continue
            if self._accept(TokenType.OP, "+"):
                continue
            break
        tok = self._expect(TokenType.NUMBER)
        return sign * float(tok.value)

    def _xmatch_terms(self) -> XMatchClause:
        self._expect(TokenType.KEYWORD, "XMATCH")
        self._expect(TokenType.PUNCT, "(")
        terms = [self._xmatch_term()]
        while self._accept(TokenType.PUNCT, ","):
            terms.append(self._xmatch_term())
        self._expect(TokenType.PUNCT, ")")
        # The threshold arrives via the enclosing `< number` comparison;
        # NaN marks "not yet filled in" and is folded by _comparison().
        return XMatchClause(tuple(terms), float("nan"))

    def _xmatch_term(self) -> XMatchTerm:
        dropout = self._accept(TokenType.PUNCT, "!") is not None
        alias = self._expect(TokenType.IDENT).value
        return XMatchTerm(alias=alias, dropout=dropout)


def _numeric_value(expr: Expr) -> Optional[float]:
    """The numeric value of a (possibly negated) literal, else None."""
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _numeric_value(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return float(expr.value)
    return None


def parse_query(text: str) -> Query:
    """Parse a full SELECT statement (raises :class:`SQLSyntaxError`)."""
    return _Parser(tokenize(text)).query()


def parse_expression(text: str) -> Expr:
    """Parse a standalone expression (used in tests and by tooling)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser._expect(TokenType.EOF)
    return expr
