"""AST node types for the SkyQuery SQL dialect.

All nodes are frozen dataclasses so they can be hashed, compared in tests,
and safely shared between the Portal's planner and the SkyNode wrappers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Value = Union[int, float, str, bool, None]


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or NULL."""

    value: Value


@dataclass(frozen=True)
class Star:
    """The ``*`` select item."""


@dataclass(frozen=True)
class ColumnRef:
    """A possibly qualified column reference like ``O.type`` or ``dec``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class FuncCall:
    """A function call; ``COUNT(*)`` is ``FuncCall("COUNT", (Star(),))``."""

    name: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator: ``-`` (negation) or ``NOT``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator: arithmetic, comparison, AND, OR."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class IsNull:
    """``expr IS NULL`` / ``expr IS NOT NULL``."""

    operand: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class AreaClause:
    """``AREA(ra_deg, dec_deg, radius_arcsec)`` — a circular sky range."""

    ra_deg: float
    dec_deg: float
    radius_arcsec: float


@dataclass(frozen=True)
class PolygonClause:
    """``AREA(POLYGON, ra1, dec1, ra2, dec2, ...)`` — a convex polygon range.

    The paper's Section 6 extension: "The AREA clause can also be extended
    to specify arbitrary polygons rather than just simple circles."
    Vertices are (ra, dec) degree pairs in counter-clockwise order.
    """

    vertices: Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class XMatchTerm:
    """One archive alias inside XMATCH; ``dropout`` for the ``!A`` form."""

    alias: str
    dropout: bool = False

    def __str__(self) -> str:
        return f"!{self.alias}" if self.dropout else self.alias


@dataclass(frozen=True)
class XMatchClause:
    """``XMATCH(A, B, !C) < threshold`` — the probabilistic spatial join."""

    terms: Tuple[XMatchTerm, ...]
    threshold: float

    @property
    def mandatory(self) -> Tuple[XMatchTerm, ...]:
        """Terms that must match (non-dropouts)."""
        return tuple(t for t in self.terms if not t.dropout)

    @property
    def dropouts(self) -> Tuple[XMatchTerm, ...]:
        """Terms that must NOT match (the ``!A`` archives)."""
        return tuple(t for t in self.terms if t.dropout)


Expr = Union[
    Literal,
    Star,
    ColumnRef,
    FuncCall,
    UnaryOp,
    BinaryOp,
    IsNull,
    AreaClause,
    PolygonClause,
    XMatchClause,
]

#: The spatial-range clause kinds accepted wherever "an AREA" is expected.
AreaLike = Union[AreaClause, PolygonClause]


@dataclass(frozen=True)
class SelectItem:
    """One output column: an expression plus an optional AS alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-list entry: ``ARCHIVE: Table Alias``.

    ``archive`` is None for plain single-database queries executed directly
    against a SkyNode's local engine.
    """

    archive: Optional[str]
    table: str
    alias: Optional[str] = None

    @property
    def effective_alias(self) -> str:
        """The name other clauses use to refer to this table."""
        return self.alias or self.table


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression plus direction."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Query:
    """A parsed SELECT statement."""

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    distinct: bool = False
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


def conjuncts(expr: Optional[Expr]) -> Tuple[Expr, ...]:
    """Flatten a WHERE tree into its top-level AND-ed conjuncts."""
    if expr is None:
        return ()
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return (expr,)


def and_together(parts: Tuple[Expr, ...]) -> Optional[Expr]:
    """Rebuild an AND tree from conjuncts (None for an empty tuple)."""
    result: Optional[Expr] = None
    for part in parts:
        result = part if result is None else BinaryOp("AND", result, part)
    return result


def referenced_aliases(expr: Expr) -> frozenset[str]:
    """All table qualifiers referenced anywhere inside an expression."""
    found: set[str] = set()
    _walk_aliases(expr, found)
    return frozenset(found)


def _walk_aliases(expr: Expr, found: set[str]) -> None:
    if isinstance(expr, ColumnRef):
        if expr.qualifier:
            found.add(expr.qualifier)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _walk_aliases(arg, found)
    elif isinstance(expr, UnaryOp):
        _walk_aliases(expr.operand, found)
    elif isinstance(expr, IsNull):
        _walk_aliases(expr.operand, found)
    elif isinstance(expr, BinaryOp):
        _walk_aliases(expr.left, found)
        _walk_aliases(expr.right, found)
    elif isinstance(expr, XMatchClause):
        for term in expr.terms:
            found.add(term.alias)
