"""The SkyQuery SQL dialect.

A SQL-like language with the paper's two spatial extensions:

* ``AREA(ra_deg, dec_deg, radius_arcsec)`` — a circular range on the sky that
  every returned object must lie within.
* ``XMATCH(A, B, !C) < t`` — a probabilistic spatial join across archives:
  sets of objects (one per mandatory archive) within ``t`` standard
  deviations of their mean position, with ``!`` marking *drop out* archives
  that must NOT contain a matching object.

The parser is a hand-written recursive-descent parser producing the AST in
:mod:`repro.sql.ast`; :mod:`repro.sql.printer` renders ASTs back to SQL text
(per-dialect, used by the SkyNode wrappers), and :mod:`repro.sql.validate`
checks cross-archive consistency before planning.
"""

from repro.sql.ast import (
    AreaClause,
    BinaryOp,
    ColumnRef,
    FuncCall,
    Literal,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    XMatchClause,
    XMatchTerm,
)
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_query, parse_expression
from repro.sql.printer import to_sql
from repro.sql.validate import validate_query

__all__ = [
    "AreaClause",
    "BinaryOp",
    "ColumnRef",
    "FuncCall",
    "Literal",
    "Query",
    "SelectItem",
    "Star",
    "TableRef",
    "UnaryOp",
    "XMatchClause",
    "XMatchTerm",
    "Token",
    "TokenType",
    "tokenize",
    "parse_query",
    "parse_expression",
    "to_sql",
    "validate_query",
]
