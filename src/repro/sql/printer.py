"""Render ASTs back to SQL text.

SkyNode wrappers use this to hand queries to their local engines. Dialects
model the paper's archive heterogeneity: each archive's DBMS accepts the
same logical query but with different surface syntax (identifier quoting and
spatial-function spelling), and the wrapper picks the right dialect so the
Portal never needs to know.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.ast import (
    AreaClause,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    PolygonClause,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    XMatchClause,
)


@dataclass(frozen=True)
class Dialect:
    """Surface-syntax knobs for one archive's DBMS."""

    name: str
    quote_open: str = ""
    quote_close: str = ""
    area_function: str = "AREA"
    uppercase_keywords: bool = True

    def ident(self, name: str) -> str:
        """Quote an identifier per this dialect."""
        return f"{self.quote_open}{name}{self.quote_close}"


ANSI = Dialect(name="ansi")
SQLSERVER = Dialect(name="sqlserver", quote_open="[", quote_close="]")
POSTGRES = Dialect(name="postgres", quote_open='"', quote_close='"',
                   area_function="sky_area")

DIALECTS = {d.name: d for d in (ANSI, SQLSERVER, POSTGRES)}


def to_sql(node: Query | Expr | SelectItem | TableRef, dialect: Dialect = ANSI) -> str:
    """Render any AST node as SQL text in the given dialect."""
    if isinstance(node, Query):
        return _query(node, dialect)
    if isinstance(node, SelectItem):
        return _select_item(node, dialect)
    if isinstance(node, TableRef):
        return _table_ref(node, dialect)
    return _expr(node, dialect)


def _query(q: Query, d: Dialect) -> str:
    parts = ["SELECT "]
    if q.distinct:
        parts.append("DISTINCT ")
    parts.append(", ".join(_select_item(i, d) for i in q.items))
    parts.append(" FROM ")
    parts.append(", ".join(_table_ref(t, d) for t in q.tables))
    if q.where is not None:
        parts.append(" WHERE ")
        parts.append(_expr(q.where, d))
    if q.group_by:
        parts.append(" GROUP BY ")
        parts.append(", ".join(_expr(e, d) for e in q.group_by))
    if q.having is not None:
        parts.append(" HAVING ")
        parts.append(_expr(q.having, d))
    if q.order_by:
        keys = ", ".join(
            _expr(item.expr, d) + (" DESC" if item.descending else "")
            for item in q.order_by
        )
        parts.append(f" ORDER BY {keys}")
    if q.limit is not None:
        parts.append(f" LIMIT {q.limit}")
    return "".join(parts)


def _select_item(item: SelectItem, d: Dialect) -> str:
    text = _expr(item.expr, d)
    if item.alias:
        return f"{text} AS {d.ident(item.alias)}"
    return text


def _table_ref(t: TableRef, d: Dialect) -> str:
    text = d.ident(t.table)
    if t.archive:
        text = f"{t.archive}:{text}"
    if t.alias:
        text = f"{text} {t.alias}"
    return text


_NEEDS_PARENS = {"AND": ("OR",), "*": ("+", "-"), "/": ("+", "-")}


def _expr(e: Expr, d: Dialect) -> str:
    if isinstance(e, Literal):
        return _literal(e)
    if isinstance(e, Star):
        return "*"
    if isinstance(e, ColumnRef):
        if e.qualifier:
            return f"{e.qualifier}.{d.ident(e.name)}"
        return d.ident(e.name)
    if isinstance(e, FuncCall):
        args = ", ".join(_expr(a, d) for a in e.args)
        return f"{e.name}({args})"
    if isinstance(e, UnaryOp):
        if e.op == "NOT":
            return f"NOT ({_expr(e.operand, d)})"
        return f"-{_operand(e.operand, d)}"
    if isinstance(e, BinaryOp):
        left = _operand(e.left, d, parent=e.op)
        right = _operand(e.right, d, parent=e.op)
        return f"{left} {e.op} {right}"
    if isinstance(e, IsNull):
        keyword = "IS NOT NULL" if e.negated else "IS NULL"
        return f"{_operand(e.operand, d)} {keyword}"
    if isinstance(e, AreaClause):
        return (
            f"{d.area_function}({_num(e.ra_deg)}, {_num(e.dec_deg)}, "
            f"{_num(e.radius_arcsec)})"
        )
    if isinstance(e, PolygonClause):
        coords = ", ".join(
            f"{_num(ra)}, {_num(dec)}" for ra, dec in e.vertices
        )
        return f"{d.area_function}(POLYGON, {coords})"
    if isinstance(e, XMatchClause):
        terms = ", ".join(str(t) for t in e.terms)
        return f"XMATCH({terms}) < {_num(e.threshold)}"
    raise TypeError(f"cannot print AST node {e!r}")


def _operand(e: Expr, d: Dialect, parent: str | None = None) -> str:
    text = _expr(e, d)
    if isinstance(e, BinaryOp):
        if parent in ("AND",) and e.op == "OR":
            return f"({text})"
        if parent in ("*", "/") and e.op in ("+", "-"):
            return f"({text})"
        if parent in ("+", "-", "*", "/") and e.op in ("=", "<>", "<", "<=", ">", ">="):
            return f"({text})"
    return text


def _literal(lit: Literal) -> str:
    v = lit.value
    if v is None:
        return "NULL"
    if isinstance(v, bool):
        return "TRUE" if v else "FALSE"
    if isinstance(v, str):
        escaped = v.replace("'", "''")
        return f"'{escaped}'"
    return _num(v)


def _num(v: int | float) -> str:
    if isinstance(v, int):
        return str(v)
    text = repr(float(v))
    return text
