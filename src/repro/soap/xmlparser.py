"""A small DOM-style XML parser with an explicit memory model.

The paper (Section 6): *"The XML parser at the SkyNode would run out of
memory while parsing SOAP messages of about 10 MB. We worked around by
dividing large data sets into smaller chunks."*

A DOM parser materializes the whole document as objects, with a sizable
expansion factor over the raw bytes. This parser models that: the peak
memory charged for a parse is ``overhead_factor * document_bytes``, and if
a ``memory_limit_bytes`` is configured and exceeded, the parse fails with
:class:`~repro.errors.XMLMemoryError` *before* building the tree — exactly
the production failure the authors hit, made reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import XMLMemoryError, XMLSyntaxError
from repro.soap.xmlwriter import Element

#: Default expansion of a text document into DOM objects. With the paper's
#: ~40 MB per-worker budget this makes parses fail just above 10 MB.
DEFAULT_OVERHEAD_FACTOR = 4.0

_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def _unescape(text: str) -> str:
    """Resolve entity and numeric character references in one pass.

    A single left-to-right scan — sequential ``str.replace`` calls would
    double-decode input like ``&amp;#9;`` (literal "&#9;"), a classic
    unescaping bug.
    """
    if "&" not in text:
        return text
    out: list[str] = []
    pos = 0
    n = len(text)
    while pos < n:
        amp = text.find("&", pos)
        if amp < 0:
            out.append(text[pos:])
            break
        out.append(text[pos:amp])
        end = text.find(";", amp + 1)
        if end < 0:
            raise XMLSyntaxError(f"unterminated entity reference at {amp}")
        name = text[amp + 1 : end]
        if name.startswith("#"):
            try:
                code = int(name[2:], 16) if name[1] in "xX" else int(name[1:])
                out.append(chr(code))
            except (ValueError, OverflowError, IndexError):
                raise XMLSyntaxError(
                    f"bad character reference &{name};"
                ) from None
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};")
        pos = end + 1
    return "".join(out)


class XMLParser:
    """Parser instance with an optional memory budget.

    ``peak_memory_bytes`` after a parse reports the modeled DOM footprint,
    used by the chunking experiment to chart memory versus chunk size.
    """

    def __init__(
        self,
        *,
        memory_limit_bytes: Optional[int] = None,
        overhead_factor: float = DEFAULT_OVERHEAD_FACTOR,
    ) -> None:
        if overhead_factor < 1.0:
            raise ValueError("overhead_factor must be >= 1")
        self.memory_limit_bytes = memory_limit_bytes
        self.overhead_factor = overhead_factor
        self.peak_memory_bytes = 0
        self.documents_parsed = 0

    def parse(self, text: str | bytes) -> Element:
        """Parse a document, enforcing the memory budget."""
        if isinstance(text, bytes):
            doc_bytes = len(text)
            text = text.decode("utf-8")
        else:
            doc_bytes = len(text.encode("utf-8"))
        needed = int(self.overhead_factor * doc_bytes)
        self.peak_memory_bytes = max(self.peak_memory_bytes, needed)
        if self.memory_limit_bytes is not None and needed > self.memory_limit_bytes:
            raise XMLMemoryError(
                f"XML parser out of memory: document of {doc_bytes} bytes "
                f"needs ~{needed} bytes, limit is {self.memory_limit_bytes}",
                document_bytes=doc_bytes,
                limit_bytes=self.memory_limit_bytes,
            )
        root = _parse_document(text)
        self.documents_parsed += 1
        return root


def parse_xml(
    text: str | bytes, *, memory_limit_bytes: Optional[int] = None
) -> Element:
    """One-shot parse with an optional memory budget."""
    return XMLParser(memory_limit_bytes=memory_limit_bytes).parse(text)


def _parse_document(text: str) -> Element:
    pos = _skip_prolog(text, 0)
    root, pos = _parse_element(text, pos)
    # Trailing whitespace/comments only.
    pos = _skip_misc(text, pos)
    if pos != len(text):
        raise XMLSyntaxError(f"trailing content after document element at {pos}")
    return root


def _skip_prolog(text: str, pos: int) -> int:
    pos = _skip_ws(text, pos)
    if text.startswith("<?xml", pos):
        end = text.find("?>", pos)
        if end < 0:
            raise XMLSyntaxError("unterminated XML declaration")
        pos = end + 2
    return _skip_misc(text, pos)


def _skip_misc(text: str, pos: int) -> int:
    while True:
        pos = _skip_ws(text, pos)
        if text.startswith("<!--", pos):
            end = text.find("-->", pos)
            if end < 0:
                raise XMLSyntaxError("unterminated comment")
            pos = end + 3
            continue
        return pos


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos] in " \t\r\n":
        pos += 1
    return pos


def _parse_element(text: str, pos: int) -> Tuple[Element, int]:
    if pos >= len(text) or text[pos] != "<":
        raise XMLSyntaxError(f"expected '<' at position {pos}")
    tag_end = pos + 1
    n = len(text)
    while tag_end < n and text[tag_end] not in " \t\r\n/>":
        tag_end += 1
    tag = text[pos + 1 : tag_end]
    if not tag:
        raise XMLSyntaxError(f"empty tag name at position {pos}")
    attrib, pos = _parse_attributes(text, tag_end)
    if text.startswith("/>", pos):
        return Element(tag, attrib), pos + 2
    if pos >= n or text[pos] != ">":
        raise XMLSyntaxError(f"malformed start tag <{tag}> at position {pos}")
    pos += 1
    node = Element(tag, attrib)
    text_chunks = []
    while True:
        if pos >= n:
            raise XMLSyntaxError(f"unterminated element <{tag}>")
        if text.startswith("<!--", pos):
            end = text.find("-->", pos)
            if end < 0:
                raise XMLSyntaxError("unterminated comment")
            pos = end + 3
            continue
        if text.startswith("</", pos):
            end = text.find(">", pos)
            if end < 0:
                raise XMLSyntaxError(f"unterminated end tag in <{tag}>")
            if text[pos + 2 : end].strip() != tag:
                raise XMLSyntaxError(
                    f"mismatched end tag </{text[pos + 2:end].strip()}> "
                    f"for <{tag}>"
                )
            pos = end + 1
            break
        if text[pos] == "<":
            child, pos = _parse_element(text, pos)
            node.children.append(child)
            continue
        nxt = text.find("<", pos)
        if nxt < 0:
            raise XMLSyntaxError(f"unterminated element <{tag}>")
        text_chunks.append(text[pos:nxt])
        pos = nxt
    if text_chunks and not node.children:
        node.text = _unescape("".join(text_chunks))
    return node, pos


def _parse_attributes(text: str, pos: int) -> Tuple[Dict[str, str], int]:
    attrib: Dict[str, str] = {}
    n = len(text)
    while True:
        pos = _skip_ws(text, pos)
        if pos >= n:
            raise XMLSyntaxError("unterminated start tag")
        if text[pos] in "/>":
            return attrib, pos
        eq = text.find("=", pos)
        if eq < 0:
            raise XMLSyntaxError(f"malformed attribute at position {pos}")
        name = text[pos:eq].strip()
        vpos = _skip_ws(text, eq + 1)
        if vpos >= n or text[vpos] not in "\"'":
            raise XMLSyntaxError(f"attribute {name!r} value must be quoted")
        quote = text[vpos]
        vend = text.find(quote, vpos + 1)
        if vend < 0:
            raise XMLSyntaxError(f"unterminated value for attribute {name!r}")
        attrib[name] = _unescape(text[vpos + 1 : vend])
        pos = vend + 1
