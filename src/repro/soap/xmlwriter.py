"""A minimal XML document model and serializer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


def escape_text(text: str) -> str:
    """Escape character data."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    """Escape an attribute value (double-quote delimited)."""
    return (
        escape_text(text)
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )


@dataclass
class Element:
    """An XML element: tag, attributes, text, children.

    Mixed content is not modeled (SOAP messages never need it): an element
    carries either ``text`` or ``children``.
    """

    tag: str
    attrib: Dict[str, str] = field(default_factory=dict)
    children: List["Element"] = field(default_factory=list)
    text: str = ""

    def child(self, tag: str, *, text: str = "", **attrib: str) -> "Element":
        """Append and return a new child element."""
        node = Element(tag, dict(attrib), [], text)
        self.children.append(node)
        return node

    def find(self, tag: str) -> Optional["Element"]:
        """First direct child with the given tag (namespace-prefix aware:
        matches either the exact tag or any ``prefix:tag``)."""
        for node in self.children:
            if node.tag == tag or node.tag.split(":", 1)[-1] == tag:
                return node
        return None

    def find_all(self, tag: str) -> List["Element"]:
        """All direct children matching the tag (prefix-insensitive)."""
        return [
            node
            for node in self.children
            if node.tag == tag or node.tag.split(":", 1)[-1] == tag
        ]

    def require(self, tag: str) -> "Element":
        """Like :meth:`find` but raises ``KeyError`` when absent."""
        node = self.find(tag)
        if node is None:
            raise KeyError(f"element <{self.tag}> has no child <{tag}>")
        return node

    def get(self, attr: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute lookup with default."""
        return self.attrib.get(attr, default)

    def local_name(self) -> str:
        """Tag without any namespace prefix."""
        return self.tag.split(":", 1)[-1]

    def iter(self) -> Iterator["Element"]:
        """Depth-first iteration over this element and all descendants."""
        yield self
        for node in self.children:
            yield from node.iter()


def render(root: Element, *, declaration: bool = True, indent: Optional[str] = None) -> str:
    """Serialize an element tree to XML text."""
    parts: List[str] = []
    if declaration:
        parts.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent is not None:
            parts.append("\n")
    _render_node(root, parts, indent, 0)
    return "".join(parts)


def _render_node(
    node: Element, parts: List[str], indent: Optional[str], depth: int
) -> None:
    pad = indent * depth if indent is not None else ""
    attrs = "".join(
        f' {name}="{escape_attr(value)}"' for name, value in node.attrib.items()
    )
    if not node.children and not node.text:
        parts.append(f"{pad}<{node.tag}{attrs}/>")
        if indent is not None:
            parts.append("\n")
        return
    parts.append(f"{pad}<{node.tag}{attrs}>")
    if node.children:
        if indent is not None:
            parts.append("\n")
        for kid in node.children:
            _render_node(kid, parts, indent, depth + 1)
        parts.append(pad)
    else:
        parts.append(escape_text(node.text))
    parts.append(f"</{node.tag}>")
    if indent is not None:
        parts.append("\n")
