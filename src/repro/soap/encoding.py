"""Typed SOAP value encoding, plus the rowset transfer format.

Values cross the wire as XML elements carrying an ``xsi:type`` attribute
(int, double, string, boolean), with structs as nested elements, arrays as
repeated ``<item>`` elements, and tabular data as a ``<RowSet>``: a schema
header followed by ``<r><c>...</c></r>`` rows. This mirrors how the .NET
SOAP stack of the prototype shipped ADO datasets between SkyNodes.

A binary codec (:func:`encode_binary_rowset`) provides the CORBA-style
comparison point for the serialization-overhead experiment (paper Section 6
notes SOAP "is considered to be slower than other middleware, like, CORBA,
because of the time spent for serialization and de-serialization").

:class:`ColumnarRowSet` selects the compact column-major XML form
(``colset``): per-column packed token streams with delta-encoded ints and
dictionary-encoded strings. Decoding a colset yields a plain
:class:`WireRowSet`, so only senders opt in.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import SoapError
from repro.soap.xmlwriter import Element

_TYPE_CODES = ("int", "double", "string", "boolean")


@dataclass
class WireRowSet:
    """Tabular payload: (name, typecode) columns and value rows.

    Typecodes are ``int | double | string | boolean``. ``None`` cells are
    allowed in any column and travel as ``nil`` markers.
    """

    columns: List[Tuple[str, str]]
    rows: List[Tuple[Any, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for name, code in self.columns:
            if code not in _TYPE_CODES:
                raise SoapError(f"unknown rowset typecode {code!r} for {name!r}")

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def column_names(self) -> List[str]:
        """Column names in order."""
        return [name for name, _ in self.columns]

    def slice(self, start: int, stop: int) -> "WireRowSet":
        """A rowset with the same schema and a row subrange (for chunking)."""
        return WireRowSet(list(self.columns), self.rows[start:stop])

    @classmethod
    def concat(cls, parts: Sequence["WireRowSet"]) -> "WireRowSet":
        """Reassemble chunks; schemas must agree."""
        if not parts:
            raise SoapError("cannot concatenate zero rowset chunks")
        first = parts[0]
        for part in parts[1:]:
            if part.columns != first.columns:
                raise SoapError("rowset chunks have mismatched schemas")
        rows: List[Tuple[Any, ...]] = []
        for part in parts:
            rows.extend(part.rows)
        return cls(list(first.columns), rows)


@dataclass
class ColumnarRowSet:
    """A rowset marked for the compact column-major wire form (``colset``).

    Semantically identical to the wrapped :class:`WireRowSet`; only the
    XML shape differs. Instead of ``<r><c>`` per cell, each column travels
    as one packed text stream: int columns are delta-encoded (first value
    raw, then successive differences), string columns are
    dictionary-encoded (unique values once as child elements, then integer
    indexes), doubles and booleans are plain token streams. ``None`` cells
    use the ``_`` sentinel in every stream. Decoding yields a plain
    :class:`WireRowSet` again, so receivers are agnostic to which form the
    sender chose.
    """

    rowset: WireRowSet

    def __len__(self) -> int:
        return len(self.rowset)

    @property
    def columns(self) -> List[Tuple[str, str]]:
        """The wrapped rowset's (name, typecode) schema."""
        return self.rowset.columns

    @property
    def column_names(self) -> List[str]:
        """Column names in order."""
        return self.rowset.column_names

    @property
    def rows(self) -> List[Tuple[Any, ...]]:
        """The wrapped rowset's rows."""
        return self.rowset.rows

    def slice(self, start: int, stop: int) -> "ColumnarRowSet":
        """A columnar view of a row subrange (for chunking)."""
        return ColumnarRowSet(self.rowset.slice(start, stop))


def typecode_of(value: Any) -> str:
    """The wire typecode of a python scalar."""
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "double"
    if isinstance(value, str):
        return "string"
    raise SoapError(f"cannot encode value of type {type(value).__name__}")


def encode_value(name: str, value: Any) -> Element:
    """Encode a python value (scalar, list, dict, WireRowSet) as an element."""
    if value is None:
        return Element(name, {"xsi:nil": "true"})
    if isinstance(value, ColumnarRowSet):
        return _encode_colset(name, value.rowset)
    if isinstance(value, WireRowSet):
        return _encode_rowset(name, value)
    if isinstance(value, dict):
        node = Element(name, {"xsi:type": "struct"})
        for key, item in value.items():
            node.children.append(encode_value(str(key), item))
        return node
    if isinstance(value, (list, tuple)):
        node = Element(name, {"xsi:type": "array"})
        for item in value:
            node.children.append(encode_value("item", item))
        return node
    code = typecode_of(value)
    text = _scalar_to_text(value)
    return Element(name, {"xsi:type": code}, [], text)


def decode_value(node: Element) -> Any:
    """Decode an element produced by :func:`encode_value`."""
    if node.get("xsi:nil") == "true":
        return None
    xtype = node.get("xsi:type")
    if xtype == "struct":
        return {kid.local_name(): decode_value(kid) for kid in node.children}
    if xtype == "array":
        return [decode_value(kid) for kid in node.children]
    if xtype == "rowset" or node.local_name() == "RowSet":
        return _decode_rowset(node)
    if xtype == "colset":
        return _decode_colset(node)
    if xtype is None:
        # Untyped leaf: best-effort string (tolerant of foreign documents).
        return node.text
    return _text_to_scalar(node.text, xtype)


def _scalar_to_text(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _text_to_scalar(text: str, code: str) -> Any:
    if code == "int":
        return int(text)
    if code == "double":
        return float(text)
    if code == "string":
        return text
    if code == "boolean":
        if text not in ("true", "false"):
            raise SoapError(f"bad boolean literal {text!r}")
        return text == "true"
    raise SoapError(f"unknown xsi:type {code!r}")


# -- rowset XML form ---------------------------------------------------------


def _encode_rowset(name: str, rowset: WireRowSet) -> Element:
    node = Element(name, {"xsi:type": "rowset", "rows": str(len(rowset.rows))})
    schema = node.child("schema")
    for col_name, code in rowset.columns:
        schema.child("col", name=col_name, type=code)
    data = node.child("data")
    for row in rowset.rows:
        if len(row) != len(rowset.columns):
            raise SoapError(
                f"row width {len(row)} does not match schema "
                f"width {len(rowset.columns)}"
            )
        row_el = data.child("r")
        for value, (col_name, code) in zip(row, rowset.columns):
            if value is None:
                row_el.child("c", nil="true")
            else:
                if typecode_of(value) != code and not (
                    code == "double" and isinstance(value, int)
                    and not isinstance(value, bool)
                ):
                    raise SoapError(
                        f"value {value!r} does not match column "
                        f"{col_name!r} type {code!r}"
                    )
                row_el.child("c", text=_scalar_to_text(
                    float(value) if code == "double" else value
                ))
    return node


def _decode_rowset(node: Element) -> WireRowSet:
    schema = node.require("schema")
    columns: List[Tuple[str, str]] = []
    for col in schema.find_all("col"):
        col_name = col.get("name")
        code = col.get("type")
        if col_name is None or code is None:
            raise SoapError("rowset schema column missing name/type")
        columns.append((col_name, code))
    rowset = WireRowSet(columns)
    data = node.require("data")
    for row_el in data.find_all("r"):
        cells = row_el.find_all("c")
        if len(cells) != len(columns):
            raise SoapError(
                f"rowset row has {len(cells)} cells, schema has {len(columns)}"
            )
        row: List[Any] = []
        for cell, (_, code) in zip(cells, columns):
            if cell.get("nil") == "true":
                row.append(None)
            else:
                row.append(_text_to_scalar(cell.text, code))
        rowset.rows.append(tuple(row))
    return rowset


# -- columnar form ("colset"): packed per-column token streams -----------------

#: Token marking a NULL cell in a packed column stream. Unambiguous: int
#: and index streams are decimal literals, doubles are ``repr`` floats,
#: booleans are ``t``/``f``.
_NIL_TOKEN = "_"


def _check_cell(value: Any, col_name: str, code: str) -> None:
    if typecode_of(value) != code and not (
        code == "double"
        and isinstance(value, int)
        and not isinstance(value, bool)
    ):
        raise SoapError(
            f"value {value!r} does not match column {col_name!r} type {code!r}"
        )


def _encode_colset(name: str, rowset: WireRowSet) -> Element:
    node = Element(name, {"xsi:type": "colset", "rows": str(len(rowset.rows))})
    schema = node.child("schema")
    for col_name, code in rowset.columns:
        schema.child("col", name=col_name, type=code)
    for row in rowset.rows:
        if len(row) != len(rowset.columns):
            raise SoapError(
                f"row width {len(row)} does not match schema "
                f"width {len(rowset.columns)}"
            )
    cols = node.child("cols")
    for i, (col_name, code) in enumerate(rowset.columns):
        values = [row[i] for row in rowset.rows]
        col_el = cols.child("col")
        tokens: List[str] = []
        if code == "string":
            # Dictionary encoding: unique values once (as child elements,
            # so arbitrary text stays XML-safe), then integer indexes.
            index: Dict[str, int] = {}
            entries: List[str] = []
            for value in values:
                if value is None:
                    tokens.append(_NIL_TOKEN)
                    continue
                _check_cell(value, col_name, code)
                slot = index.get(value)
                if slot is None:
                    slot = len(entries)
                    index[value] = slot
                    entries.append(value)
                tokens.append(str(slot))
            if entries:
                dict_el = col_el.child("dict")
                for entry in entries:
                    dict_el.child("v", text=entry)
        elif code == "int":
            # Delta encoding: first value raw, then differences from the
            # previous non-NULL value (ids are near-sorted, so deltas are
            # short).
            prev = 0
            for value in values:
                if value is None:
                    tokens.append(_NIL_TOKEN)
                    continue
                _check_cell(value, col_name, code)
                tokens.append(str(value - prev))
                prev = value
        elif code == "boolean":
            for value in values:
                if value is None:
                    tokens.append(_NIL_TOKEN)
                    continue
                _check_cell(value, col_name, code)
                tokens.append("t" if value else "f")
        else:  # double
            for value in values:
                if value is None:
                    tokens.append(_NIL_TOKEN)
                    continue
                _check_cell(value, col_name, code)
                tokens.append(_scalar_to_text(float(value)))
        col_el.child("data", text=" ".join(tokens))
    return node


def _decode_colset(node: Element) -> WireRowSet:
    schema = node.require("schema")
    columns: List[Tuple[str, str]] = []
    for col in schema.find_all("col"):
        col_name = col.get("name")
        code = col.get("type")
        if col_name is None or code is None:
            raise SoapError("colset schema column missing name/type")
        columns.append((col_name, code))
    try:
        n_rows = int(node.get("rows") or "0")
    except ValueError as exc:
        raise SoapError(f"bad colset row count {node.get('rows')!r}") from exc
    cols = node.require("cols")
    col_elements = cols.find_all("col")
    if len(col_elements) != len(columns):
        raise SoapError(
            f"colset has {len(col_elements)} column streams, "
            f"schema has {len(columns)}"
        )
    decoded_columns: List[List[Any]] = []
    for col_el, (col_name, code) in zip(col_elements, columns):
        tokens = col_el.require("data").text.split()
        if len(tokens) != n_rows:
            raise SoapError(
                f"colset column {col_name!r} has {len(tokens)} tokens "
                f"for {n_rows} rows"
            )
        values: List[Any] = []
        if code == "string":
            dict_el = col_el.find("dict")
            entries = (
                [kid.text for kid in dict_el.find_all("v")]
                if dict_el is not None
                else []
            )
            for token in tokens:
                if token == _NIL_TOKEN:
                    values.append(None)
                    continue
                slot = int(token)
                if not 0 <= slot < len(entries):
                    raise SoapError(
                        f"colset column {col_name!r} dictionary index "
                        f"{slot} out of range"
                    )
                values.append(entries[slot])
        elif code == "int":
            prev = 0
            for token in tokens:
                if token == _NIL_TOKEN:
                    values.append(None)
                    continue
                prev += int(token)
                values.append(prev)
        elif code == "boolean":
            for token in tokens:
                if token == _NIL_TOKEN:
                    values.append(None)
                elif token in ("t", "f"):
                    values.append(token == "t")
                else:
                    raise SoapError(f"bad colset boolean token {token!r}")
        elif code == "double":
            values = [
                None if token == _NIL_TOKEN else float(token)
                for token in tokens
            ]
        else:
            raise SoapError(f"unknown colset typecode {code!r}")
        decoded_columns.append(values)
    rowset = WireRowSet(columns)
    rowset.rows = [
        tuple(decoded_columns[c][r] for c in range(len(columns)))
        for r in range(n_rows)
    ]
    return rowset


def infer_rowset(columns: Sequence[str], rows: Sequence[Tuple[Any, ...]]) -> WireRowSet:
    """Build a rowset inferring each column's typecode from its values.

    A column's type is taken from its first non-NULL value; all-NULL (or
    empty) columns default to string. Ints in an otherwise-float column are
    widened to double.
    """
    codes: List[str] = []
    for i in range(len(columns)):
        code = "string"
        saw_int = False
        for row in rows:
            value = row[i]
            if value is None:
                continue
            if isinstance(value, bool):
                code = "boolean"
                break
            if isinstance(value, float):
                code = "double"
                break
            if isinstance(value, int):
                saw_int = True
                continue
            code = "string"
            break
        else:
            code = "int" if saw_int else code
        if code == "string" and saw_int:
            code = "int"
        codes.append(code)
    normalized = [
        tuple(
            float(v)
            if codes[i] == "double" and isinstance(v, int) and not isinstance(v, bool)
            else v
            for i, v in enumerate(row)
        )
        for row in rows
    ]
    return WireRowSet(list(zip(columns, codes)), normalized)


# -- binary codec (the CORBA-style comparison point) --------------------------

_BINARY_MAGIC = b"SQBR"


def encode_binary_rowset(rowset: WireRowSet) -> bytes:
    """Length-prefixed binary encoding of a rowset (no XML, no text)."""
    out = bytearray(_BINARY_MAGIC)
    out += struct.pack("<II", len(rowset.columns), len(rowset.rows))
    for name, code in rowset.columns:
        nb = name.encode("utf-8")
        out += struct.pack("<HB", len(nb), _TYPE_CODES.index(code))
        out += nb
    for row in rowset.rows:
        for value, (_, code) in zip(row, rowset.columns):
            if value is None:
                out += b"\x00"
                continue
            out += b"\x01"
            if code == "int":
                out += struct.pack("<q", value)
            elif code == "double":
                out += struct.pack("<d", float(value))
            elif code == "boolean":
                out += struct.pack("<B", 1 if value else 0)
            else:
                vb = str(value).encode("utf-8")
                out += struct.pack("<I", len(vb))
                out += vb
    return bytes(out)


def decode_binary_rowset(blob: bytes) -> WireRowSet:
    """Decode :func:`encode_binary_rowset` output."""
    if blob[:4] != _BINARY_MAGIC:
        raise SoapError("bad binary rowset magic")
    ncols, nrows = struct.unpack_from("<II", blob, 4)
    pos = 12
    columns: List[Tuple[str, str]] = []
    for _ in range(ncols):
        nlen, code_idx = struct.unpack_from("<HB", blob, pos)
        pos += 3
        name = blob[pos : pos + nlen].decode("utf-8")
        pos += nlen
        columns.append((name, _TYPE_CODES[code_idx]))
    rowset = WireRowSet(columns)
    for _ in range(nrows):
        row: List[Any] = []
        for _, code in columns:
            present = blob[pos]
            pos += 1
            if not present:
                row.append(None)
                continue
            if code == "int":
                (value,) = struct.unpack_from("<q", blob, pos)
                pos += 8
            elif code == "double":
                (value,) = struct.unpack_from("<d", blob, pos)
                pos += 8
            elif code == "boolean":
                value = blob[pos] == 1
                pos += 1
            else:
                (vlen,) = struct.unpack_from("<I", blob, pos)
                pos += 4
                value = blob[pos : pos + vlen].decode("utf-8")
                pos += vlen
            row.append(value)
        rowset.rows.append(tuple(row))
    return rowset
