"""XML and SOAP 1.1 wire format.

The paper's whole argument rests on Web services: SOAP messages over HTTP
with XML payloads, WSDL service descriptions, and a UDDI-style registry.
This package implements a real (small) XML writer/parser, SOAP envelopes
with RPC request/response/fault conventions, a typed value/rowset encoding,
and WSDL generation — all as actual serialized text so that message sizes,
serialization overhead (paper Section 6), and the XML parser's memory
ceiling (the ~10 MB failures the authors report) are genuinely exercised.
"""

from repro.soap.xmlwriter import Element, escape_attr, escape_text, render
from repro.soap.xmlparser import XMLParser, parse_xml
from repro.soap.encoding import (
    WireRowSet,
    decode_binary_rowset,
    decode_value,
    encode_binary_rowset,
    encode_value,
)
from repro.soap.envelope import (
    SOAP_ENV_NS,
    build_fault,
    build_rpc_request,
    build_rpc_response,
    parse_rpc_request,
    parse_rpc_response,
)
from repro.soap.wsdl import OperationSpec, ServiceDescription, generate_wsdl, parse_wsdl

__all__ = [
    "Element",
    "escape_attr",
    "escape_text",
    "render",
    "XMLParser",
    "parse_xml",
    "WireRowSet",
    "decode_binary_rowset",
    "decode_value",
    "encode_binary_rowset",
    "encode_value",
    "SOAP_ENV_NS",
    "build_fault",
    "build_rpc_request",
    "build_rpc_response",
    "parse_rpc_request",
    "parse_rpc_response",
    "OperationSpec",
    "ServiceDescription",
    "generate_wsdl",
    "parse_wsdl",
]
