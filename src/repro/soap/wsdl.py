"""WSDL generation and (minimal) parsing.

Each SkyQuery service publishes a WSDL document describing its operations;
the Portal's registration flow stores these, and client proxies check the
operations they invoke against the description — the paper's point that
WSDL "allows re-use of the service description interface by clients that
might be using other programming models".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SoapError
from repro.soap.xmlparser import XMLParser
from repro.soap.xmlwriter import Element, render

WSDL_NS = "http://schemas.xmlsoap.org/wsdl/"
SOAP_BINDING_NS = "http://schemas.xmlsoap.org/wsdl/soap/"
HTTP_TRANSPORT = "http://schemas.xmlsoap.org/soap/http"


@dataclass(frozen=True)
class OperationSpec:
    """One operation: name plus (param name, typecode) pairs and return type."""

    name: str
    params: Tuple[Tuple[str, str], ...] = ()
    returns: str = "string"
    doc: str = ""


@dataclass
class ServiceDescription:
    """A service: name, endpoint URL, and its operations."""

    name: str
    url: str
    operations: List[OperationSpec] = field(default_factory=list)

    def operation(self, name: str) -> Optional[OperationSpec]:
        """Look up an operation by name."""
        for op in self.operations:
            if op.name == name:
                return op
        return None


def generate_wsdl(description: ServiceDescription) -> str:
    """Render a WSDL 1.1 document for a service description."""
    root = Element(
        "wsdl:definitions",
        {
            "xmlns:wsdl": WSDL_NS,
            "xmlns:soap": SOAP_BINDING_NS,
            "name": description.name,
            "targetNamespace": f"urn:skyquery:{description.name}",
        },
    )
    for op in description.operations:
        message_in = root.child("wsdl:message", name=f"{op.name}Request")
        for pname, ptype in op.params:
            message_in.child("wsdl:part", name=pname, type=ptype)
        message_out = root.child("wsdl:message", name=f"{op.name}Response")
        message_out.child("wsdl:part", name="result", type=op.returns)

    port_type = root.child("wsdl:portType", name=f"{description.name}PortType")
    for op in description.operations:
        op_el = port_type.child("wsdl:operation", name=op.name)
        if op.doc:
            op_el.child("wsdl:documentation", text=op.doc)
        op_el.child("wsdl:input", message=f"{op.name}Request")
        op_el.child("wsdl:output", message=f"{op.name}Response")

    binding = root.child(
        "wsdl:binding",
        name=f"{description.name}Binding",
        type=f"{description.name}PortType",
    )
    binding.child("soap:binding", style="rpc", transport=HTTP_TRANSPORT)
    for op in description.operations:
        op_el = binding.child("wsdl:operation", name=op.name)
        op_el.child("soap:operation", soapAction=f"urn:skyquery#{op.name}")

    service = root.child("wsdl:service", name=description.name)
    port = service.child(
        "wsdl:port", name=f"{description.name}Port",
        binding=f"{description.name}Binding",
    )
    port.child("soap:address", location=description.url)
    return render(root, indent="  ")


def parse_wsdl(text: str) -> ServiceDescription:
    """Recover a :class:`ServiceDescription` from WSDL text."""
    root = XMLParser().parse(text)
    if root.local_name() != "definitions":
        raise SoapError(f"not a WSDL document: <{root.tag}>")
    name = root.get("name")
    if not name:
        raise SoapError("WSDL definitions element missing name")

    messages = {}
    for message in root.find_all("message"):
        parts = [
            (part.get("name") or "", part.get("type") or "string")
            for part in message.find_all("part")
        ]
        messages[message.get("name")] = parts

    url = ""
    for service in root.find_all("service"):
        for port in service.find_all("port"):
            address = port.find("address")
            if address is not None:
                url = address.get("location") or ""

    operations: List[OperationSpec] = []
    for port_type in root.find_all("portType"):
        for op_el in port_type.find_all("operation"):
            op_name = op_el.get("name") or ""
            params = tuple(messages.get(f"{op_name}Request", ()))
            returns_parts = messages.get(f"{op_name}Response", [("result", "string")])
            doc_el = op_el.find("documentation")
            operations.append(
                OperationSpec(
                    name=op_name,
                    params=params,
                    returns=returns_parts[0][1] if returns_parts else "string",
                    doc=doc_el.text if doc_el is not None else "",
                )
            )
    return ServiceDescription(name=name, url=url, operations=operations)
