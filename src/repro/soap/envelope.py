"""SOAP 1.1 envelopes: RPC requests, responses, and faults."""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import SoapError, SoapFaultError
from repro.soap.encoding import decode_value, encode_value
from repro.soap.xmlparser import XMLParser
from repro.soap.xmlwriter import Element, render

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
SKYQUERY_NS = "urn:skyquery:services"


def _envelope(body_child: Element) -> Element:
    root = Element(
        "soap:Envelope",
        {
            "xmlns:soap": SOAP_ENV_NS,
            "xmlns:xsi": XSI_NS,
            "xmlns:sky": SKYQUERY_NS,
        },
    )
    body = root.child("soap:Body")
    body.children.append(body_child)
    return root


def build_rpc_request(operation: str, params: Dict[str, Any]) -> str:
    """Serialize an RPC call: operation element wrapping encoded parameters."""
    call = Element(f"sky:{operation}")
    for name, value in params.items():
        call.children.append(encode_value(name, value))
    return render(_envelope(call))


def build_rpc_response(operation: str, result: Any) -> str:
    """Serialize an RPC response: ``<{op}Response><result>...</result></...>``."""
    wrapper = Element(f"sky:{operation}Response")
    wrapper.children.append(encode_value("result", result))
    return render(_envelope(wrapper))


def build_fault(faultcode: str, faultstring: str, detail: str = "") -> str:
    """Serialize a SOAP Fault response."""
    fault = Element("soap:Fault")
    fault.child("faultcode", text=faultcode)
    fault.child("faultstring", text=faultstring)
    if detail:
        fault.child("detail", text=detail)
    return render(_envelope(fault))


def _body_of(document: Element) -> Element:
    if document.local_name() != "Envelope":
        raise SoapError(f"not a SOAP envelope: <{document.tag}>")
    body = document.find("Body")
    if body is None or not body.children:
        raise SoapError("SOAP envelope has no Body content")
    return body.children[0]


def parse_rpc_request(
    text: str | bytes, parser: Optional[XMLParser] = None
) -> Tuple[str, Dict[str, Any]]:
    """Parse a request envelope into (operation, decoded params)."""
    parser = parser or XMLParser()
    content = _body_of(parser.parse(text))
    operation = content.local_name()
    params = {kid.local_name(): decode_value(kid) for kid in content.children}
    return operation, params


def parse_rpc_response(
    text: str | bytes, parser: Optional[XMLParser] = None
) -> Any:
    """Parse a response envelope; raises :class:`SoapFaultError` on faults."""
    parser = parser or XMLParser()
    content = _body_of(parser.parse(text))
    if content.local_name() == "Fault":
        code = content.find("faultcode")
        message = content.find("faultstring")
        detail = content.find("detail")
        raise SoapFaultError(
            code.text if code is not None else "soap:Server",
            message.text if message is not None else "unknown fault",
            detail.text if detail is not None else "",
        )
    if not content.local_name().endswith("Response"):
        raise SoapError(f"unexpected response element <{content.tag}>")
    result = content.find("result")
    if result is None:
        raise SoapError("RPC response has no <result>")
    return decode_value(result)
