"""SOAP 1.1 envelopes: RPC requests, responses, and faults.

Requests may carry SOAP Header blocks: the distributed-tracing context
(``<sq:TraceContext traceId=".." parentSpanId=".."/>``) and the
query-lifetime budget (``<sq:QueryBudget deadlineS=".." queryId=".."/>``,
the absolute deadline on the sim clock). Without a tracer or budget the
Header is omitted entirely, so plain envelopes stay byte-identical to
the original wire format.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.budget import QueryBudget
from repro.errors import SoapError, SoapFaultError
from repro.soap.encoding import decode_value, encode_value
from repro.soap.xmlparser import XMLParser
from repro.soap.xmlwriter import Element, render
from repro.tracing.tracer import TraceContext

SOAP_ENV_NS = "http://schemas.xmlsoap.org/soap/envelope/"
XSI_NS = "http://www.w3.org/2001/XMLSchema-instance"
SKYQUERY_NS = "urn:skyquery:services"
TRACING_NS = "urn:skyquery:tracing"
BUDGET_NS = "urn:skyquery:budget"


def _envelope(
    body_child: Element, header_children: Tuple[Element, ...] = ()
) -> Element:
    root = Element(
        "soap:Envelope",
        {
            "xmlns:soap": SOAP_ENV_NS,
            "xmlns:xsi": XSI_NS,
            "xmlns:sky": SKYQUERY_NS,
        },
    )
    if header_children:
        header = root.child("soap:Header")
        header.children.extend(header_children)
    body = root.child("soap:Body")
    body.children.append(body_child)
    return root


def _trace_header(context: TraceContext) -> Element:
    return Element(
        "sq:TraceContext",
        {
            "xmlns:sq": TRACING_NS,
            "traceId": context.trace_id,
            "parentSpanId": context.parent_span_id,
        },
    )


def _budget_header(budget: QueryBudget) -> Element:
    attrs = {
        "xmlns:sq": BUDGET_NS,
        "deadlineS": repr(budget.deadline_s),
    }
    if budget.query_id:
        attrs["queryId"] = budget.query_id
    return Element("sq:QueryBudget", attrs)


def build_rpc_request(
    operation: str,
    params: Dict[str, Any],
    *,
    trace_context: Optional[TraceContext] = None,
    budget: Optional[QueryBudget] = None,
) -> str:
    """Serialize an RPC call: operation element wrapping encoded parameters.

    With ``trace_context``, a ``<sq:TraceContext>`` Header block precedes
    the Body so the callee can parent its server span under the caller's
    span; with ``budget``, a ``<sq:QueryBudget>`` block carries the
    query's absolute deadline to the callee. Without either, the
    envelope has no Header at all.
    """
    call = Element(f"sky:{operation}")
    for name, value in params.items():
        call.children.append(encode_value(name, value))
    headers: Tuple[Element, ...] = ()
    if trace_context:
        headers += (_trace_header(trace_context),)
    if budget is not None:
        headers += (_budget_header(budget),)
    return render(_envelope(call, headers))


def build_rpc_response(operation: str, result: Any) -> str:
    """Serialize an RPC response: ``<{op}Response><result>...</result></...>``."""
    wrapper = Element(f"sky:{operation}Response")
    wrapper.children.append(encode_value("result", result))
    return render(_envelope(wrapper))


def build_fault(faultcode: str, faultstring: str, detail: str = "") -> str:
    """Serialize a SOAP Fault response."""
    fault = Element("soap:Fault")
    fault.child("faultcode", text=faultcode)
    fault.child("faultstring", text=faultstring)
    if detail:
        fault.child("detail", text=detail)
    return render(_envelope(fault))


def _body_of(document: Element) -> Element:
    if document.local_name() != "Envelope":
        raise SoapError(f"not a SOAP envelope: <{document.tag}>")
    body = document.find("Body")
    if body is None or not body.children:
        raise SoapError("SOAP envelope has no Body content")
    return body.children[0]


def parse_trace_context(document: Element) -> Optional[TraceContext]:
    """The envelope's ``<sq:TraceContext>`` Header block, if present."""
    header = document.find("Header")
    if header is None:
        return None
    block = header.find("TraceContext")
    if block is None:
        return None
    trace_id = block.get("traceId")
    parent = block.get("parentSpanId")
    if not trace_id or not parent:
        return None
    return TraceContext(trace_id, parent)


def parse_query_budget(document: Element) -> Optional[QueryBudget]:
    """The envelope's ``<sq:QueryBudget>`` Header block, if present."""
    header = document.find("Header")
    if header is None:
        return None
    block = header.find("QueryBudget")
    if block is None:
        return None
    deadline = block.get("deadlineS")
    if not deadline:
        return None
    try:
        deadline_s = float(deadline)
    except ValueError:
        return None
    return QueryBudget(deadline_s, block.get("queryId") or "")


def parse_rpc_request(
    text: str | bytes, parser: Optional[XMLParser] = None
) -> Tuple[str, Dict[str, Any]]:
    """Parse a request envelope into (operation, decoded params)."""
    operation, params, _, _ = parse_rpc_call(text, parser)
    return operation, params


def parse_rpc_call(
    text: str | bytes, parser: Optional[XMLParser] = None
) -> Tuple[str, Dict[str, Any], Optional[TraceContext], Optional[QueryBudget]]:
    """Parse a request envelope into (operation, params, trace, budget)."""
    parser = parser or XMLParser()
    document = parser.parse(text)
    content = _body_of(document)
    operation = content.local_name()
    params = {kid.local_name(): decode_value(kid) for kid in content.children}
    return (
        operation,
        params,
        parse_trace_context(document),
        parse_query_budget(document),
    )


def parse_rpc_response(
    text: str | bytes, parser: Optional[XMLParser] = None
) -> Any:
    """Parse a response envelope; raises :class:`SoapFaultError` on faults."""
    parser = parser or XMLParser()
    content = _body_of(parser.parse(text))
    if content.local_name() == "Fault":
        code = content.find("faultcode")
        message = content.find("faultstring")
        detail = content.find("detail")
        raise SoapFaultError(
            code.text if code is not None else "soap:Server",
            message.text if message is not None else "unknown fault",
            detail.text if detail is not None else "",
        )
    if not content.local_name().endswith("Response"):
        raise SoapError(f"unexpected response element <{content.tag}>")
    result = content.find("result")
    if result is None:
        raise SoapError("RPC response has no <result>")
    return decode_value(result)
