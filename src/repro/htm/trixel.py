"""A single HTM trixel: a spherical triangle node of the quad tree."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.sphere.vector import Vec3, cross, dot, midpoint

# Corners are stored counter-clockwise as seen from outside the sphere, so a
# point is inside iff it is on the non-negative side of each edge plane.
_EPS = -1e-12


@dataclass(frozen=True)
class Trixel:
    """An HTM node: integer id plus its three (unit-vector) corners."""

    hid: int
    v0: Vec3
    v1: Vec3
    v2: Vec3

    @property
    def corners(self) -> Tuple[Vec3, Vec3, Vec3]:
        """The three corner unit vectors."""
        return (self.v0, self.v1, self.v2)

    def contains(self, p: Vec3) -> bool:
        """True if the unit vector ``p`` lies inside this spherical triangle."""
        return (
            dot(cross(self.v0, self.v1), p) >= _EPS
            and dot(cross(self.v1, self.v2), p) >= _EPS
            and dot(cross(self.v2, self.v0), p) >= _EPS
        )

    def children(self) -> Tuple["Trixel", "Trixel", "Trixel", "Trixel"]:
        """The four child trixels, ids ``hid*4 + 0..3``.

        Standard HTM subdivision: w0, w1, w2 are the midpoints of the edges
        opposite v0, v1, v2 respectively.
        """
        w0 = midpoint(self.v1, self.v2)
        w1 = midpoint(self.v0, self.v2)
        w2 = midpoint(self.v0, self.v1)
        base = self.hid * 4
        return (
            Trixel(base + 0, self.v0, w2, w1),
            Trixel(base + 1, self.v1, w0, w2),
            Trixel(base + 2, self.v2, w1, w0),
            Trixel(base + 3, w0, w1, w2),
        )

    def child_for_point(self, p: Vec3) -> "Trixel":
        """The child containing ``p`` (ties resolved to the first match).

        ``p`` must be inside this trixel; because the four children tile the
        parent, at least one child always matches.
        """
        kids = self.children()
        for kid in kids[:3]:
            if kid.contains(p):
                return kid
        return kids[3]
