"""Sorted, merged sets of inclusive HTM id ranges."""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Sequence, Tuple


class HTMRanges:
    """An immutable set of non-overlapping, sorted inclusive ``[lo, hi]`` ranges.

    Used to express region covers compactly: membership tests are a binary
    search, and ranges translate directly into SQL BETWEEN predicates.
    """

    __slots__ = ("_lows", "_highs")

    def __init__(self, ranges: Iterable[Tuple[int, int]] = ()) -> None:
        merged = self._merge(list(ranges))
        self._lows: List[int] = [lo for lo, _ in merged]
        self._highs: List[int] = [hi for _, hi in merged]

    @staticmethod
    def _merge(ranges: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        cleaned = sorted((lo, hi) for lo, hi in ranges if lo <= hi)
        merged: List[Tuple[int, int]] = []
        for lo, hi in cleaned:
            if merged and lo <= merged[-1][1] + 1:
                prev_lo, prev_hi = merged[-1]
                merged[-1] = (prev_lo, max(prev_hi, hi))
            else:
                merged.append((lo, hi))
        return merged

    def __len__(self) -> int:
        return len(self._lows)

    def __bool__(self) -> bool:
        return bool(self._lows)

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(zip(self._lows, self._highs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HTMRanges):
            return NotImplemented
        return self._lows == other._lows and self._highs == other._highs

    def __repr__(self) -> str:
        inner = ", ".join(f"[{lo}, {hi}]" for lo, hi in self)
        return f"HTMRanges({inner})"

    def contains(self, hid: int) -> bool:
        """True if ``hid`` falls inside any range."""
        i = bisect.bisect_right(self._lows, hid) - 1
        return i >= 0 and hid <= self._highs[i]

    def union(self, other: "HTMRanges") -> "HTMRanges":
        """Set union of two range sets."""
        return HTMRanges(list(self) + list(other))

    def id_count(self) -> int:
        """Total number of ids covered."""
        return sum(hi - lo + 1 for lo, hi in self)

    def as_tuples(self) -> Sequence[Tuple[int, int]]:
        """The ranges as a list of ``(lo, hi)`` tuples."""
        return list(self)
