"""Point-to-trixel lookups."""

from __future__ import annotations

from repro.errors import HTMError
from repro.htm.mesh import DEPTH_MAX, roots
from repro.sphere.coords import radec_to_vector
from repro.sphere.vector import Vec3, normalize


def id_for_point(v: Vec3, depth: int) -> int:
    """The id of the depth-``depth`` trixel containing unit vector ``v``."""
    if not 0 <= depth <= DEPTH_MAX:
        raise HTMError(f"depth {depth!r} outside [0, {DEPTH_MAX}]")
    v = normalize(v)
    node = None
    for root in roots():
        if root.contains(v):
            node = root
            break
    if node is None:  # numerically on a seam; snap to the nearest root
        node = roots()[0]
    for _ in range(depth):
        node = node.child_for_point(v)
    return node.hid


def id_for_radec(ra_deg: float, dec_deg: float, depth: int) -> int:
    """The id of the depth-``depth`` trixel containing (ra, dec) degrees."""
    return id_for_point(radec_to_vector(ra_deg, dec_deg), depth)


class HTMIndex:
    """A fixed-depth HTM lookup helper bound to one mesh depth.

    The relational engine attaches one of these to a table's spatial column
    pair so that stored rows carry a precomputed ``htm_id`` and range scans
    can prune by id range.
    """

    def __init__(self, depth: int) -> None:
        if not 0 <= depth <= DEPTH_MAX:
            raise HTMError(f"depth {depth!r} outside [0, {DEPTH_MAX}]")
        self.depth = depth

    def id_for(self, v: Vec3) -> int:
        """Trixel id of a unit vector at this index's depth."""
        return id_for_point(v, self.depth)

    def id_for_radec(self, ra_deg: float, dec_deg: float) -> int:
        """Trixel id of (ra, dec) degrees at this index's depth."""
        return id_for_radec(ra_deg, dec_deg, self.depth)
