"""Batched HTM covers: classify many caps against the quad tree at once.

:func:`repro.htm.cover.cover` walks the quad tree per region, calling
``classify_triangle`` once per (region, trixel) visit — fine for one AREA
clause, but the vectorized cross-match kernel probes the index with one
cap *per incoming tuple*, so a chain step issues hundreds of covers whose
frontiers overlap heavily. :func:`batch_cap_covers` walks the tree once,
breadth-first, carrying every cap's frontier together: each level's
(cap, trixel) pairs are classified in a handful of numpy array passes, and
trixel geometry (corners, edge-plane normals) is computed once per distinct
trixel instead of once per cap.

The classification replicates :meth:`repro.sphere.regions.Cap.
classify_triangle` operation for operation (same component order, same
epsilons), so every cover returned here is identical — full and partial
ranges alike — to what the per-region walk produces. The one non-trivial
step, the arc-intersection test behind the ``|sin distance|`` prefilter,
is delegated to the scalar ``Cap._intersects_edge`` itself for the few
pairs that reach it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import HTMError
from repro.htm.cover import Cover
from repro.htm.mesh import DEPTH_MAX, roots
from repro.htm.ranges import HTMRanges
from repro.htm.trixel import Trixel
from repro.sphere.regions import Cap

# The epsilons of Cap.contains and Cap._center_in_triangle.
_CONTAINS_EPS = 1e-15
_TRIANGLE_EPS = -1e-15


class _LevelGeometry:
    """Per-trixel arrays for one BFS level (shared by every cap)."""

    __slots__ = ("hids", "corners", "crosses", "normals", "degenerate")

    def __init__(self, nodes: Sequence[Trixel]) -> None:
        u = len(nodes)
        self.hids = np.fromiter(
            (t.hid for t in nodes), dtype=np.int64, count=u
        )
        corners = np.empty((u, 3, 3), dtype=np.float64)
        for i, t in enumerate(nodes):
            corners[i, 0] = t.v0
            corners[i, 1] = t.v1
            corners[i, 2] = t.v2
        self.corners = corners
        # Edge cross products for edges (v0,v1), (v1,v2), (v2,v0) — the
        # raw vectors are Cap._center_in_triangle's half-space normals and,
        # normalized, Cap._intersects_edge's great-circle plane normals.
        a = corners
        b = corners[:, (1, 2, 0), :]
        crosses = np.empty_like(corners)
        crosses[..., 0] = a[..., 1] * b[..., 2] - a[..., 2] * b[..., 1]
        crosses[..., 1] = a[..., 2] * b[..., 0] - a[..., 0] * b[..., 2]
        crosses[..., 2] = a[..., 0] * b[..., 1] - a[..., 1] * b[..., 0]
        self.crosses = crosses
        lengths = np.sqrt(
            crosses[..., 0] * crosses[..., 0]
            + crosses[..., 1] * crosses[..., 1]
            + crosses[..., 2] * crosses[..., 2]
        )
        self.degenerate = lengths < 1e-300
        safe = np.where(self.degenerate, 1.0, lengths)
        self.normals = crosses / safe[..., None]


def batch_cap_covers(caps: Sequence[Cap], depth: int) -> List[Cover]:
    """Covers of many caps at one depth; identical to per-cap ``cover()``."""
    if not 0 <= depth <= DEPTH_MAX:
        raise HTMError(f"depth {depth!r} outside [0, {DEPTH_MAX}]")
    m = len(caps)
    full: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
    partial: List[List[Tuple[int, int]]] = [[] for _ in range(m)]
    if m == 0:
        return []

    centers = np.array([c.center for c in caps], dtype=np.float64)
    # Precompute each cap's scalar thresholds with math.* exactly as the
    # scalar methods evaluate them per call.
    contains_thr = np.array(
        [math.cos(c.radius_rad) - _CONTAINS_EPS for c in caps]
    )
    sin_bound = np.array(
        [math.sin(min(c.radius_rad, math.pi / 2.0)) for c in caps]
    )
    wide = np.array(
        [c.radius_rad > math.pi / 2.0 for c in caps], dtype=bool
    )

    nodes: List[Trixel] = list(roots())
    cap_idx = np.repeat(np.arange(m, dtype=np.intp), len(nodes))
    node_idx = np.tile(np.arange(len(nodes), dtype=np.intp), m)

    level = 0
    while len(cap_idx):
        geom = _LevelGeometry(nodes)
        C = centers[cap_idx]
        cx, cy, cz = C[:, 0], C[:, 1], C[:, 2]
        corners = geom.corners[node_idx]

        thr = contains_thr[cap_idx]
        inside = [
            corners[:, k, 0] * cx + corners[:, k, 1] * cy
            + corners[:, k, 2] * cz >= thr
            for k in range(3)
        ]
        all_in = inside[0] & inside[1] & inside[2]
        any_in = inside[0] | inside[1] | inside[2]

        # Corners all outside: the cap may contain the triangle's interior
        # (center inside every edge half-space) or poke through an edge.
        none_in = ~any_in
        crosses = geom.crosses[node_idx]
        center_in = none_in.copy()
        for e in range(3):
            center_in &= (
                crosses[:, e, 0] * cx + crosses[:, e, 1] * cy
                + crosses[:, e, 2] * cz >= _TRIANGLE_EPS
            )

        # Edge test: the vectorized |sin distance| prefilter is exactly
        # Cap._intersects_edge's early exit; survivors (rare — the cap must
        # graze an edge's great circle) get the full scalar test.
        need_edge = none_in & ~center_in
        hits = np.zeros(len(cap_idx), dtype=bool)
        if need_edge.any():
            normals = geom.normals[node_idx]
            bound = sin_bound[cap_idx]
            degenerate = geom.degenerate[node_idx]
            maybe = []
            for e in range(3):
                sin_dist = (
                    normals[:, e, 0] * cx + normals[:, e, 1] * cy
                    + normals[:, e, 2] * cz
                )
                maybe.append(
                    need_edge & ~degenerate[:, e] & (np.abs(sin_dist) <= bound)
                )
            for k in np.nonzero(maybe[0] | maybe[1] | maybe[2])[0].tolist():
                cap = caps[cap_idx[k]]
                v0, v1, v2 = nodes[node_idx[k]].corners
                for e, (ea, eb) in enumerate(((v0, v1), (v1, v2), (v2, v0))):
                    if maybe[e][k] and cap._intersects_edge(ea, eb):
                        hits[k] = True
                        break

        is_inside = all_in & ~wide[cap_idx]
        is_partial = (all_in & wide[cap_idx]) | (any_in & ~all_in) | (
            none_in & (center_in | hits)
        )

        hids = geom.hids[node_idx]
        shift = 2 * (depth - level)
        if is_inside.any():
            sel = np.nonzero(is_inside)[0]
            lo = hids[sel] << shift
            hi = ((hids[sel] + 1) << shift) - 1
            for ci, rlo, rhi in zip(
                cap_idx[sel].tolist(), lo.tolist(), hi.tolist()
            ):
                full[ci].append((rlo, rhi))

        sel = np.nonzero(is_partial)[0]
        if level == depth:
            for ci, hid in zip(cap_idx[sel].tolist(), hids[sel].tolist()):
                partial[ci].append((hid, hid))
            break
        # Expand partial pairs one level down; each distinct trixel's
        # children are computed once, shared by every cap that needs them.
        next_nodes: List[Trixel] = []
        child_base: Dict[int, int] = {}
        next_cap: List[int] = []
        next_node: List[int] = []
        for k in sel.tolist():
            ni = int(node_idx[k])
            base = child_base.get(ni)
            if base is None:
                base = len(next_nodes)
                next_nodes.extend(nodes[ni].children())
                child_base[ni] = base
            ci = int(cap_idx[k])
            next_cap.extend((ci, ci, ci, ci))
            next_node.extend((base, base + 1, base + 2, base + 3))
        nodes = next_nodes
        cap_idx = np.asarray(next_cap, dtype=np.intp)
        node_idx = np.asarray(next_node, dtype=np.intp)
        level += 1

    return [
        Cover(depth=depth, full=HTMRanges(f), partial=HTMRanges(p))
        for f, p in zip(full, partial)
    ]
