"""Hierarchical Triangular Mesh (HTM) spatial index.

The HTM [Hie02 in the paper] builds a quad tree on the sky: the unit sphere
is split into 8 root spherical triangles (an octahedron), and each triangle
("trixel") is recursively split into 4 children by the midpoints of its
edges. Every trixel has a 64-bit-style integer id: roots are 8..15 and a
child's id is ``parent*4 + k``; at depth ``d`` every id has exactly
``d+2`` base-4 digits with a leading 1 bit, so ids at one depth form a
contiguous range and a region cover can be expressed as a set of id ranges.

The paper uses the HTM exactly the way :func:`repro.htm.cover.cover` does:
"triangles that are entirely within or intersect the range are first
computed. All objects in the triangles that are entirely within the range
are in the range too. Objects that are in intersecting triangles, however,
are again individually tested."
"""

from repro.htm.trixel import Trixel
from repro.htm.mesh import (
    DEPTH_MAX,
    depth_of_id,
    id_to_name,
    name_to_id,
    roots,
    trixel_by_id,
    trixel_by_name,
)
from repro.htm.index import HTMIndex, id_for_point, id_for_radec
from repro.htm.ranges import HTMRanges
from repro.htm.cover import Cover, cover, cover_adaptive

__all__ = [
    "Trixel",
    "DEPTH_MAX",
    "depth_of_id",
    "id_to_name",
    "name_to_id",
    "roots",
    "trixel_by_id",
    "trixel_by_name",
    "HTMIndex",
    "id_for_point",
    "id_for_radec",
    "HTMRanges",
    "Cover",
    "cover",
    "cover_adaptive",
]
