"""The HTM root octahedron, id/name arithmetic, and trixel reconstruction."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import HTMError
from repro.htm.trixel import Trixel
from repro.sphere.vector import Vec3

DEPTH_MAX = 24  # ids stay well below 2**63

# Octahedron vertices, standard HTM convention (Szalay et al.).
_V: Tuple[Vec3, ...] = (
    (0.0, 0.0, 1.0),   # v0: north pole
    (1.0, 0.0, 0.0),   # v1
    (0.0, 1.0, 0.0),   # v2
    (-1.0, 0.0, 0.0),  # v3
    (0.0, -1.0, 0.0),  # v4
    (0.0, 0.0, -1.0),  # v5: south pole
)

# Root faces: name -> (id, corner indices). Ids 8..15 so every valid id's
# base-4 representation has a fixed-width prefix ("10".."13" for S, ...).
_ROOTS: Tuple[Tuple[str, int, Tuple[int, int, int]], ...] = (
    ("S0", 8, (1, 5, 2)),
    ("S1", 9, (2, 5, 3)),
    ("S2", 10, (3, 5, 4)),
    ("S3", 11, (4, 5, 1)),
    ("N0", 12, (1, 0, 4)),
    ("N1", 13, (4, 0, 3)),
    ("N2", 14, (3, 0, 2)),
    ("N3", 15, (2, 0, 1)),
)

_NAME_BY_ROOT_ID = {hid: name for name, hid, _ in _ROOTS}
_ROOT_ID_BY_NAME = {name: hid for name, hid, _ in _ROOTS}


def roots() -> List[Trixel]:
    """The 8 root trixels (depth 0), ids 8..15."""
    return [
        Trixel(hid, _V[a], _V[b], _V[c]) for _, hid, (a, b, c) in _ROOTS
    ]


def depth_of_id(hid: int) -> int:
    """Depth of a trixel id (roots are depth 0).

    Raises :class:`~repro.errors.HTMError` for invalid ids.
    """
    if hid < 8:
        raise HTMError(f"invalid HTM id {hid!r}: ids start at 8")
    bits = hid.bit_length()
    if bits % 2 != 0:
        raise HTMError(f"invalid HTM id {hid!r}: odd bit length")
    return (bits - 4) // 2


def trixel_by_id(hid: int) -> Trixel:
    """Reconstruct a trixel from its id by walking down from its root."""
    depth = depth_of_id(hid)
    path = []
    h = hid
    for _ in range(depth):
        path.append(h & 3)
        h >>= 2
    if h not in _NAME_BY_ROOT_ID:
        raise HTMError(f"invalid HTM id {hid!r}: bad root {h}")
    node = _root_by_id(h)
    for k in reversed(path):
        node = node.children()[k]
    return node


def _root_by_id(hid: int) -> Trixel:
    name, _, (a, b, c) = _ROOTS[hid - 8]
    return Trixel(hid, _V[a], _V[b], _V[c])


def id_to_name(hid: int) -> str:
    """Render an id as an HTM name like ``"N012"``."""
    depth = depth_of_id(hid)
    digits = []
    h = hid
    for _ in range(depth):
        digits.append(str(h & 3))
        h >>= 2
    return _NAME_BY_ROOT_ID[h] + "".join(reversed(digits))


def name_to_id(name: str) -> int:
    """Parse an HTM name like ``"N012"`` into its integer id."""
    if len(name) < 2 or name[:2] not in _ROOT_ID_BY_NAME:
        raise HTMError(f"invalid HTM name {name!r}")
    hid = _ROOT_ID_BY_NAME[name[:2]]
    for ch in name[2:]:
        if ch not in "0123":
            raise HTMError(f"invalid HTM name {name!r}: digit {ch!r}")
        hid = hid * 4 + int(ch)
    return hid


def trixel_by_name(name: str) -> Trixel:
    """Reconstruct a trixel from its name."""
    return trixel_by_id(name_to_id(name))


def id_range_at_depth(hid: int, depth: int) -> Tuple[int, int]:
    """Inclusive id range covered by trixel ``hid`` at a deeper ``depth``.

    All depth-``depth`` descendants of ``hid`` form the contiguous range
    returned here; this is what lets region covers be expressed as range
    predicates pushed into SQL (``htm_id BETWEEN lo AND hi``).
    """
    own = depth_of_id(hid)
    if depth < own:
        raise HTMError(f"target depth {depth} above trixel depth {own}")
    shift = 2 * (depth - own)
    return (hid << shift, ((hid + 1) << shift) - 1)
