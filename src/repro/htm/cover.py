"""Region covers: which trixels intersect a spherical region.

Implements the paper's Section 5.4 description verbatim: the cover returns
trixels *entirely within* the region (their objects need no further test)
and trixels that merely *intersect* it (their objects must be individually
tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import HTMError
from repro.htm.mesh import DEPTH_MAX, id_range_at_depth, roots
from repro.htm.ranges import HTMRanges
from repro.htm.trixel import Trixel
from repro.sphere.regions import Region, TrixelRelation


@dataclass(frozen=True)
class Cover:
    """A region cover at a fixed depth.

    ``full`` ranges contain only ids whose trixels are entirely inside the
    region; ``partial`` ranges contain ids whose trixels intersect its
    boundary. ``full`` and ``partial`` are disjoint.
    """

    depth: int
    full: HTMRanges
    partial: HTMRanges

    def all_ranges(self) -> HTMRanges:
        """Union of full and partial ranges (every candidate id)."""
        return self.full.union(self.partial)


def cover(region: Region, depth: int) -> Cover:
    """Compute the trixel cover of ``region`` at the given mesh depth.

    Walks the quad tree breadth-first; INSIDE subtrees are emitted as whole
    id ranges without descending (this is what makes covers cheap), OUTSIDE
    subtrees are pruned, and PARTIAL nodes are split until ``depth``.
    """
    if not 0 <= depth <= DEPTH_MAX:
        raise HTMError(f"depth {depth!r} outside [0, {DEPTH_MAX}]")

    full: List[Tuple[int, int]] = []
    partial: List[Tuple[int, int]] = []
    frontier: List[Trixel] = list(roots())
    level = 0
    while frontier:
        next_frontier: List[Trixel] = []
        for trixel in frontier:
            relation = region.classify_triangle(trixel.corners)
            if relation is TrixelRelation.OUTSIDE:
                continue
            if relation is TrixelRelation.INSIDE:
                full.append(id_range_at_depth(trixel.hid, depth))
            elif level == depth:
                partial.append((trixel.hid, trixel.hid))
            else:
                next_frontier.extend(trixel.children())
        frontier = next_frontier
        level += 1
        if level > depth:
            break
    return Cover(depth=depth, full=HTMRanges(full), partial=HTMRanges(partial))


def cover_adaptive(region: Region, depth: int, max_ranges: int) -> Cover:
    """A budgeted cover: refine boundary trixels only while the range count
    stays within ``max_ranges``.

    Real HTM deployments bound cover size because every range becomes a SQL
    BETWEEN predicate. This variant splits PARTIAL trixels breadth-first
    until further splitting could exceed the (soft) budget, then freezes
    the remaining boundary trixels as PARTIAL ranges expressed at ``depth``.
    Soundness is identical to :func:`cover`; only the partial fraction
    (rows needing the geometric recheck) grows as the budget shrinks.
    """
    if not 0 <= depth <= DEPTH_MAX:
        raise HTMError(f"depth {depth!r} outside [0, {DEPTH_MAX}]")
    if max_ranges < 8:
        raise HTMError(f"max_ranges must be >= 8, got {max_ranges}")

    full: List[Tuple[int, int]] = []
    partial: List[Tuple[int, int]] = []
    frontier: List[Tuple[Trixel, int]] = [(t, 0) for t in roots()]
    while frontier:
        trixel, level = frontier.pop(0)
        relation = region.classify_triangle(trixel.corners)
        if relation is TrixelRelation.OUTSIDE:
            continue
        if relation is TrixelRelation.INSIDE:
            full.append(id_range_at_depth(trixel.hid, depth))
            continue
        committed = len(full) + len(partial) + len(frontier)
        if level >= depth or committed + 4 > max_ranges:
            partial.append(id_range_at_depth(trixel.hid, depth))
        else:
            frontier.extend((kid, level + 1) for kid in trixel.children())
    return Cover(depth=depth, full=HTMRanges(full), partial=HTMRanges(partial))
