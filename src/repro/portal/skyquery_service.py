"""The Portal's SkyQuery service — the endpoint clients talk to."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.services.framework import WebService
from repro.soap.encoding import infer_rowset

if TYPE_CHECKING:
    from repro.portal.portal import Portal


class SkyQueryService(WebService):
    """``SubmitQuery``: accepts cross-match SQL, returns the final rows.

    "[The Portal] receives SQL-like queries from the Client through its
    SkyQuery service."
    """

    def __init__(self, portal: "Portal") -> None:
        super().__init__("SkyQuery")
        self._portal = portal
        self.register(
            "SubmitQuery",
            self._submit,
            params=(("sql", "string"), ("strategy", "string")),
            returns="struct",
            doc="Run a federated cross-match query and return its rows.",
        )
        self.register(
            "ExplainQuery",
            self._explain,
            params=(("sql", "string"), ("strategy", "string")),
            returns="struct",
            doc="Decompose, probe, and plan without executing the chain.",
        )
        self.register(
            "GetFederation",
            self._get_federation,
            returns="struct",
            doc="Describe the registered archives (tables, sigma, footprint).",
        )

    def _explain(self, sql: str, strategy: str = "") -> Dict[str, Any]:
        from repro.portal.planner import OrderingStrategy

        chosen = OrderingStrategy(strategy) if strategy else \
            OrderingStrategy.COUNT_DESC
        return self._portal.explain(sql, strategy=chosen)

    def _get_federation(self) -> Dict[str, Any]:
        catalog = self._portal.catalog
        archives = []
        for name in catalog.archives():
            record = catalog.node(name)
            info = record.info
            archives.append(
                {
                    "archive": record.archive,
                    "sigma_arcsec": info.sigma_arcsec,
                    "primary_table": info.primary_table,
                    "object_count": record.object_count,
                    "dialect": record.dialect,
                    "tables": sorted(
                        original for original, _ in record.schema.values()
                    ),
                    "footprint_ra_deg": info.footprint_ra_deg,
                    "footprint_dec_deg": info.footprint_dec_deg,
                    "footprint_radius_arcsec": info.footprint_radius_arcsec,
                }
            )
        return {
            "federation_size": len(catalog),
            "archives": archives,
            "queries_served": self._portal.queries_served,
        }

    def _submit(self, sql: str, strategy: str = "") -> Dict[str, Any]:
        from repro.portal.planner import OrderingStrategy

        chosen = OrderingStrategy.COUNT_DESC
        if strategy:
            chosen = OrderingStrategy(strategy)
        result = self._portal.submit(sql, strategy=chosen)
        return {
            "columns": list(result.columns),
            "rows": infer_rowset(result.columns, result.rows),
            "stats": result.node_stats,
            "counts": dict(result.counts),
            "epochs": dict(result.epochs),
            "matched_tuples": result.matched_tuples,
            "plan": result.plan.to_wire() if result.plan is not None else None,
            "warnings": list(result.warnings),
            "degraded": result.degraded,
            "failovers": result.failovers,
        }
