"""The Portal: the federation's mediator.

The Portal (paper Section 5.1) provides the Registration service SkyNodes
use to join, catalogs their meta-data, decomposes user queries, issues
count-star performance queries, builds the ordered execution plan, starts
the daisy chain, and relays the final result to the client.
"""

from repro.portal.plan import ExecutionPlan, PlanStep
from repro.portal.catalog import FederationCatalog, NodeRecord
from repro.portal.decompose import DecomposedQuery, NodeSubquery, decompose
from repro.portal.planner import OrderingStrategy, Planner
from repro.portal.executor import ChainExecutor, FederatedResult
from repro.portal.portal import Portal

__all__ = [
    "ExecutionPlan",
    "PlanStep",
    "FederationCatalog",
    "NodeRecord",
    "DecomposedQuery",
    "NodeSubquery",
    "decompose",
    "OrderingStrategy",
    "Planner",
    "ChainExecutor",
    "FederatedResult",
    "Portal",
]
