"""Plan execution: kick off the daisy chain, finish the query at the Portal.

The Portal sends one ``PerformXMatch`` RPC to the first SkyNode on the
plan list; the chain does the rest (Section 5.3, steps 6-7 of Figure 3).
When the surviving tuples come back, the Portal applies the cross-archive
predicates no single node could evaluate, projects the SELECT list, and
relays the result to the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.db.expr import RowContext, evaluate, is_true
from repro.db.engine import ASTRO_CONSTANTS
from repro.errors import ExecutionError
from repro.portal.decompose import DecomposedQuery
from repro.portal.plan import ExecutionPlan
from repro.services.chunked import receive_rowset
from repro.sql.ast import ColumnRef, SelectItem
from repro.xmatch.tuples import PartialTuple
from repro.xmatch.wire import rowset_to_tuples

if TYPE_CHECKING:
    from repro.portal.portal import Portal


@dataclass
class FederatedResult:
    """What the Portal relays back to the client."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    node_stats: List[Dict[str, Any]] = field(default_factory=list)
    plan: Optional[ExecutionPlan] = None
    counts: Dict[str, int] = field(default_factory=dict)
    matched_tuples: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class ChainExecutor:
    """Runs an :class:`ExecutionPlan` and finishes the query at the Portal."""

    def __init__(self, portal: "Portal") -> None:
        self._portal = portal

    def execute(
        self, plan: ExecutionPlan, decomposed: DecomposedQuery
    ) -> FederatedResult:
        """Start the chain at the first plan step and post-process."""
        network = self._portal.require_network()
        first = plan.step(0)
        proxy = self._portal.proxy(first.url)
        with network.phase("crossmatch-chain"):
            response = proxy.call(
                "PerformXMatch", plan=plan.to_wire(), position=0
            )
            if not isinstance(response, dict):
                raise ExecutionError(f"malformed chain response: {response!r}")
            rowset = receive_rowset(response, proxy)
        tuples = rowset_to_tuples(
            rowset, plan.member_aliases_after(0), plan.attr_columns_after(0)
        )
        stats = list(response.get("stats") or [])
        return self._finish(plan, decomposed, tuples, stats)

    def _finish(
        self,
        plan: ExecutionPlan,
        decomposed: DecomposedQuery,
        tuples: List[PartialTuple],
        stats: List[Dict[str, Any]],
    ) -> FederatedResult:
        """Cross-archive predicates + SELECT projection, at the Portal."""
        survivors = [
            partial
            for partial in tuples
            if self._passes_cross_conjuncts(decomposed, partial)
        ]
        columns = self._output_columns(decomposed.query.items)
        rows = [
            self._project(decomposed.query.items, partial)
            for partial in survivors
        ]
        if decomposed.query.distinct:
            seen = set()
            deduped_rows, deduped_survivors = [], []
            for row, partial in zip(rows, survivors):
                if row in seen:
                    continue
                seen.add(row)
                deduped_rows.append(row)
                deduped_survivors.append(partial)
            rows, survivors = deduped_rows, deduped_survivors
        order_by = decomposed.query.order_by
        if order_by:
            from repro.db.engine import _SortKey

            keys = [
                tuple(
                    _SortKey(evaluate(item.expr, self._context_for(partial)),
                             item.descending)
                    for item in order_by
                )
                for partial in survivors
            ]
            rows = [row for _, row in sorted(zip(keys, rows),
                                             key=lambda pair: pair[0])]
        limit = decomposed.query.limit
        if limit is not None:
            rows = rows[:limit]
        return FederatedResult(
            columns=columns,
            rows=rows,
            node_stats=stats,
            plan=plan,
            matched_tuples=len(tuples),
        )

    def _passes_cross_conjuncts(
        self, decomposed: DecomposedQuery, partial: PartialTuple
    ) -> bool:
        if not decomposed.analysis.cross_conjuncts:
            return True
        ctx = self._context_for(partial)
        return all(
            is_true(evaluate(conjunct, ctx))
            for conjunct in decomposed.analysis.cross_conjuncts
        )

    @staticmethod
    def _context_for(partial: PartialTuple) -> RowContext:
        ctx = RowContext(ASTRO_CONSTANTS)
        for key, value in partial.attributes.items():
            alias, _, column = key.partition(".")
            ctx.bind(alias, column, value)
        return ctx

    @staticmethod
    def _output_columns(items: Tuple[SelectItem, ...]) -> List[str]:
        columns: List[str] = []
        for item in items:
            if item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(str(item.expr))
            else:
                columns.append(f"expr{len(columns) + 1}")
        return columns

    def _project(
        self, items: Tuple[SelectItem, ...], partial: PartialTuple
    ) -> Tuple[Any, ...]:
        ctx = self._context_for(partial)
        return tuple(evaluate(item.expr, ctx) for item in items)
