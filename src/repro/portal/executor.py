"""Plan execution: kick off the daisy chain, finish the query at the Portal.

The Portal sends one ``PerformXMatch`` RPC to the first SkyNode on the
plan list; the chain does the rest (Section 5.3, steps 6-7 of Figure 3).
When the surviving tuples come back, the Portal applies the cross-archive
predicates no single node could evaluate, projects the SELECT list, and
relays the result to the client.

A failed chain is not necessarily a failed query: the executor retries
transient failures, re-plans around drop-out archives that died mid-run,
and — when a *mandatory* node is permanently lost — returns a degraded
:class:`FederatedResult` carrying structured warnings instead of raising.

Two chain execution modes are supported. ``store-forward`` (the default,
and the reference oracle) is the classic single ``PerformXMatch`` round
trip: each node waits for its neighbour's complete tuple set.
``pipelined`` opens a stream down the chain and then pulls every batch
inside one ``parallel()`` block, so each batch's whole chain traversal is
one branch and the clock charges the *makespan* over batches — transfer
of one batch overlaps compute of another, exactly the overlap a real
pipelined chain would enjoy. Both modes return identical rows in
identical order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.budget import use_budget
from repro.db.expr import RowContext, evaluate, is_true
from repro.db.engine import ASTRO_CONSTANTS
from repro.errors import (
    DeadlineExceededError,
    ExecutionError,
    ShardUnavailableError,
    SoapFaultError,
    TransportError,
)
from repro.portal.decompose import DecomposedQuery
from repro.portal.plan import ExecutionPlan
from repro.services.chunked import receive_rowset
from repro.sql.ast import ColumnRef, SelectItem
from repro.xmatch.tuples import PartialTuple
from repro.xmatch.wire import rowset_to_tuples

if TYPE_CHECKING:
    from repro.portal.portal import Portal
    from repro.tracing.tracer import Trace


@dataclass
class FederatedResult:
    """What the Portal relays back to the client.

    ``warnings`` lists the per-node degradation events (unreachable
    drop-out skipped, mandatory archive lost, ...) and ``degraded`` is True
    whenever the answer is incomplete relative to the submitted query —
    the structured alternative to aborting the whole federation run.
    """

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    node_stats: List[Dict[str, Any]] = field(default_factory=list)
    plan: Optional[ExecutionPlan] = None
    counts: Dict[str, int] = field(default_factory=dict)
    #: Snapshot epoch each archive (by alias) was pinned at during
    #: planning — the version every chain hop read. Clients re-submitting
    #: with ``pin_epochs=result.epochs`` get byte-identical rows even
    #: after later ingest commits (until the epochs are GC'd).
    epochs: Dict[str, int] = field(default_factory=dict)
    matched_tuples: int = 0
    warnings: List[str] = field(default_factory=list)
    degraded: bool = False
    #: Endpoint substitutions made while answering (plan-time or
    #: mid-chain). A failed-over answer is complete, NOT degraded: every
    #: archive contributed, just not always through its primary endpoint.
    failovers: int = 0
    #: The assembled distributed trace of this submission, when the
    #: federation's network has a tracer installed (see repro.tracing).
    trace: Optional["Trace"] = field(default=None, repr=False, compare=False)
    #: How the Portal's semantic cache answered this submission: None for
    #: a real federation run, else "exact", "fingerprint", or
    #: "containment" (see repro.portal.cache). Excluded from equality so
    #: a cache hit still compares equal to the fresh run it mirrors.
    cache: Optional[str] = field(default=None, repr=False, compare=False)
    #: Pre-cross-conjunct partial tuples, retained only when the Portal's
    #: cache wants AREA-containment raw material. Never part of the wire
    #: response or of result equality.
    raw_tuples: Optional[List[PartialTuple]] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


#: Chain execution modes: the store-and-forward reference path and the
#: batch-pipelined streaming path. Selectable like the xmatch kernel.
CHAIN_MODES = ("store-forward", "pipelined")

#: Phase label for the per-batch payload traffic of a pipelined chain, so
#: reports separate bulk tuple bytes from chain-control bytes.
BATCH_TRANSFER_PHASE = "batch-transfer"


class ChainExecutor:
    """Runs an :class:`ExecutionPlan` and finishes the query at the Portal."""

    #: Whole-chain retry budget when every plan node still looks healthy
    #: (the failure was transient but outlasted the per-hop retries).
    MAX_CHAIN_ATTEMPTS = 3

    def __init__(self, portal: "Portal") -> None:
        self._portal = portal
        self._xid_counter = itertools.count(1)

    def execute(
        self,
        plan: ExecutionPlan,
        decomposed: DecomposedQuery,
        *,
        warnings: Optional[List[str]] = None,
        degraded: bool = False,
        failovers: int = 0,
        qid: str = "",
    ) -> FederatedResult:
        """Start the chain at the first plan step and post-process.

        On chain failure the executor probes each step's *current*
        endpoint: a dead hop with a live replica is re-routed in place
        (recorded in ``failovers``, NOT as degradation — the answer stays
        complete), transient faults retry the chain, dead drop-out archives
        with no replica left are pruned, and a mandatory archive with no
        live endpoint at all yields a degraded empty result whose warnings
        name the lost node. Failing over resets the transient-retry budget:
        a re-routed plan is a fresh chain.

        ``qid`` is the Portal-minted query id of a budgeted submission: it
        doubles as the execution id (so the nodes' checkpoints are keyed to
        it) and tags streams and chunked transfers, which is what lets a
        ``CancelQuery`` fan-down free every piece of the query's server
        state eagerly. When the chain dies on a
        :class:`~repro.errors.DeadlineExceededError`, the executor issues
        that fan-down and returns a degraded result whose warning names
        the hop that ran out of budget — the query never hangs.
        """
        network = self._portal.require_network()
        mode = getattr(self._portal, "chain_mode", "store-forward")
        if mode not in CHAIN_MODES:
            raise ExecutionError(
                f"unknown chain mode {mode!r}; expected one of {CHAIN_MODES}"
            )
        warnings = list(warnings or [])
        counters = {"failovers": failovers, "degraded": degraded}
        #: crossmatch endpoints seen dead this query, per archive — never
        #: failed back onto within the same execution.
        tried_dead: Dict[str, set] = {}
        #: Pipelined-mode resume state: completed batch responses survive
        #: a chain failure so the retry pulls only what is still missing.
        #: With ``checkpoint_resume`` off every attempt starts from scratch
        #: (the full-restart comparison arm of benchmarks/E18).
        resume = getattr(self._portal, "checkpoint_resume", True)
        stream_state: Optional[Dict[str, Any]] = (
            {"fingerprint": None, "responses": None} if resume else None
        )
        #: One execution id for every attempt of this query: retries hit
        #: the nodes' checkpoints; a fresh identical query never does.
        #: An empty xid disables checkpointing at the nodes entirely.
        #: A budgeted query's Portal-minted qid doubles as the xid, so
        #: a later CancelQuery frees its checkpoints by prefix.
        xid = (
            (qid or f"{self._portal.hostname}-x{next(self._xid_counter)}")
            if resume else ""
        )
        attempts = 0
        current = plan
        while True:
            try:
                with network.phase("crossmatch-chain"):
                    if mode == "pipelined":
                        rowset, stats = self._stream_chain(
                            current, network, stream_state, qid=qid
                        )
                    else:
                        rowset, stats = self._store_forward_chain(
                            current, xid
                        )
                break
            except DeadlineExceededError as exc:
                # The budget ran out somewhere down the chain (the message
                # names the hop). Don't wait out server TTLs: fan a
                # CancelQuery down the chain and at any replicas holding
                # checkpoints, then degrade instead of hanging or raising.
                warnings.append(f"query deadline exceeded: {exc}")
                if getattr(self._portal, "eager_cancel", True):
                    self._cancel_chain(current, qid or xid)
                return FederatedResult(
                    columns=self._output_columns(decomposed.query.items),
                    rows=[],
                    plan=current,
                    warnings=list(warnings),
                    degraded=True,
                    failovers=counters["failovers"],
                )
            except ShardUnavailableError as exc:
                # A coordinating hop exhausted one shard's endpoint
                # candidates. Replica *coordinators* share the same shard
                # endpoints, so archive-level failover cannot resurrect
                # the slice — degrade now, with a warning that names the
                # shard (not the whole archive: every other slice was
                # reachable), and free the surviving hops' state.
                warnings.append(f"shard unavailable: {exc}")
                if getattr(self._portal, "eager_cancel", True):
                    self._cancel_chain(current, qid or xid)
                return FederatedResult(
                    columns=self._output_columns(decomposed.query.items),
                    rows=[],
                    plan=current,
                    warnings=list(warnings),
                    degraded=True,
                    failovers=counters["failovers"],
                )
            except (TransportError, SoapFaultError) as exc:
                attempts += 1
                next_plan, fallback = self._recover(
                    current, decomposed, warnings, exc, attempts,
                    counters, tried_dead,
                )
                if fallback is not None:
                    fallback.failovers = counters["failovers"]
                    return fallback
                if next_plan is not current:
                    attempts = 0
                current = next_plan
        tuples = rowset_to_tuples(
            rowset,
            current.member_aliases_after(0),
            current.attr_columns_after(0),
        )
        result = self._finish(current, decomposed, tuples, stats)
        result.warnings = warnings
        result.degraded = bool(counters["degraded"])
        result.failovers = counters["failovers"]
        return result

    def _store_forward_chain(
        self, plan: ExecutionPlan, xid: str = ""
    ) -> Tuple[Any, List[Dict[str, Any]]]:
        """One ``PerformXMatch`` round trip (the reference oracle path)."""
        proxy = self._portal.proxy(plan.step(0).url)
        response = proxy.call(
            "PerformXMatch", plan=plan.to_wire(), position=0, xid=xid
        )
        if not isinstance(response, dict):
            raise ExecutionError(f"malformed chain response: {response!r}")
        rowset = receive_rowset(response, proxy)
        return rowset, list(response.get("stats") or [])

    def _stream_chain(
        self,
        plan: ExecutionPlan,
        network: Any,
        state: Optional[Dict[str, Any]] = None,
        qid: str = "",
    ) -> Tuple[Any, List[Dict[str, Any]]]:
        """Open a stream down the chain, then pull every batch concurrently.

        The open cascades once (the last node seeds and partitions); the
        batch pulls are dispatched inside one ``parallel()`` block so each
        batch's full chain traversal — transfer and per-hop ``sp_xmatch``
        compute alike — is one branch, and the clock advances by the
        slowest batch instead of the sum. The final batch's response
        piggybacks the per-node stats chain, so closing costs no extra
        round trip. On failure the portal best-effort aborts the stream
        (server TTLs are the backstop) and lets the caller's recovery
        logic retry the whole chain.

        ``state`` (shared across retries of one query) keeps every batch
        response already acknowledged: a retried or failed-over chain opens
        the stream at the high-water mark — the first unacknowledged batch
        — instead of re-transferring from batch 0. The high-water mark is
        keyed to the plan's content fingerprint, so it survives replica
        substitution (same content, new endpoint) but resets if the plan's
        content changes (a drop-out was pruned).
        """
        from repro.soap.encoding import WireRowSet

        state = state if state is not None else {}
        fingerprint = plan.fingerprint(0)
        if state.get("fingerprint") != fingerprint:
            state["fingerprint"] = fingerprint
            state["responses"] = None
        responses: Optional[List[Optional[Dict[str, Any]]]]
        responses = state.get("responses")
        high_water = 0
        if responses is not None:
            while (
                high_water < len(responses)
                and responses[high_water] is not None
            ):
                high_water += 1
        proxy = self._portal.proxy(plan.step(0).url)
        opened = proxy.call(
            "OpenStream",
            plan=plan.to_wire(),
            position=0,
            batch_size=getattr(self._portal, "stream_batch_size", 200),
            wire_format=getattr(self._portal, "stream_wire_format", "columnar"),
            start_seq=high_water,
            qid=qid,
        )
        if not isinstance(opened, dict):
            raise ExecutionError(f"malformed OpenStream response: {opened!r}")
        stream_id = str(opened["stream_id"])
        batch_count = int(opened["batch_count"])
        if responses is None or len(responses) != batch_count:
            # Nothing usable to resume from (first attempt, or a stale
            # partition that no longer matches): start over from batch 0.
            if high_water:
                try:
                    proxy.call("AbortStream", stream_id=stream_id)
                except (TransportError, SoapFaultError):
                    pass
                opened = proxy.call(
                    "OpenStream",
                    plan=plan.to_wire(),
                    position=0,
                    batch_size=getattr(self._portal, "stream_batch_size", 200),
                    wire_format=getattr(
                        self._portal, "stream_wire_format", "columnar"
                    ),
                    start_seq=0,
                    qid=qid,
                )
                stream_id = str(opened["stream_id"])
                batch_count = int(opened["batch_count"])
            responses = [None] * batch_count
            high_water = 0
            state["responses"] = responses
        #: Flow control: at most ``stream_pull_window`` batches in flight
        #: at once (0 = unbounded, every batch dispatched together). A
        #: bounded window acknowledges batches wave by wave, so a crash
        #: mid-stream loses only the wave in flight — the completed waves
        #: stay below the high-water mark and are never re-pulled.
        window = int(getattr(self._portal, "stream_pull_window", 0) or 0)
        pending = list(range(high_water, batch_count))
        waves = (
            [pending]
            if window <= 0
            else [
                pending[i:i + window]
                for i in range(0, len(pending), window)
            ]
        )
        try:
            for wave in waves:
                with network.phase(BATCH_TRANSFER_PHASE), network.parallel():
                    for seq in wave:
                        responses[seq] = proxy.call(
                            "PullBatch", stream_id=stream_id, seq=seq
                        )
        except DeadlineExceededError:
            # Budget expiry is a cancellation-subsystem event, not a
            # retry-path failure: the caller's ``CancelQuery`` sweep (or,
            # with eager cancellation off, the TTL reapers) owns the
            # cleanup of every hop's stream — a lone head abort here
            # would fragment the accounting between the two paths.
            raise
        except Exception:
            try:
                proxy.call("AbortStream", stream_id=stream_id)
            except Exception:
                pass
            raise
        parts: List[Any] = []
        stats: List[Dict[str, Any]] = []
        for seq, response in enumerate(responses):
            if not isinstance(response, dict) or not isinstance(
                response.get("rows"), WireRowSet
            ):
                raise ExecutionError(
                    f"malformed PullBatch response for batch {seq}: "
                    f"{response!r}"
                )
            parts.append(response["rows"])
            if response.get("stats"):
                stats = list(response["stats"])
        return WireRowSet.concat(parts), stats

    def _cancel_chain(self, plan: ExecutionPlan, qid: str) -> None:
        """Eagerly free every hop's state for a dead query (best effort).

        One ``CancelQuery`` to the chain head fans hop-to-hop down the
        current plan; replica endpoints *not* on the plan (which may hold
        checkpoints from attempts that failed over away from them) are
        cancelled directly. Every call is fire-and-forget — a lost cancel
        leaves that hop to its TTL reaper, never blocks the degraded
        answer — and runs under a masked budget: cleanup must not be
        refused because the deadline that triggered it has passed.
        """
        if not qid:
            return
        network = self._portal.require_network()
        wire = plan.to_wire()
        with network.phase("cancel"), use_budget(None):
            try:
                self._portal.proxy(plan.step(0).url).call(
                    "CancelQuery", query_id=qid, plan=wire, position=0
                )
            except Exception:
                pass
            seen = {step.url for step in plan.steps}
            cancelled_shard_archives: set = set()
            for step in plan.steps:
                record = self._portal.catalog.node(step.archive)
                for services in record.endpoint_candidates():
                    url = services["crossmatch"]
                    if url in seen:
                        continue
                    seen.add(url)
                    try:
                        self._portal.proxy(url).call(
                            "CancelQuery", query_id=qid
                        )
                    except Exception:
                        pass
                # Shard endpoints are NOT in endpoint_candidates() (each
                # serves one slice, not the whole archive), yet shards
                # hold stagings keyed by this qid. A live coordinator
                # fans its own cancel to them, but a *dead* coordinator
                # cannot — so the Portal cancels every shard candidate
                # directly too (idempotent; a double cancel frees
                # nothing twice).
                if step.archive in cancelled_shard_archives:
                    continue
                cancelled_shard_archives.add(step.archive)
                shard_set = record.shard_set
                if shard_set is None:
                    continue
                for member in shard_set.members:
                    for url in member.candidate_urls("crossmatch"):
                        if url in seen:
                            continue
                        seen.add(url)
                        try:
                            self._portal.proxy(url).call(
                                "CancelQuery", query_id=qid
                            )
                        except Exception:
                            pass

    def _probe_plan_endpoints(self, plan: ExecutionPlan) -> List[bool]:
        """Ping each step's CURRENT endpoint (not just the archive primary).

        A step already failed over probes its replica, so a second failure
        of the same archive is still diagnosed correctly. Probes run
        concurrently like the Portal's plan-time health checks.
        """
        from repro.errors import SoapFaultError as _Fault

        network = self._portal.require_network()
        alive: List[bool] = [False] * len(plan.steps)
        with network.phase("health-probe"), network.parallel():
            for index, step in enumerate(plan.steps):
                info_url = self._portal.information_url_for(
                    step.archive, step.url
                )
                proxy = self._portal.proxy(info_url)
                try:
                    alive[index] = bool(proxy.call("IsAlive"))
                except (TransportError, _Fault):
                    alive[index] = False
        return alive

    def _recover(
        self,
        plan: ExecutionPlan,
        decomposed: DecomposedQuery,
        warnings: List[str],
        exc: Exception,
        attempts: int,
        counters: Dict[str, Any],
        tried_dead: Dict[str, set],
    ) -> Tuple[ExecutionPlan, Optional[FederatedResult]]:
        """Decide how a failed chain continues: fail over, retry, or degrade.

        Order of preference per dead hop: substitute a live replica
        endpoint in place (same plan content, so checkpoints and stream
        positions stay valid — counted in ``failovers``, not degradation);
        else prune if the hop is a drop-out (degraded); else give up with
        a degraded empty result (mandatory archive wholly lost).
        """
        alive = self._probe_plan_endpoints(plan)
        dead_positions = [
            index for index, ok in enumerate(alive) if not ok
        ]
        if not dead_positions:
            if attempts >= self.MAX_CHAIN_ATTEMPTS:
                raise ExecutionError(
                    f"cross-match chain failed after {attempts} attempt(s): "
                    f"{exc}"
                ) from exc
            return plan, None  # transient: retry the same plan
        network = self._portal.require_network()
        new_plan = plan
        lost_mandatory: List[int] = []
        lost_dropout: List[int] = []
        for index in dead_positions:
            step = plan.step(index)
            tried = tried_dead.setdefault(step.archive, set())
            tried.add(step.url)
            replacement = self._portal.live_endpoints(
                step.archive, exclude=tried
            )
            if replacement is not None:
                new_url = replacement["crossmatch"]
                new_plan = new_plan.replace_url(index, new_url)
                warnings.append(
                    f"archive {step.archive!r} endpoint {step.url} failed "
                    f"mid-chain; failing over to replica {new_url}"
                )
                counters["failovers"] += 1
                network.metrics.failovers += 1
                if network.tracer is not None:
                    network.tracer.annotate(
                        "failover",
                        archive=step.archive,
                        from_url=step.url,
                        to_url=new_url,
                    )
            elif step.dropout:
                lost_dropout.append(index)
            else:
                lost_mandatory.append(index)
        if lost_mandatory:
            for index in lost_mandatory:
                step = plan.step(index)
                warnings.append(
                    f"mandatory archive {step.archive!r} (alias "
                    f"{step.alias!r}) is unreachable with no live replica; "
                    "cross-match aborted"
                )
            return plan, FederatedResult(
                columns=self._output_columns(decomposed.query.items),
                rows=[],
                plan=plan,
                warnings=list(warnings),
                degraded=True,
            )
        if lost_dropout:
            # Drop-out archives with no replica left: prune them and
            # restart the chain from the surviving nodes (the paper's !X
            # semantics are advisory filters, so the query can still
            # answer — degraded).
            for index in lost_dropout:
                step = plan.step(index)
                warnings.append(
                    f"drop-out archive {step.archive!r} (alias "
                    f"{step.alias!r}) became unreachable mid-chain with no "
                    "live replica; skipped"
                )
            counters["degraded"] = True
            pruned_out = {plan.step(index).alias for index in lost_dropout}
            new_plan = ExecutionPlan(
                steps=tuple(
                    step
                    for step in new_plan.steps
                    if step.alias not in pruned_out
                ),
                threshold=new_plan.threshold,
                area=new_plan.area,
                profile=new_plan.profile,
            )
        return new_plan, None

    def _finish(
        self,
        plan: ExecutionPlan,
        decomposed: DecomposedQuery,
        tuples: List[PartialTuple],
        stats: List[Dict[str, Any]],
    ) -> FederatedResult:
        """Cross-archive predicates + SELECT projection, at the Portal."""
        survivors = [
            partial
            for partial in tuples
            if self._passes_cross_conjuncts(decomposed, partial)
        ]
        columns = self._output_columns(decomposed.query.items)
        rows = [
            self._project(decomposed.query.items, partial)
            for partial in survivors
        ]
        if decomposed.query.distinct:
            seen = set()
            deduped_rows, deduped_survivors = [], []
            for row, partial in zip(rows, survivors):
                if row in seen:
                    continue
                seen.add(row)
                deduped_rows.append(row)
                deduped_survivors.append(partial)
            rows, survivors = deduped_rows, deduped_survivors
        order_by = decomposed.query.order_by
        if order_by:
            from repro.db.engine import _SortKey

            keys = [
                tuple(
                    _SortKey(evaluate(item.expr, self._context_for(partial)),
                             item.descending)
                    for item in order_by
                )
                for partial in survivors
            ]
            rows = [row for _, row in sorted(zip(keys, rows),
                                             key=lambda pair: pair[0])]
        limit = decomposed.query.limit
        if limit is not None:
            rows = rows[:limit]
        result = FederatedResult(
            columns=columns,
            rows=rows,
            node_stats=stats,
            plan=plan,
            matched_tuples=len(tuples),
        )
        cache = getattr(self._portal, "cache", None)
        if cache is not None and cache.config.containment:
            # Keep the pre-projection tuples: they are the raw material a
            # later contained-AREA query is served from.
            result.raw_tuples = list(tuples)
        return result

    def _passes_cross_conjuncts(
        self, decomposed: DecomposedQuery, partial: PartialTuple
    ) -> bool:
        if not decomposed.analysis.cross_conjuncts:
            return True
        ctx = self._context_for(partial)
        return all(
            is_true(evaluate(conjunct, ctx))
            for conjunct in decomposed.analysis.cross_conjuncts
        )

    @staticmethod
    def _context_for(partial: PartialTuple) -> RowContext:
        ctx = RowContext(ASTRO_CONSTANTS)
        for key, value in partial.attributes.items():
            alias, _, column = key.partition(".")
            ctx.bind(alias, column, value)
        return ctx

    @staticmethod
    def _output_columns(items: Tuple[SelectItem, ...]) -> List[str]:
        columns: List[str] = []
        for item in items:
            if item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(str(item.expr))
            else:
                columns.append(f"expr{len(columns) + 1}")
        return columns

    def _project(
        self, items: Tuple[SelectItem, ...], partial: PartialTuple
    ) -> Tuple[Any, ...]:
        ctx = self._context_for(partial)
        return tuple(evaluate(item.expr, ctx) for item in items)
