"""Black-box cost calibration of the component archives.

The paper's count-star approach "follows the basic approach of treating
component DBMSs as black boxes, running test queries on them, and finally
estimating transmission costs from the results", citing Du et al. [Du92]
and Zhu & Larson [Zhu96]. Count star estimates *rows*; but transmission
cost is *bytes*, and archives contribute very different row widths to the
partial results (one flux column vs five plus a type string). This module
extends the black-box idea one step: a small sampling query per archive
measures the serialized bytes-per-row and the round-trip time, giving the
planner a byte-based ordering (``OrderingStrategy.BYTES_DESC``) to compare
against the paper's count ordering (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import PlanningError
from repro.portal.decompose import DecomposedQuery, NodeSubquery
from repro.soap.encoding import WireRowSet
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.parser import parse_expression
from repro.sql.printer import to_sql
from repro.transport.chunking import envelope_bytes

if TYPE_CHECKING:
    from repro.portal.portal import Portal

PHASE = "calibration"


@dataclass(frozen=True)
class ArchiveCostModel:
    """Measured transfer characteristics of one archive for one query."""

    alias: str
    archive: str
    bytes_per_row: float
    round_trip_s: float
    sample_rows: int

    def estimated_bytes(self, row_count: int) -> float:
        """Predicted serialized size of ``row_count`` result rows."""
        return row_count * self.bytes_per_row


class CostCalibrator:
    """Runs per-archive sampling queries and fits the byte cost model."""

    def __init__(self, portal: "Portal", *, sample_limit: int = 32) -> None:
        self._portal = portal
        self.sample_limit = sample_limit

    def calibrate(
        self, decomposed: DecomposedQuery
    ) -> Dict[str, ArchiveCostModel]:
        """Measure bytes-per-row and RTT at every mandatory archive."""
        network = self._portal.require_network()
        models: Dict[str, ArchiveCostModel] = {}
        with network.phase(PHASE):
            for alias in decomposed.mandatory_aliases:
                subquery = decomposed.subqueries[alias]
                models[alias] = self._calibrate_archive(
                    alias, subquery, decomposed, network
                )
        return models

    def _calibrate_archive(
        self, alias: str, subquery: NodeSubquery, decomposed: DecomposedQuery,
        network,
    ) -> ArchiveCostModel:
        record = self._portal.catalog.node(subquery.archive)
        sample_sql = to_sql(self._sample_query(subquery, decomposed, record))
        proxy = self._portal.proxy(record.services["query"])
        started = network.clock.now
        rowset = proxy.call("ExecuteQuery", sql=sample_sql)
        round_trip = network.clock.now - started
        if not isinstance(rowset, WireRowSet):
            raise PlanningError(
                f"calibration query at {subquery.archive!r} returned no rowset"
            )
        overhead = envelope_bytes(WireRowSet(list(rowset.columns), []))
        n_rows = len(rowset.rows)
        if n_rows:
            per_row = (envelope_bytes(rowset) - overhead) / n_rows
        else:
            per_row = 0.0
        return ArchiveCostModel(
            alias=alias,
            archive=record.archive,
            bytes_per_row=max(1.0, per_row),
            round_trip_s=round_trip,
            sample_rows=n_rows,
        )

    def _sample_query(
        self, subquery: NodeSubquery, decomposed: DecomposedQuery, record
    ) -> Query:
        """The node query limited to a handful of rows.

        Samples exactly the columns the plan would ship (id + position +
        requested attributes), so the measured row width is the shipped
        row width.
        """
        info = record.info
        alias = subquery.alias
        items: List[SelectItem] = [
            SelectItem(ColumnRef(alias, info.object_id_column)),
            SelectItem(ColumnRef(alias, info.ra_column)),
            SelectItem(ColumnRef(alias, info.dec_column)),
        ]
        items.extend(
            SelectItem(ColumnRef(alias, column))
            for column, _, _ in subquery.attr_select
        )
        where: Optional[Expr] = decomposed.area
        if subquery.residual_sql:
            residual = parse_expression(subquery.residual_sql)
            where = residual if where is None else BinaryOp("AND", where, residual)
        return Query(
            items=tuple(items),
            tables=(TableRef(None, subquery.table, alias),),
            where=where,
            limit=self.sample_limit,
        )
