"""The Portal's epoch-aware semantic result cache.

A federation serving millions of users sees the same popular queries over
and over (zipf-shaped workloads); re-running the whole probe + chain
pipeline for each repeat wastes both wire bytes and node time. This
module memoizes three things, each guarded by the snapshot-epoch
machinery PR 6 introduced so a cached answer is valid *exactly* while the
epochs it was computed at are still the archives' current ones:

* **whole-query results** — a clean :class:`FederatedResult` keyed two
  ways: by the canonical query text + planner knobs (consultable before a
  single byte hits the wire — the zero-wire fast path) and by
  ``ExecutionPlan.fingerprint`` (consultable once a plan exists, catching
  textually different submissions that compile to the same chain). The
  fingerprint already folds in every pinned epoch and the portal's
  execution profile, so "fingerprint + epochs live" is the full validity
  condition.
* **count-star probes** — ``(archive, perf_sql) -> (count, epoch)``; a
  repeat of the planner's performance query is answered locally at the
  epoch the archive last reported, as long as that epoch is still
  current.
* **AREA-containment reuse** — a cached cross-match over a circle keeps
  its pre-projection partial tuples; a later query whose circle is
  contained in the cached one is answered by re-filtering those tuples
  with the *same* per-row predicate the nodes would run
  (``region.contains(radec_to_vector(ra, dec))`` per member), skipping
  the federation entirely.

Invalidation is push-based: the federation builder chains
``SemanticCache.note_epoch`` onto every primary's
``TransactionService.on_epoch_commit`` hook, so the instant an ingest
commit advances an archive's epoch, every entry pinned to the previous
epoch of that archive is dropped. Federations that mutate archive tables
without going through the ingest service must call :meth:`note_epoch`
(or :meth:`invalidate_all`) themselves.

Result rows are immutable tuples, so serving a hit shallow-copies the
row list and deep-copies only the small mutable node-stat dicts; a
caller mutating a served result cannot corrupt the cache.

Honest contract for the three hit kinds:

* exact / fingerprint hits are byte-identical to a fresh run — rows,
  order, counts, epochs, node stats, warnings.
* containment hits are row-identical **as a multiset** (and exactly
  identical under a total ``ORDER BY``): final row order without one is
  plan-order dependent, and the fresh order cannot be reconstructed
  without re-probing. ``counts`` is empty (the smaller area was never
  counted) and ``node_stats`` carries provenance instead of per-hop
  timings. Queries with ``LIMIT`` but no ``ORDER BY``, with drop-out
  archives (fewer rows in a smaller area can mean *more* survivors), or
  with pinned epochs never take this path.
"""

from __future__ import annotations

import copy
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import angular_separation
from repro.sql.area import region_for
from repro.sql.ast import AreaClause
from repro.units import arcsec_to_rad

if TYPE_CHECKING:
    from repro.portal.decompose import DecomposedQuery
    from repro.portal.executor import FederatedResult
    from repro.portal.plan import ExecutionPlan
    from repro.xmatch.tuples import PartialTuple


@dataclass(frozen=True)
class CacheConfig:
    """Knobs of the semantic cache (see docs/SCHEDULING.md)."""

    #: Whole-query result entries kept (LRU-evicted beyond this).
    max_entries: int = 128
    #: Count-star probe entries kept (LRU-evicted beyond this).
    max_probe_entries: int = 512
    #: Memoize whole-query results.
    results: bool = True
    #: Memoize count-star performance probes.
    count_probes: bool = True
    #: Serve contained-circle queries from cached partial tuples. Also
    #: controls whether the planner widens ``attr_select`` with each
    #: mandatory archive's position columns (needed to re-filter).
    containment: bool = True

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError("cache max_entries must be >= 1")
        if self.max_probe_entries < 1:
            raise ValueError("cache max_probe_entries must be >= 1")


@dataclass
class CacheStats:
    """Observable counters (reported by E21 and the serve driver)."""

    hits: int = 0  # exact (pre-wire) result hits
    fingerprint_hits: int = 0  # post-plan fingerprint hits
    containment_hits: int = 0
    misses: int = 0
    probe_hits: int = 0
    probe_misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


@dataclass
class _ResultEntry:
    """One cached whole-query result and what keeps it valid."""

    exact_key: str
    fingerprint: Optional[str]
    #: archive name -> the epoch this answer was computed at.
    archive_epochs: Dict[str, int]
    result: "FederatedResult"
    #: Pre-cross-conjunct partial tuples (containment raw material);
    #: only kept for containment-eligible entries.
    raw_tuples: Optional[List["PartialTuple"]] = None
    #: Area-independent key of the node-side computation (containment
    #: index) and the circle it was evaluated over.
    containment_key: Optional[str] = None
    area: Optional[AreaClause] = None
    plan: Optional["ExecutionPlan"] = None


def _digest(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:24]


class SemanticCache:
    """Epoch-validated memoization of probes, results, and regions."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        #: exact_key -> entry, in LRU order (oldest first).
        self._entries: "OrderedDict[str, _ResultEntry]" = OrderedDict()
        self._by_fingerprint: Dict[str, _ResultEntry] = {}
        #: containment_key -> exact keys of circle entries sharing it.
        self._containment: Dict[str, List[str]] = {}
        #: (archive, perf_sql) -> (count, epoch), in LRU order.
        self._probes: "OrderedDict[Tuple[str, str], Tuple[int, int]]" = (
            OrderedDict()
        )
        #: archive -> last epoch committed while this cache was watching.
        self._current_epochs: Dict[str, int] = {}

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def exact_key(
        canonical_sql: str,
        strategy: str,
        random_seed: int,
        pins: Tuple[Tuple[str, int], ...],
        profile: Tuple[Tuple[str, str], ...],
    ) -> str:
        """Pre-wire key: the canonical query text plus every planner knob
        that can change the answer's bytes."""
        return _digest((canonical_sql, strategy, random_seed, pins, profile))

    @staticmethod
    def containment_key(
        decomposed: "DecomposedQuery",
        profile: Tuple[Tuple[str, str], ...],
    ) -> Optional[str]:
        """Area-independent key of the node-side computation.

        Two queries share it when every node would compute the same thing
        modulo the AREA — same archives/tables/residuals/attribute
        columns and the same chi-squared threshold — so the larger
        query's partial tuples are a superset of the smaller's.
        Cross-archive conjuncts, SELECT/DISTINCT/ORDER BY/LIMIT are
        *excluded* on purpose: they are applied portal-side during the
        re-finish. Returns None for queries that can never participate
        (drop-outs present, or no circular AREA).
        """
        if decomposed.dropout_aliases:
            return None
        if not isinstance(decomposed.area, AreaClause):
            return None
        assert decomposed.xmatch is not None
        terms = tuple(
            sorted(
                (
                    sub.alias,
                    sub.archive,
                    sub.table,
                    sub.residual_sql,
                    sub.attr_select,
                )
                for sub in decomposed.subqueries.values()
            )
        )
        return _digest(
            (terms, round(decomposed.xmatch.threshold, 12), profile)
        )

    # -- epoch validity -------------------------------------------------------

    def note_epoch(self, archive: str, epoch: int) -> None:
        """An archive committed a new epoch: drop everything it pinned.

        Wired onto ``TransactionService.on_epoch_commit`` by the
        federation builder; also the hook tests/tools call by hand when
        they advance epochs without the ingest service.
        """
        previous = self._current_epochs.get(archive)
        self._current_epochs[archive] = epoch
        if previous == epoch:
            return
        stale = [
            key
            for key, entry in self._entries.items()
            if archive in entry.archive_epochs
            and entry.archive_epochs[archive] != epoch
        ]
        for key in stale:
            self._drop(key)
            self.stats.invalidations += 1
        stale_probes = [
            key
            for key, (_, probe_epoch) in self._probes.items()
            if key[0] == archive and probe_epoch != epoch
        ]
        for key in stale_probes:
            del self._probes[key]
            self.stats.invalidations += 1

    def invalidate_all(self) -> None:
        """Drop every entry (the blunt instrument for out-of-band writes)."""
        dropped = len(self._entries) + len(self._probes)
        self._entries.clear()
        self._by_fingerprint.clear()
        self._containment.clear()
        self._probes.clear()
        self.stats.invalidations += dropped

    def _epochs_live(self, archive_epochs: Dict[str, int]) -> bool:
        """True while every pinned archive is still at its pinned epoch.

        An archive this cache has never seen commit is assumed unchanged:
        epochs only move through the commit hook that feeds
        :meth:`note_epoch`.
        """
        return all(
            self._current_epochs.get(archive, epoch) == epoch
            for archive, epoch in archive_epochs.items()
        )

    # -- count-star probes ----------------------------------------------------

    def probe_lookup(
        self, archive: str, perf_sql: str, pin_epoch: Optional[int]
    ) -> Optional[Tuple[int, int]]:
        """A memoized ``(count, epoch)`` for one performance query.

        Pinned probes are served only when the pin equals the cached live
        epoch (a historical pin must go to the node — it may legitimately
        raise ``StaleEpochError`` there, and the cache must not mask it).
        """
        if not self.config.count_probes:
            return None
        key = (archive, perf_sql)
        cached = self._probes.get(key)
        if cached is None:
            self.stats.probe_misses += 1
            return None
        count, epoch = cached
        if not self._epochs_live({archive: epoch}):
            del self._probes[key]
            self.stats.probe_misses += 1
            return None
        if pin_epoch is not None and pin_epoch != epoch:
            self.stats.probe_misses += 1
            return None
        self._probes.move_to_end(key)
        self.stats.probe_hits += 1
        return count, epoch

    def probe_store(
        self, archive: str, perf_sql: str, count: int, epoch: int
    ) -> None:
        """Remember a live probe's answer (pinned probes are not stored:
        they describe a snapshot, not the archive's current state)."""
        if not self.config.count_probes:
            return
        self._probes[(archive, perf_sql)] = (count, epoch)
        self._probes.move_to_end((archive, perf_sql))
        while len(self._probes) > self.config.max_probe_entries:
            self._probes.popitem(last=False)
            self.stats.evictions += 1

    # -- whole-query results --------------------------------------------------

    def lookup_exact(self, exact_key: str) -> Optional["FederatedResult"]:
        """A byte-identical served copy for a repeat submission, or None."""
        if not self.config.results:
            return None
        entry = self._entries.get(exact_key)
        if entry is None or not self._epochs_live(entry.archive_epochs):
            if entry is not None:
                self._drop(exact_key)
                self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(exact_key)
        self.stats.hits += 1
        served = self._served_copy(entry.result)
        served.cache = "exact"
        return served

    def lookup_fingerprint(
        self, fingerprint: str
    ) -> Optional["FederatedResult"]:
        """Post-plan lookup: catches different SQL text compiling to the
        same chain. The fingerprint embeds the pinned epochs and profile;
        liveness is still re-checked so a commit between planning and
        lookup cannot serve a stale answer."""
        if not self.config.results:
            return None
        entry = self._by_fingerprint.get(fingerprint)
        if entry is None or not self._epochs_live(entry.archive_epochs):
            if entry is not None:
                self._drop(entry.exact_key)
                self.stats.invalidations += 1
            return None
        self._entries.move_to_end(entry.exact_key)
        self.stats.fingerprint_hits += 1
        served = self._served_copy(entry.result)
        served.cache = "fingerprint"
        return served

    def store_result(
        self,
        exact_key: str,
        result: "FederatedResult",
        *,
        archives_by_alias: Dict[str, str],
        containment_key: Optional[str] = None,
        area: Optional[AreaClause] = None,
    ) -> None:
        """Admit a freshly computed result.

        Only *clean* answers are cacheable: degraded results, results with
        warnings, and failed-over results reflect transient federation
        state, not the query's semantics. Served hits (``result.cache``
        set) are never re-admitted.
        """
        if not self.config.results:
            return
        if (
            result.cache is not None
            or result.degraded
            or result.failovers
            or result.warnings
        ):
            return
        archive_epochs = {
            archives_by_alias[alias]: epoch
            for alias, epoch in result.epochs.items()
            if alias in archives_by_alias
        }
        if not archive_epochs or not self._epochs_live(archive_epochs):
            return
        raw = result.raw_tuples if self.config.containment else None
        entry = _ResultEntry(
            exact_key=exact_key,
            fingerprint=(
                result.plan.fingerprint(0) if result.plan is not None else None
            ),
            archive_epochs=archive_epochs,
            result=self._stored_copy(result),
            raw_tuples=list(raw) if raw is not None else None,
            containment_key=(
                containment_key if raw is not None else None
            ),
            area=area if raw is not None else None,
            plan=result.plan,
        )
        if exact_key in self._entries:
            self._drop(exact_key)
        self._entries[exact_key] = entry
        if entry.fingerprint is not None:
            self._by_fingerprint.setdefault(entry.fingerprint, entry)
        if entry.containment_key is not None:
            self._containment.setdefault(entry.containment_key, []).append(
                exact_key
            )
        self.stats.stores += 1
        while len(self._entries) > self.config.max_entries:
            oldest, _ = self._entries.popitem(last=False)
            self._unindex(oldest=oldest)
            self.stats.evictions += 1

    # -- AREA containment -----------------------------------------------------

    def covering_entry(
        self, containment_key: Optional[str], area: Optional[AreaClause]
    ) -> Optional[_ResultEntry]:
        """A live cached circle that geometrically contains ``area``.

        Circle-in-circle test: ``sep(centers) + r_query <= r_entry`` (no
        tolerance — a false negative costs a miss, a false positive would
        cost correctness). The newest qualifying entry wins.
        """
        if not (self.config.containment and self.config.results):
            return None
        if containment_key is None or not isinstance(area, AreaClause):
            return None
        candidates = self._containment.get(containment_key, [])
        center = radec_to_vector(area.ra_deg, area.dec_deg)
        radius_rad = arcsec_to_rad(area.radius_arcsec)
        best: Optional[_ResultEntry] = None
        for exact_key in candidates:
            entry = self._entries.get(exact_key)
            if entry is None or entry.area is None:
                continue
            if not self._epochs_live(entry.archive_epochs):
                continue
            cached = region_for(entry.area)
            sep = angular_separation(cached.center, center)
            if sep + radius_rad <= cached.radius_rad:
                best = entry
        if best is not None:
            self._entries.move_to_end(best.exact_key)
            self.stats.containment_hits += 1
        return best

    # -- internals ------------------------------------------------------------

    def _drop(self, exact_key: str) -> None:
        self._entries.pop(exact_key, None)
        self._unindex(oldest=exact_key)

    def _unindex(self, *, oldest: str) -> None:
        for fingerprint in [
            fp
            for fp, entry in self._by_fingerprint.items()
            if entry.exact_key == oldest
        ]:
            del self._by_fingerprint[fingerprint]
        for ckey in list(self._containment):
            keys = [k for k in self._containment[ckey] if k != oldest]
            if keys:
                self._containment[ckey] = keys
            else:
                del self._containment[ckey]

    @staticmethod
    def _stored_copy(result: "FederatedResult") -> "FederatedResult":
        """Snapshot a result for the cache (drop per-run trace/raw refs)."""
        stored = SemanticCache._served_copy(result)
        stored.cache = None
        return stored

    @staticmethod
    def _served_copy(result: "FederatedResult") -> "FederatedResult":
        from repro.portal.executor import FederatedResult

        return FederatedResult(
            columns=list(result.columns),
            rows=list(result.rows),
            node_stats=copy.deepcopy(result.node_stats),
            plan=result.plan,
            counts=dict(result.counts),
            epochs=dict(result.epochs),
            matched_tuples=result.matched_tuples,
            warnings=list(result.warnings),
            degraded=result.degraded,
            failovers=result.failovers,
        )


