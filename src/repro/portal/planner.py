"""Plan construction: performance queries + the count-star ordering.

Section 5.3: "These performance queries are passed as asynchronous SOAP
messages to the respective Query services of each SkyNode... The list is
in decreasing order of the count star values returned by the performance
queries, with the drop out archives, if any, at the beginning of the
list." Alternative orderings exist only as benchmark baselines to measure
what the paper's choice buys.
"""

from __future__ import annotations

import numbers
import random
from enum import Enum
from typing import TYPE_CHECKING, Collection, Dict, List, Optional, Tuple

from repro.errors import (
    PlanningError,
    SoapFaultError,
    StaleEpochError,
    TransportError,
)
from repro.portal.calibration import ArchiveCostModel
from repro.portal.decompose import DecomposedQuery, NodeSubquery
from repro.portal.plan import ExecutionPlan, PlanStep
from repro.shard import prune_members
from repro.soap.encoding import WireRowSet

if TYPE_CHECKING:
    from repro.portal.catalog import NodeRecord
    from repro.portal.portal import Portal
    from repro.shard.topology import ShardMember


class OrderingStrategy(Enum):
    """How the planner orders the mandatory archives in the plan list."""

    COUNT_DESC = "count_desc"  # the paper's choice
    COUNT_ASC = "count_asc"  # adversarial baseline
    RANDOM = "random"  # naive baseline
    AS_WRITTEN = "as_written"  # query order baseline
    BYTES_DESC = "bytes_desc"  # calibrated extension: count x row width


class Planner:
    """Runs performance queries and builds the ordered execution plan."""

    def __init__(self, portal: "Portal") -> None:
        self._portal = portal

    def performance_counts(
        self,
        decomposed: DecomposedQuery,
        *,
        failures: Optional[Dict[str, str]] = None,
        epochs: Optional[Dict[str, int]] = None,
        pin_epochs: Optional[Dict[str, int]] = None,
    ) -> Dict[str, int]:
        """Run the count-star queries at every mandatory archive.

        "These performance queries are passed as asynchronous SOAP
        messages": the probes are dispatched concurrently, so the elapsed
        simulated time is the slowest archive's round trip, not the sum.

        Each probe runs pinned (``ExecuteQueryPinned``): the archive
        atomically answers the count *and* the committed epoch it counted
        at, recorded into ``epochs`` (keyed by alias) when given — so a
        plan is sized and pinned against the very same snapshot.
        ``pin_epochs`` forces specific epochs per alias instead of
        "whatever is committed now" (time-travel reads; the repeatable-
        reads oracle).

        When ``failures`` is a dict, an archive whose probe fails (after
        whatever retries its proxy is configured with) is recorded there
        instead of aborting the whole query — the Portal's graceful-
        degradation path. With the default ``None``, failures raise.
        """
        network = self._portal.require_network()
        cache = getattr(self._portal, "cache", None)
        tracer = network.tracer
        counts: Dict[str, int] = {}
        with network.phase("performance-query"), network.parallel():
            for alias in decomposed.mandatory_aliases:
                subquery = decomposed.subqueries[alias]
                record = self._portal.catalog.node(subquery.archive)
                proxy = self._portal.proxy(record.services["query"])
                assert subquery.perf_sql is not None
                pin = (pin_epochs or {}).get(alias, -1)
                if cache is not None:
                    memo = cache.probe_lookup(
                        record.archive,
                        subquery.perf_sql,
                        None if pin == -1 else pin,
                    )
                    if memo is not None:
                        # Served locally at the epoch the archive last
                        # reported — zero wire bytes, zero sim time.
                        counts[alias], memo_epoch = memo
                        if epochs is not None:
                            epochs[alias] = memo_epoch
                        if tracer is not None:
                            tracer.annotate(
                                "cache", outcome="hit", kind="probe",
                                alias=alias, epoch=memo_epoch,
                            )
                        continue
                try:
                    if record.shard_set is not None:
                        # Scatter-gather count: each shard counts its own
                        # slice in parallel (the whole fan-out is one
                        # branch of the per-alias probe dispatch), and the
                        # partition makes the sum the archive's count.
                        with network.branch():
                            count, epoch = self._sharded_count(
                                record, subquery, pin, decomposed.area
                            )
                    else:
                        response = proxy.call(
                            "ExecuteQueryPinned",
                            sql=subquery.perf_sql,
                            epoch=pin,
                        )
                        count, epoch = self._pinned_count(response, subquery)
                except (TransportError, SoapFaultError) as exc:
                    if (
                        isinstance(exc, SoapFaultError)
                        and exc.detail == "StaleEpochError"
                        and alias in (pin_epochs or {})
                    ):
                        # An explicitly pinned epoch the archive no longer
                        # retains is a caller error, not a node outage —
                        # degrading would silently break repeatable reads.
                        raise StaleEpochError(exc.faultstring) from exc
                    if failures is None:
                        raise
                    failures[alias] = str(exc)
                    continue
                counts[alias] = count
                if epochs is not None:
                    epochs[alias] = epoch
                if cache is not None and pin == -1:
                    # Only live probes are memoized: a pinned probe
                    # describes a snapshot, not the archive's present.
                    cache.probe_store(
                        record.archive, subquery.perf_sql, count, epoch
                    )
        return counts

    def count_for(
        self,
        subquery: NodeSubquery,
        query_url: str,
        *,
        pin_epoch: Optional[int] = None,
    ) -> Tuple[int, int]:
        """One count-star probe against a specific Query endpoint.

        The failover path: when a primary's performance query failed but a
        replica answered the health probe, the Portal re-asks the replica
        instead of degrading the whole query. Returns ``(count, epoch)``
        — the count and the snapshot it was taken at.
        """
        network = self._portal.require_network()
        assert subquery.perf_sql is not None
        proxy = self._portal.proxy(query_url)
        with network.phase("performance-query"):
            response = proxy.call(
                "ExecuteQueryPinned",
                sql=subquery.perf_sql,
                epoch=-1 if pin_epoch is None else pin_epoch,
            )
        count, epoch = self._pinned_count(response, subquery)
        cache = getattr(self._portal, "cache", None)
        if cache is not None and pin_epoch is None:
            cache.probe_store(subquery.archive, subquery.perf_sql, count, epoch)
        return count, epoch

    def _sharded_count(
        self,
        record: "NodeRecord",
        subquery: NodeSubquery,
        pin: int,
        area: object,
    ) -> Tuple[int, int]:
        """Scatter one archive's count-star probe over its spatial shards.

        Members whose ownership cannot intersect the query AREA are
        pruned before the fan-out; each surviving shard is probed through
        its own endpoint-candidate list, failing over on transport faults
        only (a SOAP fault is an *answer* and must surface). Because the
        ownership ranges partition the table, the sum of per-shard counts
        is exactly the archive's count. Every shard must answer at one
        committed epoch — a split answer cannot pin a consistent snapshot
        and aborts planning rather than mis-pinning the chain.
        """
        assert record.shard_set is not None
        assert subquery.perf_sql is not None
        network = self._portal.require_network()
        members = prune_members(record.shard_set.members, area)
        if not members:
            # No shard owns any part of the AREA. Ask the primary (the
            # full local copy): its own spatial index answers the zero
            # cheaply, and the response carries the committed epoch the
            # plan still needs to pin.
            response = self._portal.proxy(record.services["query"]).call(
                "ExecuteQueryPinned", sql=subquery.perf_sql, epoch=pin
            )
            return self._pinned_count(response, subquery)
        outcomes: Dict[str, Optional[Tuple[int, int]]] = {}
        with network.parallel():
            for member in members:
                with network.branch():
                    outcomes[member.name] = self._shard_count_probe(
                        member, subquery, pin
                    )
        dead = sorted(
            name for name, got in outcomes.items() if got is None
        )
        if dead:
            # Surfaces as a TransportError so the Portal's archive-level
            # failover (replica full copies) gets its chance before the
            # query degrades.
            raise TransportError(
                f"shard {dead[0]!r} of archive {record.archive!r} "
                "answered no count probe on any endpoint candidate"
            )
        answers = [got for got in outcomes.values() if got is not None]
        epochs = {epoch for _, epoch in answers}
        if len(epochs) != 1:
            raise PlanningError(
                f"shards of archive {record.archive!r} report divergent "
                f"epochs {sorted(epochs)}; cannot pin a consistent "
                "snapshot"
            )
        return sum(count for count, _ in answers), epochs.pop()

    def _shard_count_probe(
        self, member: "ShardMember", subquery: NodeSubquery, pin: int
    ) -> Optional[Tuple[int, int]]:
        """Probe one shard, walking its candidates; None if all are dead."""
        assert subquery.perf_sql is not None
        for url in member.candidate_urls("query"):
            proxy = self._portal.proxy(url)
            try:
                response = proxy.call(
                    "ExecuteQueryPinned", sql=subquery.perf_sql, epoch=pin
                )
            except TransportError:
                continue
            return self._pinned_count(response, subquery)
        return None

    def _pinned_count(
        self, response: object, subquery: NodeSubquery
    ) -> Tuple[int, int]:
        if not isinstance(response, dict) or "epoch" not in response:
            raise PlanningError(
                f"performance query at {subquery.archive!r} returned a "
                "malformed pinned response"
            )
        count = self._scalar_count(response.get("rows"), subquery)
        return count, int(response["epoch"])

    @staticmethod
    def _scalar_count(result: object, subquery: NodeSubquery) -> int:
        if not isinstance(result, WireRowSet) or len(result.rows) != 1:
            raise PlanningError(
                f"performance query at {subquery.archive!r} returned no "
                "scalar count"
            )
        value = result.rows[0][0]
        # bool is an int subclass but never a valid count; integral numpy
        # scalars (a vectorized COUNT(*)'s natural output) are fine.
        if isinstance(value, bool) or not isinstance(value, numbers.Integral):
            raise PlanningError(
                f"performance query at {subquery.archive!r} returned "
                f"{value!r}, expected an integer"
            )
        return int(value)

    def build_plan(
        self,
        decomposed: DecomposedQuery,
        counts: Dict[str, int],
        *,
        strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC,
        random_seed: int = 0,
        cost_models: Optional[Dict[str, "ArchiveCostModel"]] = None,
        skip_aliases: Collection[str] = (),
        services_for: Optional[Dict[str, Dict[str, str]]] = None,
        epochs: Optional[Dict[str, int]] = None,
    ) -> ExecutionPlan:
        """Assemble the plan list: drop-outs first, then ordered mandatory.

        ``skip_aliases`` removes unreachable *drop-out* archives from the
        plan (graceful degradation); skipping a mandatory archive would
        change the join semantics and is refused. ``services_for``
        overrides the endpoint set per archive (plan-time failover: a dead
        primary is substituted by its live replica before the chain ever
        starts). Every step also carries the archive's remaining crossmatch
        candidates as ``replica_urls`` for mid-chain failover, and pins
        the snapshot epoch its probe answered at (``epochs``, keyed by
        alias) so the whole chain reads one consistent version.
        """
        assert decomposed.xmatch is not None
        mandatory = list(decomposed.mandatory_aliases)
        skipped_mandatory = sorted(set(skip_aliases) & set(mandatory))
        if skipped_mandatory:
            raise PlanningError(
                f"cannot skip mandatory archive alias(es) {skipped_mandatory}"
            )
        missing = [alias for alias in mandatory if alias not in counts]
        if missing:
            raise PlanningError(
                f"missing performance counts for alias(es) {missing}"
            )
        mandatory = self._order(
            mandatory, counts, strategy, random_seed, cost_models
        )
        dropouts = [
            alias
            for alias in decomposed.dropout_aliases
            if alias not in skip_aliases
        ]
        ordered_aliases = dropouts + mandatory
        steps = [
            self._step_for(
                decomposed.subqueries[alias],
                counts.get(alias),
                services_for,
                epoch=(epochs or {}).get(alias),
            )
            for alias in ordered_aliases
        ]
        return ExecutionPlan(
            steps=tuple(steps),
            threshold=decomposed.xmatch.threshold,
            area=decomposed.area,
            profile=self._portal.execution_profile(),
        )

    @staticmethod
    def _order(
        aliases: List[str],
        counts: Dict[str, int],
        strategy: OrderingStrategy,
        random_seed: int,
        cost_models: Optional[Dict[str, "ArchiveCostModel"]] = None,
    ) -> List[str]:
        if strategy is OrderingStrategy.BYTES_DESC:
            if cost_models is None or any(a not in cost_models for a in aliases):
                raise PlanningError(
                    "bytes_desc ordering needs calibrated cost models for "
                    "every mandatory archive"
                )
            return sorted(
                aliases,
                key=lambda a: -cost_models[a].estimated_bytes(counts[a]),
            )
        if strategy is OrderingStrategy.COUNT_DESC:
            # Stable sort keeps query order among equal counts.
            return sorted(aliases, key=lambda a: -counts[a])
        if strategy is OrderingStrategy.COUNT_ASC:
            return sorted(aliases, key=lambda a: counts[a])
        if strategy is OrderingStrategy.RANDOM:
            rng = random.Random(random_seed)
            shuffled = list(aliases)
            rng.shuffle(shuffled)
            return shuffled
        return list(aliases)

    def _step_for(
        self,
        subquery: NodeSubquery,
        count_star: Optional[int],
        services_for: Optional[Dict[str, Dict[str, str]]] = None,
        *,
        epoch: Optional[int] = None,
    ) -> PlanStep:
        record = self._portal.catalog.node(subquery.archive)
        info = record.info
        chosen = (services_for or {}).get(record.archive, record.services)
        url = chosen["crossmatch"]
        replica_urls = tuple(
            candidate["crossmatch"]
            for candidate in record.endpoint_candidates()
            if candidate["crossmatch"] != url
        )
        attr_select = subquery.attr_select
        cache = getattr(self._portal, "cache", None)
        if (
            cache is not None
            and cache.config.containment
            and not subquery.dropout
        ):
            # Widen the carried attributes with this member's position
            # columns so the cached partial tuples can be re-filtered for
            # a contained AREA. Changes wire bytes (two extra floats per
            # tuple), never rows or node stats.
            present = {column for column, _, _ in attr_select}
            attr_select = attr_select + tuple(
                (
                    column,
                    f"{subquery.alias}.{column}",
                    record.column_type(subquery.table, column),
                )
                for column in (info.ra_column, info.dec_column)
                if column not in present
            )
        return PlanStep(
            alias=subquery.alias,
            archive=record.archive,
            url=url,
            replica_urls=replica_urls,
            sigma_arcsec=info.sigma_arcsec,
            dropout=subquery.dropout,
            count_star=count_star,
            table=subquery.table,
            id_column=info.object_id_column,
            ra_column=info.ra_column,
            dec_column=info.dec_column,
            residual_sql=subquery.residual_sql,
            attr_select=attr_select,
            sql=subquery.node_sql,
            epoch=epoch,
        )
