"""The Portal's Registration service.

The registration handshake of Figure 1 / Section 5.1: a SkyNode calls
``Register`` with its four service URLs; the Portal calls back the node's
Meta-data service (cataloging the schema) and then its Information service
(cataloging sigma, the primary table, and the position columns). Only then
is the node part of the federation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import RegistrationError
from repro.portal.catalog import NodeRecord
from repro.services.framework import WebService
from repro.skynode.node import SERVICE_PATHS

if TYPE_CHECKING:
    from repro.portal.portal import Portal

REQUIRED_SERVICES = tuple(SERVICE_PATHS)


class RegistrationService(WebService):
    """``Register`` / ``Unregister`` operations."""

    def __init__(self, portal: "Portal") -> None:
        super().__init__("Registration")
        self._portal = portal
        self.register(
            "Register",
            self._register,
            params=(
                ("archive", "string"),
                ("services", "struct"),
                ("replicas", "array"),
                ("shards", "array"),
            ),
            returns="struct",
            doc="Join the federation; the Portal calls back Metadata and "
                "Information before accepting. ``replicas`` optionally "
                "lists extra endpoint sets (mirror SkyNodes with identical "
                "content) used for failover. ``shards`` optionally "
                "advertises the archive's spatial shard layout (per-shard "
                "ownership + endpoint candidates).",
        )
        self.register(
            "Unregister",
            self._unregister,
            params=(("archive", "string"),),
            returns="boolean",
            doc="Leave the federation.",
        )

    def _register(
        self,
        archive: str,
        services: Dict[str, Any],
        replicas: Optional[List[Dict[str, Any]]] = None,
        shards: Optional[List[Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        if not archive:
            raise RegistrationError("registration needs an archive name")
        missing = [name for name in REQUIRED_SERVICES if not services.get(name)]
        if missing:
            raise RegistrationError(
                f"registration of {archive!r} missing service URL(s): {missing}"
            )
        shards_wire = self._validate_shards(archive, shards)
        replica_services: List[Dict[str, str]] = []
        for endpoint in replicas or []:
            gaps = [
                name for name in REQUIRED_SERVICES if not endpoint.get(name)
            ]
            if gaps:
                raise RegistrationError(
                    f"replica endpoint for {archive!r} missing service "
                    f"URL(s): {gaps}"
                )
            replica_services.append(
                {name: str(endpoint[name]) for name in REQUIRED_SERVICES}
            )
        network = self._portal.require_network()
        with network.phase("registration"):
            schema_wire = self._portal.proxy(str(services["metadata"])).call(
                "GetSchema"
            )
            info_wire = self._portal.proxy(str(services["information"])).call(
                "GetInfo"
            )
            # Each replica must answer for the same archive before the
            # Portal will ever route a failed-over query to it.
            for endpoint in replica_services:
                replica_info = self._portal.proxy(
                    endpoint["information"]
                ).call("GetInfo")
                if str(replica_info.get("archive")) != archive:
                    raise RegistrationError(
                        f"replica at {endpoint['information']} reports "
                        f"archive {replica_info.get('archive')!r}, "
                        f"not {archive!r}"
                    )
        if str(info_wire.get("archive")) != archive:
            raise RegistrationError(
                f"Information service reports archive "
                f"{info_wire.get('archive')!r}, not {archive!r}"
            )
        record = NodeRecord.from_wire(
            archive=archive,
            services={name: str(services[name]) for name in REQUIRED_SERVICES},
            info_wire=info_wire,
            schema_wire=schema_wire,
            registered_at=network.clock.now,
            replica_services=replica_services,
            shards_wire=shards_wire,
        )
        self._portal.catalog.register(record)
        return {
            "accepted": True,
            "archive": archive,
            "federation_size": len(self._portal.catalog),
        }

    @staticmethod
    def _validate_shards(
        archive: str, shards: Optional[List[Dict[str, Any]]]
    ) -> Optional[List[Dict[str, Any]]]:
        """Check an advertised shard layout before it enters the catalog.

        Each member needs a name, a decodable ownership struct, and at
        least one endpoint set exposing a crossmatch URL (the service the
        scatter-gather fan-out targets); the ownership kinds must be
        uniform. Raises :class:`RegistrationError` on any gap — a layout
        the Planner cannot route is worse than none.
        """
        from repro.errors import SkyQueryError
        from repro.shard.topology import ShardSet

        if not shards:
            return None
        try:
            shard_set = ShardSet.from_wire(shards)
            shard_set.shard_key  # raises on mixed ownership kinds
        except (KeyError, ValueError, TypeError, SkyQueryError) as exc:
            raise RegistrationError(
                f"malformed shard layout for {archive!r}: {exc}"
            ) from exc
        names = [member.name for member in shard_set.members]
        if len(set(names)) != len(names):
            raise RegistrationError(
                f"shard layout for {archive!r} repeats member names"
            )
        for member in shard_set.members:
            if not member.candidate_urls("crossmatch"):
                raise RegistrationError(
                    f"shard {member.name!r} of {archive!r} advertises no "
                    "crossmatch endpoint candidate"
                )
        return [dict(item) for item in shards]

    def _unregister(self, archive: str) -> bool:
        return self._portal.catalog.unregister(archive)
