"""Portal assembly: catalog + Registration + SkyQuery services on one host."""

from __future__ import annotations

import os
from contextlib import nullcontext
from typing import Collection, Dict, List, Optional, Sequence, Tuple

from repro.budget import QueryBudget, use_budget
from repro.errors import (
    DeadlineExceededError,
    SoapFaultError,
    StaleEpochError,
    TransportError,
    ValidationError,
)
from repro.portal.cache import SemanticCache, _ResultEntry
from repro.portal.catalog import FederationCatalog
from repro.portal.decompose import DecomposedQuery, decompose
from repro.portal.executor import ChainExecutor, FederatedResult
from repro.portal.planner import OrderingStrategy, Planner
from repro.portal.registration import RegistrationService
from repro.portal.skyquery_service import SkyQueryService
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost
from repro.services.retry import BreakerRegistry, RetryPolicy
from repro.soap.xmlparser import XMLParser
from repro.sql.ast import Query
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.sql.validate import validate_query
from repro.transport.network import SimulatedNetwork

PORTAL_PATHS = {"registration": "/registration", "skyquery": "/skyquery"}


class Portal:
    """The mediator of the federation.

    ``retry_policy`` arms every Portal-side proxy with retries/timeouts and
    per-endpoint circuit breakers; ``health_probes`` (on by default) makes
    the Portal ping each involved archive's Information service before
    planning so unreachable drop-out archives are skipped — and a lost
    mandatory archive yields a degraded result instead of an exception.
    """

    def __init__(
        self,
        hostname: str = "portal.skyquery.net",
        *,
        parser_memory_limit: Optional[int] = None,
        parser_overhead_factor: float = 4.0,
        retry_policy: Optional[RetryPolicy] = None,
        health_probes: bool = True,
        chain_mode: str = "store-forward",
        stream_batch_size: int = 200,
        stream_wire_format: str = "columnar",
        xmatch_kernel: str = "vectorized",
        match_engine: Optional[str] = None,
    ) -> None:
        self.hostname = hostname
        #: How the executor drives the chain: ``store-forward`` (single
        #: PerformXMatch round trip, the reference oracle) or ``pipelined``
        #: (OpenStream/PullBatch batches pulled concurrently).
        self.chain_mode = chain_mode
        #: Tuples per batch when the chain is pipelined.
        self.stream_batch_size = stream_batch_size
        #: Encoding for streamed partial tuples: ``columnar`` (compact
        #: column-major colset) or ``rows`` (the classic rowset).
        self.stream_wire_format = stream_wire_format
        #: Whether a retried/failed-over chain resumes from hop checkpoints
        #: and stream high-water marks. Off, every recovery is a full
        #: restart — the E18 comparison arm, not a recommended setting.
        self.checkpoint_resume = True
        #: Pipelined-mode flow control: how many batches may be in flight
        #: at once (0 = unbounded, the full-overlap default). A bounded
        #: window acknowledges batches progressively, which is what lets
        #: a mid-stream failover resume at the high-water mark instead of
        #: losing every in-flight batch together.
        self.stream_pull_window = 0
        self.catalog = FederationCatalog()
        self.parser = XMLParser(
            memory_limit_bytes=parser_memory_limit,
            overhead_factor=parser_overhead_factor,
        )
        self.registration = RegistrationService(self)
        self.skyquery = SkyQueryService(self)
        self.host = ServiceHost(hostname)
        self.host.mount(PORTAL_PATHS["registration"], self.registration)
        self.host.mount(PORTAL_PATHS["skyquery"], self.skyquery)
        self.planner = Planner(self)
        self.executor = ChainExecutor(self)
        self.network: Optional[SimulatedNetwork] = None
        self.queries_served = 0
        self.retry_policy = retry_policy
        self.health_probes = health_probes
        #: The node-side execution knobs this Portal assumes for its
        #: archives (what build_federation configured every SkyNode
        #: with). They never change node queries or result rows, but the
        #: pipelined stats and wire encodings they select DO change
        #: observable bytes — so they fold into every plan's
        #: ``profile`` and thereby its fingerprint.
        self.xmatch_kernel = xmatch_kernel
        self.match_engine = (
            match_engine
            if match_engine is not None
            else os.environ.get("SKYQUERY_MATCH_ENGINE", "htm")
        )
        #: Whether a deadline-dead chain is cancelled eagerly with a
        #: ``CancelQuery`` fan-down (the default) or left to the nodes'
        #: TTL reapers — the E22 comparison arm, not a recommended
        #: setting: leftover streams, checkpoints, and transfers then sit
        #: in server memory for the whole TTL.
        self.eager_cancel = True
        #: The semantic result cache (None = caching off, the seed's
        #: behaviour; installed via ``FederationConfig(cache=...)``).
        self.cache: Optional[SemanticCache] = None
        #: The admission-controlled run queue (None until installed via
        #: ``FederationConfig(scheduler=...)``).
        self.scheduler = None
        self.breakers = (
            BreakerRegistry(metrics=self._current_metrics)
            if retry_policy is not None
            else None
        )

    def _current_metrics(self):
        return self.network.metrics if self.network is not None else None

    def execution_profile(self) -> Tuple[Tuple[str, str], ...]:
        """Canonical ``(knob, value)`` pairs of every execution setting
        that changes observable result bytes without changing node
        queries. Folded into plan fingerprints (and hence cache keys) so
        two federations differing in any one knob never share an entry.

        Each sharded archive's ownership layout is folded in too (via
        :meth:`~repro.shard.topology.ShardSet.layout_signature`): a
        re-sharded federation partitions the same rows differently, and
        while the merged answer is provably identical, the per-shard
        stats and wire bytes are not — a cached entry must not cross a
        re-shard. The signature is content-based (no endpoint URLs), so
        shard-replica failover stays fingerprint-neutral.
        """
        knobs = {
            "chain_mode": str(self.chain_mode),
            "stream_batch_size": str(self.stream_batch_size),
            "stream_wire_format": str(self.stream_wire_format),
            "xmatch_kernel": str(self.xmatch_kernel),
            "match_engine": str(self.match_engine),
        }
        for archive in self.catalog.archives():
            record = self.catalog.node(archive)
            if record.shard_set is not None:
                knobs[f"shard_layout:{archive}"] = (
                    record.shard_set.layout_signature()
                )
        return tuple(sorted(knobs.items()))

    def attach(self, network: SimulatedNetwork) -> None:
        """Put the Portal on the (simulated) Internet."""
        network.add_host(self.hostname, self.host.handle)
        self.network = network

    def require_network(self) -> SimulatedNetwork:
        """The attached network, raising if the Portal is offline."""
        if self.network is None:
            raise TransportError("the Portal is not attached to a network")
        return self.network

    def service_url(self, service: str) -> str:
        """Endpoint URL of 'registration' or 'skyquery'."""
        return self.host.url_for(PORTAL_PATHS[service])

    def proxy(self, url: str) -> ServiceProxy:
        """A caller proxy originating at the Portal."""
        return ServiceProxy(
            self.require_network(),
            self.hostname,
            url,
            parser=self.parser,
            retry_policy=self.retry_policy,
            breaker=(
                self.breakers.breaker_for(url)
                if self.breakers is not None
                else None
            ),
        )

    # -- health probing -----------------------------------------------------------

    def probe_health(self, archives: Sequence[str]) -> Dict[str, bool]:
        """Ping each archive's Information service (``IsAlive``).

        Probes are dispatched concurrently like the performance queries;
        an archive is dead when the probe fails after whatever retries the
        Portal's policy allows. With ``health_probes`` disabled everything
        reports alive (the seed's behaviour).
        """
        unique = sorted(dict.fromkeys(archives))
        if not self.health_probes:
            return {archive: True for archive in unique}
        network = self.require_network()
        health: Dict[str, bool] = {}
        with network.phase("health-probe"), network.parallel():
            for archive in unique:
                record = self.catalog.node(archive)
                proxy = self.proxy(record.services["information"])
                try:
                    health[archive] = bool(proxy.call("IsAlive"))
                except (TransportError, SoapFaultError):
                    health[archive] = False
        return health

    def _probe_endpoint(self, services: Dict[str, str]) -> bool:
        """One ``IsAlive`` ping against an endpoint set's Information URL."""
        proxy = self.proxy(services["information"])
        try:
            return bool(proxy.call("IsAlive"))
        except (TransportError, SoapFaultError):
            return False

    def probe_endpoints(
        self, archives: Sequence[str]
    ) -> Dict[str, Optional[Dict[str, str]]]:
        """Replica-aware health probe: the first live endpoint set per archive.

        Tries each archive's primary first, then its replicas in
        registration order; an archive maps to ``None`` only when every
        endpoint is dead. Archives probe concurrently; within one archive
        the primary-then-replica sequence is a single branch (you only ask
        a replica after the primary failed).
        """
        unique = sorted(dict.fromkeys(archives))
        if not self.health_probes:
            return {
                archive: self.catalog.node(archive).services
                for archive in unique
            }
        network = self.require_network()
        chosen: Dict[str, Optional[Dict[str, str]]] = {}
        with network.phase("health-probe"), network.parallel():
            for archive in unique:
                record = self.catalog.node(archive)
                with network.branch():
                    chosen[archive] = None
                    for services in record.endpoint_candidates():
                        if self._probe_endpoint(services):
                            chosen[archive] = services
                            break
        return chosen

    def live_endpoints(
        self, archive: str, *, exclude: Collection[str] = ()
    ) -> Optional[Dict[str, str]]:
        """First live endpoint set for one archive, primary first.

        ``exclude`` lists crossmatch URLs already known dead (the executor's
        per-query blacklist), so recovery never fails back onto an endpoint
        it just watched die. Probes run sequentially: a replica is only
        asked once everything before it was excluded or found dead.
        """
        record = self.catalog.node(archive)
        network = self.require_network()
        with network.phase("health-probe"):
            for services in record.endpoint_candidates():
                if services["crossmatch"] in exclude:
                    continue
                if self._probe_endpoint(services):
                    return services
        return None

    def information_url_for(self, archive: str, crossmatch_url: str) -> str:
        """Information URL of the endpoint set owning a crossmatch URL.

        Lets the executor probe the health of the *specific* endpoint a
        plan step currently targets (which, after a failover, is a replica,
        not the primary). Unknown URLs fall back to the primary set.
        """
        record = self.catalog.node(archive)
        for services in record.endpoint_candidates():
            if services["crossmatch"] == crossmatch_url:
                return services["information"]
        return record.services["information"]

    # -- the full query path ------------------------------------------------------

    def submit(
        self,
        sql: str | Query,
        *,
        strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC,
        random_seed: int = 0,
        pin_epochs: Optional[Dict[str, int]] = None,
        deadline_s: Optional[float] = None,
    ) -> FederatedResult:
        """Figure 3 end to end: decompose, probe, plan, chain, project.

        Resilience: before planning, the Portal health-probes every archive
        the query touches. Dead *drop-out* archives are skipped at plan
        time (with a warning); a dead *mandatory* archive — or one whose
        performance query fails after retries — yields a degraded empty
        result whose warnings name the node, instead of an exception.

        Deadlines: ``deadline_s`` (an *absolute* time on the simulated
        clock) arms an end-to-end :class:`~repro.budget.QueryBudget` that
        rides a ``<sq:QueryBudget>`` SOAP Header on every hop of the
        submission — probes, performance queries, the chain, batch pulls.
        Each hop clamps its retries to the remaining budget and refuses
        budget-expired work with a typed fault; when the budget runs out
        anywhere, the Portal eagerly cancels the chain's server state and
        returns a degraded empty result whose warning names the hop that
        ran dry. A submission never hangs past its deadline.

        Snapshot isolation: the planner pins each archive at the epoch its
        count-star probe answered (returned as ``result.epochs``), so the
        whole chain reads one consistent version even while live ingest
        commits new epochs. ``pin_epochs`` (alias -> epoch) forces older
        committed epochs instead — a repeatable read of a past snapshot,
        valid until the epoch is garbage-collected.

        With a tracer on the network, the whole submission runs under one
        ``SubmitQuery`` root span and the returned result carries the
        assembled :class:`~repro.tracing.Trace` as ``result.trace``.
        """
        self.queries_served += 1
        query = parse_query(sql) if isinstance(sql, str) else sql
        analysis = validate_query(query)
        qid = ""
        budget_scope = nullcontext()
        if deadline_s is not None:
            qid = f"{self.hostname}-q{self.queries_served}"
            budget_scope = use_budget(QueryBudget(float(deadline_s), qid))
        tracer = self.network.tracer if self.network is not None else None

        def run() -> FederatedResult:
            try:
                if analysis.xmatch is None:
                    return self._submit_single_archive(query)
                return self._submit_federated(
                    query, strategy, random_seed, pin_epochs, qid=qid
                )
            except DeadlineExceededError as exc:
                # The budget died before (or outside) the chain — a probe,
                # a performance query, a direct query. No tagged chain
                # state exists yet, so there is nothing to cancel: the
                # TTL reaper covers any untagged leftovers. Degrade.
                return self._degraded_result(
                    query, [f"query deadline exceeded: {exc}"]
                )

        with budget_scope:
            if tracer is None:
                return run()
            with tracer.span("SubmitQuery", host=self.hostname) as root:
                result = run()
                trace_id = root.trace_id
            result.trace = tracer.trace(trace_id)
            return result

    def _submit_federated(
        self,
        query: Query,
        strategy: OrderingStrategy,
        random_seed: int,
        pin_epochs: Optional[Dict[str, int]] = None,
        qid: str = "",
    ) -> FederatedResult:
        """The cross-match path of :meth:`submit`: probe, plan, chain.

        With a :class:`SemanticCache` installed the Portal consults it at
        three points, cheapest first: the exact key (canonical SQL +
        planner knobs — a hit costs zero wire bytes), AREA containment (a
        cached covering circle re-filtered locally — also zero wire), and
        the plan fingerprint after planning (different SQL text, same
        chain — skips the expensive chain but not the probes). Clean
        results are admitted to the cache on the way out.
        """
        tracer = self.network.tracer if self.network is not None else None
        decomposed = decompose(query, self.catalog)
        cache = self.cache
        exact_key = None
        containment_key = None
        pins = tuple(sorted((pin_epochs or {}).items()))
        if cache is not None:
            profile = self.execution_profile()
            exact_key = cache.exact_key(
                to_sql(query), strategy.value, random_seed, pins, profile
            )
            served = cache.lookup_exact(exact_key)
            if served is not None:
                if tracer is not None:
                    tracer.annotate("cache", outcome="hit", kind="exact")
                return served
            containment_key = cache.containment_key(decomposed, profile)
            if not pins and query.limit is None:
                # LIMIT without the containment path: the cut through a
                # partially ordered row set is plan-order dependent.
                entry = cache.covering_entry(containment_key, decomposed.area)
                if entry is not None:
                    served = self._serve_containment(entry, decomposed)
                    if served is not None:
                        if tracer is not None:
                            tracer.annotate(
                                "cache",
                                outcome="hit",
                                kind="containment",
                                source_fingerprint=entry.fingerprint,
                            )
                        return served
            if tracer is not None:
                tracer.annotate("cache", outcome="miss")
        warnings: List[str] = []
        skip_aliases: List[str] = []
        degraded = False
        failovers = 0
        #: Alias -> snapshot epoch pinned by that archive's probe.
        epochs: Dict[str, int] = {}
        #: Archives whose primary is dead but a replica answered: the plan
        #: is built against the replica's endpoints instead of degrading.
        failover_services: Dict[str, Dict[str, str]] = {}

        def admit(result: FederatedResult) -> FederatedResult:
            if cache is not None and exact_key is not None:
                cache.store_result(
                    exact_key,
                    result,
                    archives_by_alias={
                        alias: sub.archive
                        for alias, sub in decomposed.subqueries.items()
                    },
                    containment_key=containment_key,
                    area=decomposed.area
                    if containment_key is not None
                    else None,
                )
            return result

        plan_scope = (
            tracer.span("plan", host=self.hostname)
            if tracer is not None
            else nullcontext(None)
        )
        with plan_scope:
            # With probes disabled the Portal keeps the seed's strict
            # behaviour: a failed performance query raises, not degrades.
            perf_failures: Optional[Dict[str, str]] = (
                {} if self.health_probes else None
            )
            if self.health_probes:
                # Probes and performance queries are independent round
                # trips to the same archives: dispatch both groups in one
                # parallel block so probing hides entirely under the
                # count-star makespan.
                with self.require_network().parallel():
                    endpoints = self.probe_endpoints(
                        [
                            sub.archive
                            for sub in decomposed.subqueries.values()
                        ]
                    )
                    counts = self.planner.performance_counts(
                        decomposed,
                        failures=perf_failures,
                        epochs=epochs,
                        pin_epochs=pin_epochs,
                    )
                for archive, chosen in sorted(endpoints.items()):
                    record = self.catalog.node(archive)
                    if chosen is None or chosen == record.services:
                        continue
                    failover_services[archive] = chosen
                    failovers += 1
                    self.require_network().metrics.failovers += 1
                    if tracer is not None:
                        tracer.annotate(
                            "failover",
                            archive=archive,
                            from_url=record.services["crossmatch"],
                            to_url=chosen["crossmatch"],
                        )
                    warnings.append(
                        f"archive {archive!r} primary endpoint "
                        f"{record.services['crossmatch']} is unreachable; "
                        f"failing over to replica {chosen['crossmatch']}"
                    )
                dead_mandatory = [
                    alias
                    for alias in decomposed.mandatory_aliases
                    if endpoints[decomposed.subqueries[alias].archive]
                    is None
                ]
                if dead_mandatory:
                    for alias in dead_mandatory:
                        archive = decomposed.subqueries[alias].archive
                        warnings.append(
                            f"mandatory archive {archive!r} (alias "
                            f"{alias!r}) is unreachable; cross-match aborted"
                        )
                    result = self._degraded_result(query, warnings)
                    result.failovers = failovers
                    return result
                for alias in decomposed.dropout_aliases:
                    archive = decomposed.subqueries[alias].archive
                    if endpoints[archive] is None:
                        skip_aliases.append(alias)
                        degraded = True
                        warnings.append(
                            f"drop-out archive {archive!r} (alias "
                            f"{alias!r}) is unreachable; skipped"
                        )
            else:
                counts = self.planner.performance_counts(
                    decomposed,
                    failures=perf_failures,
                    epochs=epochs,
                    pin_epochs=pin_epochs,
                )
            if perf_failures:
                # A performance query that died against a dead primary gets
                # a second chance at the replica the probe found alive.
                for alias in sorted(perf_failures):
                    subquery = decomposed.subqueries[alias]
                    chosen = failover_services.get(subquery.archive)
                    if chosen is None:
                        continue
                    try:
                        counts[alias], epochs[alias] = self.planner.count_for(
                            subquery,
                            chosen["query"],
                            pin_epoch=(pin_epochs or {}).get(alias),
                        )
                    except (TransportError, SoapFaultError) as exc:
                        if (
                            isinstance(exc, SoapFaultError)
                            and exc.detail == "StaleEpochError"
                            and alias in (pin_epochs or {})
                        ):
                            raise StaleEpochError(exc.faultstring) from exc
                        perf_failures[alias] = str(exc)
                        continue
                    del perf_failures[alias]
            if perf_failures:
                for alias in sorted(perf_failures):
                    archive = decomposed.subqueries[alias].archive
                    warnings.append(
                        f"mandatory archive {archive!r} (alias {alias!r}) "
                        f"failed its performance query: "
                        f"{perf_failures[alias]}"
                    )
                result = self._degraded_result(query, warnings)
                result.counts = counts
                result.epochs = epochs
                result.failovers = failovers
                return result
            if any(
                counts.get(alias) == 0
                for alias in decomposed.mandatory_aliases
            ):
                # A mandatory archive has nothing in the AREA: no tuple can
                # survive the inner join, so skip the whole chain. The
                # count-star probes pay for themselves here.
                result = FederatedResult(
                    columns=self.executor._output_columns(query.items),
                    rows=[],
                    warnings=warnings,
                    degraded=degraded,
                    failovers=failovers,
                )
                result.counts = counts
                result.epochs = epochs
                return admit(result)
            cost_models = None
            if strategy is OrderingStrategy.BYTES_DESC:
                from repro.portal.calibration import CostCalibrator

                cost_models = CostCalibrator(self).calibrate(decomposed)
            plan = self.planner.build_plan(
                decomposed,
                counts,
                strategy=strategy,
                random_seed=random_seed,
                cost_models=cost_models,
                skip_aliases=skip_aliases,
                services_for=failover_services,
                epochs=epochs,
            )
        if (
            cache is not None
            and not warnings
            and not degraded
            and not failovers
        ):
            # Same chain planned from different query text (or knobs that
            # cancel out): the fingerprint embeds the pinned epochs, so a
            # hit skips the chain — the probes were already paid for.
            served = cache.lookup_fingerprint(plan.fingerprint(0))
            if served is not None:
                if tracer is not None:
                    tracer.annotate(
                        "cache", outcome="hit", kind="fingerprint"
                    )
                return served
        result = self.executor.execute(
            plan,
            decomposed,
            warnings=warnings,
            degraded=degraded,
            failovers=failovers,
            qid=qid,
        )
        result.counts = counts
        result.epochs = epochs
        return admit(result)

    def _serve_containment(
        self, entry: _ResultEntry, decomposed: DecomposedQuery
    ) -> Optional[FederatedResult]:
        """Answer a contained-circle query from a cached covering entry.

        Re-filters the entry's pre-projection partial tuples with the
        *same* per-row predicate every node runs
        (``region.contains(radec_to_vector(ra, dec))``, one test per
        mandatory member), then re-finishes — cross-archive conjuncts,
        projection, DISTINCT/ORDER BY/LIMIT — against the *new* query.
        Zero wire bytes. Returns None (fall back to the federation) when
        the entry is unusable after all; see the module docstring of
        :mod:`repro.portal.cache` for the multiset row contract.
        """
        from repro.sphere.coords import radec_to_vector
        from repro.sql.area import region_for

        if entry.plan is None or entry.raw_tuples is None:
            return None
        assert decomposed.area is not None
        region = region_for(decomposed.area)
        members = [step for step in entry.plan.steps if not step.dropout]
        position_keys = [
            (f"{step.alias}.{step.ra_column}", f"{step.alias}.{step.dec_column}")
            for step in members
        ]
        if entry.raw_tuples and not all(
            ra_key in entry.raw_tuples[0].attributes
            and dec_key in entry.raw_tuples[0].attributes
            for ra_key, dec_key in position_keys
        ):
            # The entry predates position widening: unusable raw material.
            return None
        kept = [
            partial
            for partial in entry.raw_tuples
            if all(
                region.contains(
                    radec_to_vector(
                        partial.attributes[ra_key], partial.attributes[dec_key]
                    )
                )
                for ra_key, dec_key in position_keys
            )
        ]
        result = self.executor._finish(entry.plan, decomposed, kept, stats=[])
        result.cache = "containment"
        result.raw_tuples = None
        result.counts = {}
        result.epochs = dict(entry.result.epochs)
        result.node_stats = [
            {
                "cache": "containment",
                "source_fingerprint": entry.fingerprint,
                "tuples_scanned": len(entry.raw_tuples),
                "tuples_kept": len(kept),
            }
        ]
        return result

    def _degraded_result(
        self, query: Query, warnings: List[str]
    ) -> FederatedResult:
        """An empty, degraded answer naming the lost node(s)."""
        return FederatedResult(
            columns=self.executor._output_columns(query.items),
            rows=[],
            warnings=list(warnings),
            degraded=True,
        )

    def explain(
        self,
        sql: str | Query,
        *,
        strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC,
        random_seed: int = 0,
    ) -> dict:
        """Decompose, probe, and plan a query WITHOUT running the chain.

        Shows exactly what Figure 3's steps 2-5 would do: the per-archive
        performance queries and their counts, the node queries, the
        cross-archive predicates kept at the Portal, and the ordered plan.
        """
        query = parse_query(sql) if isinstance(sql, str) else sql
        analysis = validate_query(query)
        if analysis.xmatch is None:
            table_ref = query.tables[0]
            if table_ref.archive is None:
                raise ValidationError(
                    "single-archive queries must name their archive"
                )
            record = self.catalog.node(table_ref.archive)
            return {
                "type": "direct",
                "archive": record.archive,
                "query_service": record.services["query"],
                "sql": to_sql(query),
            }
        decomposed = decompose(query, self.catalog)
        epochs: Dict[str, int] = {}
        counts = self.planner.performance_counts(decomposed, epochs=epochs)
        cost_models = None
        calibration = None
        if strategy is OrderingStrategy.BYTES_DESC:
            from repro.portal.calibration import CostCalibrator

            cost_models = CostCalibrator(self).calibrate(decomposed)
            calibration = {
                alias: {
                    "bytes_per_row": model.bytes_per_row,
                    "round_trip_s": model.round_trip_s,
                }
                for alias, model in cost_models.items()
            }
        plan = self.planner.build_plan(
            decomposed,
            counts,
            strategy=strategy,
            random_seed=random_seed,
            cost_models=cost_models,
            epochs=epochs,
        )
        return {
            "type": "chain",
            "strategy": strategy.value,
            "counts": dict(counts),
            "epochs": dict(epochs),
            "would_execute": not any(
                counts[a] == 0 for a in decomposed.mandatory_aliases
            ),
            "performance_queries": {
                alias: subquery.perf_sql
                for alias, subquery in decomposed.subqueries.items()
                if subquery.perf_sql is not None
            },
            "node_queries": {
                alias: subquery.node_sql
                for alias, subquery in decomposed.subqueries.items()
            },
            "cross_conjuncts": [
                to_sql(c) for c in decomposed.analysis.cross_conjuncts
            ],
            "calibration": calibration,
            "plan": plan.to_wire(),
        }

    def _submit_single_archive(self, query: Query) -> FederatedResult:
        """Route a plain single-archive query to that node's Query service."""
        table_ref = query.tables[0]
        if table_ref.archive is None:
            raise ValidationError(
                "single-archive queries must name their archive "
                "(ARCHIVE:Table alias)"
            )
        record = self.catalog.node(table_ref.archive)
        local_query = Query(
            items=query.items,
            tables=(
                type(table_ref)(None, table_ref.table, table_ref.alias),
            ),
            where=query.where,
            group_by=query.group_by,
            having=query.having,
            order_by=query.order_by,
            limit=query.limit,
        )
        proxy = self.proxy(record.services["query"])
        with self.require_network().phase("direct-query"):
            rowset = proxy.call("ExecuteQuery", sql=to_sql(local_query))
        return FederatedResult(
            columns=rowset.column_names,
            rows=list(rowset.rows),
        )
