"""The Portal's meta-data catalog of registered SkyNodes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import RegistrationError, ValidationError
from repro.shard.topology import ShardSet
from repro.skynode.wrapper import ArchiveInfo


@dataclass
class NodeRecord:
    """Everything the Portal catalogs about one registered SkyNode.

    ``schema`` maps lowercased table name -> (original name, column map),
    where the column map is lowercased column name -> (original, typecode).

    ``replica_services`` lists additional complete endpoint sets (one dict
    per replica SkyNode, same keys as ``services``) that serve identical
    content — the failover candidates the planner and executor prefer over
    degrading the answer when the primary endpoint dies.

    ``shard_set`` optionally records the archive's spatial shard layout:
    per-shard ownership plus per-shard endpoint-candidate lists. Unlike
    ``replica_services`` the shard endpoints are *not* interchangeable
    whole-archive substitutes — each serves one slice of the sky — so
    they never appear in :meth:`endpoint_candidates`; the Planner uses
    them for count-probe fan-out and layout fingerprinting instead.
    """

    archive: str
    services: Dict[str, str]
    info: ArchiveInfo
    object_count: int
    dialect: str
    schema: Dict[str, Tuple[str, Dict[str, Tuple[str, str]]]] = field(
        default_factory=dict
    )
    registered_at: float = 0.0
    replica_services: List[Dict[str, str]] = field(default_factory=list)
    shard_set: Optional[ShardSet] = None

    @classmethod
    def from_wire(
        cls,
        archive: str,
        services: Dict[str, str],
        info_wire: Dict[str, Any],
        schema_wire: Dict[str, Any],
        registered_at: float = 0.0,
        replica_services: Optional[List[Dict[str, str]]] = None,
        shards_wire: Optional[List[Dict[str, Any]]] = None,
    ) -> "NodeRecord":
        """Build a record from the Information + Meta-data service replies."""
        info = ArchiveInfo.from_wire(info_wire)
        schema: Dict[str, Tuple[str, Dict[str, Tuple[str, str]]]] = {}
        for table in schema_wire.get("tables", []):
            name = str(table["name"])
            columns = {
                str(col["name"]).lower(): (str(col["name"]), str(col["type"]))
                for col in table.get("columns", [])
            }
            schema[name.lower()] = (name, columns)
        return cls(
            archive=archive,
            services=dict(services),
            info=info,
            object_count=int(info_wire.get("object_count") or 0),
            dialect=str(info_wire.get("dialect") or "ansi"),
            schema=schema,
            registered_at=registered_at,
            replica_services=[
                dict(endpoint) for endpoint in replica_services or []
            ],
            shard_set=(
                ShardSet.from_wire(shards_wire) if shards_wire else None
            ),
        )

    def endpoint_candidates(self) -> List[Dict[str, str]]:
        """Every complete endpoint set for this archive, primary first."""
        return [self.services, *self.replica_services]

    def resolve_table(self, table: str) -> str:
        """Canonical table name, raising :class:`ValidationError` if unknown."""
        entry = self.schema.get(table.lower())
        if entry is None:
            raise ValidationError(
                f"archive {self.archive!r} has no table {table!r}"
            )
        return entry[0]

    def column_type(self, table: str, column: str) -> str:
        """Wire typecode of a column, raising if table/column unknown."""
        entry = self.schema.get(table.lower())
        if entry is None:
            raise ValidationError(
                f"archive {self.archive!r} has no table {table!r}"
            )
        col = entry[1].get(column.lower())
        if col is None:
            raise ValidationError(
                f"table {self.archive}:{entry[0]} has no column {column!r}"
            )
        return col[1]

    def column_name(self, table: str, column: str) -> str:
        """Canonical column name (original casing)."""
        entry = self.schema.get(table.lower())
        if entry is None:
            raise ValidationError(
                f"archive {self.archive!r} has no table {table!r}"
            )
        col = entry[1].get(column.lower())
        if col is None:
            raise ValidationError(
                f"table {self.archive}:{entry[0]} has no column {column!r}"
            )
        return col[0]


class FederationCatalog:
    """Registered nodes indexed by archive name (case-insensitive)."""

    def __init__(self) -> None:
        self._nodes: Dict[str, NodeRecord] = {}

    def register(self, record: NodeRecord) -> None:
        """Add or replace a node record (re-registration updates it)."""
        self._nodes[record.archive.lower()] = record

    def unregister(self, archive: str) -> bool:
        """Remove a node; returns True if it was present."""
        return self._nodes.pop(archive.lower(), None) is not None

    def has(self, archive: str) -> bool:
        """True if the archive is registered."""
        return archive.lower() in self._nodes

    def node(self, archive: str) -> NodeRecord:
        """Record for an archive, raising if unregistered."""
        record = self._nodes.get(archive.lower())
        if record is None:
            raise RegistrationError(
                f"archive {archive!r} is not registered with the Portal"
            )
        return record

    def archives(self) -> List[str]:
        """Registered archive names (canonical casing), sorted."""
        return sorted(record.archive for record in self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)
