"""The federated query execution plan.

Paper Section 5.3: "The federated query execution plan consists of a list
of ordered pairs, each containing a query and the URL information of the
SkyNode where it would be executed. The list is in decreasing order of the
count star values returned by the performance queries, with the drop out
archives, if any, at the beginning of the list."

The Portal passes this plan (as a SOAP struct) to the first SkyNode; each
node forwards it down the chain. Execution then happens in reverse list
order: the *last* node on the list — the one with the smallest expected
result — runs its query first and seeds the partial tuples.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PlanningError
from repro.sql.area import area_from_wire, area_to_wire
from repro.sql.ast import AreaLike


@dataclass(frozen=True)
class PlanStep:
    """One (query, SkyNode URL) pair of the plan list.

    ``sql`` is the human-readable node query (what the paper would ship);
    the structured fields alongside it are what the Cross match service
    actually needs to run its step: the primary table and its id/position
    column names (learned from the Information service at registration),
    the local residual predicate, and which attribute columns to carry.
    """

    alias: str
    archive: str
    url: str  # the node's Cross match service endpoint
    sigma_arcsec: float
    dropout: bool
    count_star: Optional[int]
    table: str
    id_column: str
    ra_column: str
    dec_column: str
    residual_sql: str  # "" when the archive has no local predicates
    attr_select: Tuple[Tuple[str, str, str], ...]  # (column, wire name, typecode)
    sql: str
    #: Alternative Cross match endpoints (replica SkyNodes with identical
    #: content) the executor may fail over to when ``url`` dies mid-chain.
    replica_urls: Tuple[str, ...] = ()
    #: Snapshot epoch pinned at plan time: every hop of the chain reads
    #: this archive at exactly this committed version, so an in-flight
    #: query is immune to ingest commits (and failovers land on the same
    #: snapshot at the replica). ``None`` reads the live table.
    epoch: Optional[int] = None

    def to_wire(self) -> Dict[str, Any]:
        """Encode as a SOAP struct."""
        return {
            "alias": self.alias,
            "archive": self.archive,
            "url": self.url,
            "sigma_arcsec": self.sigma_arcsec,
            "dropout": self.dropout,
            "count_star": self.count_star,
            "table": self.table,
            "id_column": self.id_column,
            "ra_column": self.ra_column,
            "dec_column": self.dec_column,
            "residual_sql": self.residual_sql,
            "attr_select": [list(item) for item in self.attr_select],
            "sql": self.sql,
            "replica_urls": list(self.replica_urls),
            "epoch": self.epoch,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "PlanStep":
        """Decode from a SOAP struct."""
        count = data.get("count_star")
        epoch = data.get("epoch")
        return cls(
            alias=str(data["alias"]),
            archive=str(data["archive"]),
            url=str(data["url"]),
            sigma_arcsec=float(data["sigma_arcsec"]),
            dropout=bool(data["dropout"]),
            count_star=int(count) if count is not None else None,
            table=str(data["table"]),
            id_column=str(data["id_column"]),
            ra_column=str(data["ra_column"]),
            dec_column=str(data["dec_column"]),
            residual_sql=str(data.get("residual_sql") or ""),
            attr_select=tuple(
                (str(c), str(w), str(t)) for c, w, t in data.get("attr_select", [])
            ),
            sql=str(data.get("sql") or ""),
            replica_urls=tuple(
                str(u) for u in data.get("replica_urls") or []
            ),
            epoch=int(epoch) if epoch is not None else None,
        )

    def content_key(self) -> Tuple[Any, ...]:
        """What this step *computes*, independent of where it runs.

        Excludes ``url``/``replica_urls`` (a replica substitution must not
        change the key) and ``count_star`` (an estimate, not an input).
        Includes ``epoch``: the same query at a different snapshot is a
        different computation, so its checkpoints and streams never
        answer a resume pinned elsewhere.
        """
        return (
            self.alias,
            self.archive,
            round(self.sigma_arcsec, 12),
            self.dropout,
            self.table,
            self.id_column,
            self.ra_column,
            self.dec_column,
            self.residual_sql,
            self.attr_select,
            self.epoch,
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """The ordered plan list plus the query-wide spatial parameters."""

    steps: Tuple[PlanStep, ...]
    threshold: float
    area: Optional[AreaLike]
    #: Portal-side execution profile: sorted ``(knob, value)`` pairs for
    #: every setting that changes observable result bytes without changing
    #: the node queries — chain mode, stream wire format and batch size,
    #: cross-match kernel and match engine. Folded into ``fingerprint()``
    #: so a semantic cache never serves a result produced under a
    #: different profile, but deliberately NOT serialized to the wire:
    #: nodes derive these from the call surface (PerformXMatch args,
    #: OpenStream params), and keeping them off the plan struct preserves
    #: the htm/zone wire-byte parity invariant.
    profile: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.steps:
            raise PlanningError("execution plan has no steps")
        if self.steps[-1].dropout:
            raise PlanningError(
                "the last plan step (first to execute) must be mandatory"
            )
        mandatory = [s for s in self.steps if not s.dropout]
        if not mandatory:
            raise PlanningError("execution plan has no mandatory steps")

    def step(self, position: int) -> PlanStep:
        """The step at a list position."""
        if not 0 <= position < len(self.steps):
            raise PlanningError(
                f"plan position {position} out of range 0..{len(self.steps) - 1}"
            )
        return self.steps[position]

    def fingerprint(self, position: int = 0) -> str:
        """Content hash of the chain *suffix* starting at ``position``.

        Keyed on what the suffix computes — node queries, ordering, sigma,
        threshold, area — but NOT on endpoint URLs, so a node's cached
        checkpoint stays valid when an upstream hop fails over to a
        replica, and a stream resumed through a replica partitions
        identically.
        """
        self.step(position)  # bounds check
        payload = repr((
            tuple(step.content_key() for step in self.steps[position:]),
            round(self.threshold, 12),
            area_to_wire(self.area),
            self.profile,
        ))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]

    def replace_url(self, position: int, new_url: str) -> "ExecutionPlan":
        """A new plan with the step at ``position`` re-routed to ``new_url``.

        The step's previous endpoint joins its replica candidates (minus
        the new one), so nothing is forgotten if further failovers are
        needed; everything the step computes is unchanged, so checkpoint
        fingerprints survive the substitution.
        """
        old = self.step(position)
        candidates = tuple(
            u for u in (old.url,) + old.replica_urls if u != new_url
        )
        steps = list(self.steps)
        steps[position] = replace(old, url=new_url, replica_urls=candidates)
        return ExecutionPlan(
            steps=tuple(steps),
            threshold=self.threshold,
            area=self.area,
            profile=self.profile,
        )

    def member_aliases_after(self, position: int) -> List[str]:
        """Mandatory aliases joined once positions >= ``position`` have run.

        In *computation* order: the last list entry executes first, so its
        alias comes first in every partial tuple.
        """
        return [
            step.alias
            for step in reversed(self.steps[position:])
            if not step.dropout
        ]

    def attr_columns_after(self, position: int) -> List[Tuple[str, str]]:
        """(wire name, typecode) attribute columns carried past ``position``."""
        columns: List[Tuple[str, str]] = []
        for step in reversed(self.steps[position:]):
            if step.dropout:
                continue
            for _, wire_name, typecode in step.attr_select:
                columns.append((wire_name, typecode))
        return columns

    def to_wire(self) -> Dict[str, Any]:
        """Encode as a SOAP struct."""
        return {
            "steps": [step.to_wire() for step in self.steps],
            "threshold": self.threshold,
            "area": area_to_wire(self.area),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ExecutionPlan":
        """Decode from a SOAP struct."""
        return cls(
            steps=tuple(PlanStep.from_wire(s) for s in data["steps"]),
            threshold=float(data["threshold"]),
            area=area_from_wire(data.get("area")),
        )
