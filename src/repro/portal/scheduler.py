"""The Portal's multi-tenant query scheduler.

The paper's portal answers one federated query at a time; the production
service it sketches is a job queue serving many concurrent callers. This
module turns the Portal into that server on the simulated clock:

* **Admission control** — at most ``max_inflight`` queries execute
  concurrently; everything else waits in per-tenant FIFO queues.
* **Fair share** — admission picks jobs by deficit round-robin over the
  tenants (Shreedhar & Varghese): each visit grants a tenant
  ``quantum * weight`` credit, and the tenant admits queued jobs while
  its credit covers their cost. A tenant bursting a hundred queries
  cannot starve a tenant submitting one.
* **Backpressure** — when the total backlog reaches ``max_queue``,
  :meth:`QueryScheduler.enqueue` sheds the query with
  :class:`~repro.errors.SchedulerOverloadError` (the HTTP-503 analogue)
  instead of letting the queue grow without bound.

Execution happens in *waves*: each wave runs its admitted jobs inside one
``network.parallel()`` block, one ``network.branch()`` per query, so the
sim clock charges the true overlapped makespan — the slowest query of
the wave, not the sum — exactly as concurrent chains through disjoint
archives would behave. Every query still pins its plan-time epochs
(PR 6), so interleaving queries with ingest commits never changes any
individual answer; and queries of one wave that hit the Portal's
semantic cache behind an identical in-flight query are effectively
request-coalesced: the first submission fills the entry, the duplicates
ride it for zero wire bytes.

Latency accounting per job: ``wait`` (enqueue → wave start), ``service``
(the job's own in-branch duration), ``latency = wait + service``; a
job's completion instant is its wave's start plus its own service time,
while the *next* wave starts at the wave barrier (the makespan).
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from repro.errors import (
    DeadlineExceededError,
    QueryCancelledError,
    SchedulerOverloadError,
    SkyQueryError,
)
from repro.portal.planner import OrderingStrategy

#: How many recent per-job service times feed the ``retry_after_s``
#: estimate handed back with every overload rejection.
SERVICE_SAMPLE_WINDOW = 32

if TYPE_CHECKING:
    from repro.portal.executor import FederatedResult
    from repro.portal.portal import Portal


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the run queue (see docs/SCHEDULING.md)."""

    #: Queries executing concurrently per wave (the admission cap).
    max_inflight: int = 4
    #: Credit granted per tenant per round-robin visit. Jobs cost 1.0 by
    #: default, so the default quantum admits one job per tenant per
    #: visit — classic round-robin; larger quanta admit bursts.
    quantum: float = 1.0
    #: Total queued jobs (across tenants) before enqueue sheds load.
    max_queue: int = 64
    #: Per-tenant fair-share weights (missing tenants weigh 1.0).
    weights: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("scheduler max_inflight must be >= 1")
        if self.quantum <= 0:
            raise ValueError("scheduler quantum must be > 0")
        if self.max_queue < 1:
            raise ValueError("scheduler max_queue must be >= 1")
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(
                    f"scheduler weight for tenant {tenant!r} must be > 0"
                )


@dataclass
class ScheduledQuery:
    """One job in the run queue."""

    seq: int
    tenant: str
    sql: str
    strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC
    random_seed: int = 0
    pin_epochs: Optional[Dict[str, int]] = None
    #: Deficit-round-robin cost (1.0 = one quantum's worth of work).
    cost: float = 1.0
    #: Sim-clock instant the job entered the queue.
    arrival_s: float = 0.0
    #: Absolute sim-clock deadline for the whole job (None = unbounded).
    #: Queued past it, the job is shed at admission without dispatch; the
    #: remaining budget rides the submission as its ``QueryBudget``.
    deadline_s: Optional[float] = None


@dataclass
class QueryOutcome:
    """What happened to one scheduled job."""

    job: ScheduledQuery
    result: Optional["FederatedResult"] = None
    error: Optional[Exception] = None
    #: 1-based wave the job was admitted into.
    wave: int = 0
    wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    finished_s: float = 0.0
    #: The cache path the answer took (None = executed the federation).
    cache: Optional[str] = None


@dataclass
class SchedulerStats:
    """Observable counters (reported by E21 and the serve driver)."""

    enqueued: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    waves: int = 0
    #: Jobs whose deadline died in the queue: shed at admission, never
    #: dispatched (their outcome carries a DeadlineExceededError).
    expired: int = 0
    #: Queued jobs dropped by a cancelling drain (QueryCancelledError).
    cancelled: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class QueryScheduler:
    """Admission-controlled, fair-share run queue in front of a Portal."""

    def __init__(
        self, portal: "Portal", config: Optional[SchedulerConfig] = None
    ) -> None:
        self._portal = portal
        self.config = config or SchedulerConfig()
        self.stats = SchedulerStats()
        self._seq = itertools.count(1)
        self._queues: Dict[str, Deque[ScheduledQuery]] = {}
        #: Tenants with queued work, in first-arrival order; the DRR
        #: cursor walks this ring.
        self._ring: List[str] = []
        self._cursor = 0
        self._deficits: Dict[str, float] = {}
        #: Recent per-job service times (seconds); the basis of the
        #: ``retry_after_s`` hint and of admission-time deadline triage.
        self._service_samples: Deque[float] = deque(
            maxlen=SERVICE_SAMPLE_WINDOW
        )
        #: Set by a stopping :meth:`drain`: a draining scheduler sheds
        #: every new enqueue so a graceful shutdown converges.
        self._draining = False

    # -- queue state ----------------------------------------------------------

    def pending(self) -> int:
        """Jobs waiting for admission."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def draining(self) -> bool:
        """True once admission has been stopped for shutdown."""
        return self._draining

    def _weight(self, tenant: str) -> float:
        return self.config.weights.get(tenant, 1.0)

    def avg_service_s(self) -> float:
        """Mean of the recent per-job service times (0.0 with no history)."""
        if not self._service_samples:
            return 0.0
        return sum(self._service_samples) / len(self._service_samples)

    def retry_after_s(self, backlog: Optional[int] = None) -> float:
        """How long a shed caller should wait before retrying.

        Queue-depth-aware: the backlog drains ``max_inflight`` jobs per
        wave and a wave lasts about one recent average service time, so
        the estimate is (waves ahead of the caller) x (average service).
        Zero until at least one job has actually run.
        """
        avg = self.avg_service_s()
        if avg <= 0.0:
            return 0.0
        backlog = self.pending() if backlog is None else backlog
        waves_ahead = backlog // self.config.max_inflight + 1
        return waves_ahead * avg

    # -- admission ------------------------------------------------------------

    def enqueue(
        self,
        sql: str,
        *,
        tenant: str = "default",
        strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC,
        random_seed: int = 0,
        pin_epochs: Optional[Dict[str, int]] = None,
        cost: float = 1.0,
        deadline_s: Optional[float] = None,
    ) -> ScheduledQuery:
        """Queue a query for the next :meth:`drain`.

        Raises :class:`SchedulerOverloadError` when the backlog is at
        ``max_queue`` (or the scheduler is draining for shutdown) —
        backpressure the caller must absorb. The error's
        ``retry_after_s`` scales with the backlog and the recent average
        service time, so a polite client backs off just long enough.
        """
        if cost <= 0:
            raise ValueError("job cost must be > 0")
        backlog = self.pending()
        if self._draining:
            self.stats.rejected += 1
            raise SchedulerOverloadError(
                "scheduler is draining for shutdown; not accepting work",
                queued=backlog,
                limit=self.config.max_queue,
                retry_after_s=self.retry_after_s(backlog),
            )
        if backlog >= self.config.max_queue:
            self.stats.rejected += 1
            raise SchedulerOverloadError(
                f"run queue is full ({backlog}/{self.config.max_queue} "
                "jobs queued); retry later",
                queued=backlog,
                limit=self.config.max_queue,
                retry_after_s=self.retry_after_s(backlog),
            )
        network = self._portal.require_network()
        job = ScheduledQuery(
            seq=next(self._seq),
            tenant=tenant,
            sql=sql,
            strategy=strategy,
            random_seed=random_seed,
            pin_epochs=dict(pin_epochs) if pin_epochs else None,
            cost=cost,
            arrival_s=network.clock.now,
            deadline_s=deadline_s,
        )
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._ring.append(tenant)
            self._deficits.setdefault(tenant, 0.0)
        self._queues[tenant].append(job)
        self.stats.enqueued += 1
        return job

    def _next_wave(self) -> List[ScheduledQuery]:
        """Deficit round-robin: fill up to ``max_inflight`` slots."""
        wave: List[ScheduledQuery] = []
        while len(wave) < self.config.max_inflight and self._ring:
            tenant = self._ring[self._cursor % len(self._ring)]
            queue = self._queues[tenant]
            self._deficits[tenant] += self.config.quantum * self._weight(
                tenant
            )
            while (
                queue
                and len(wave) < self.config.max_inflight
                and self._deficits[tenant] >= queue[0].cost
            ):
                job = queue.popleft()
                self._deficits[tenant] -= job.cost
                wave.append(job)
            if not queue:
                # Drained: a tenant leaving the ring forfeits its credit,
                # so an idle tenant cannot hoard deficit for later bursts.
                index = self._cursor % len(self._ring)
                self._ring.pop(index)
                del self._queues[tenant]
                del self._deficits[tenant]
                self._cursor = index % len(self._ring) if self._ring else 0
            else:
                self._cursor = (self._cursor + 1) % len(self._ring)
        return wave

    # -- execution ------------------------------------------------------------

    def _shed_reason(
        self, job: ScheduledQuery, now: float
    ) -> Optional[SkyQueryError]:
        """Why a job must not be dispatched at admission time (or None).

        A job whose deadline already passed in the queue is certainly
        dead; one whose remaining budget cannot cover even the recent
        average service time would only waste a wave slot to produce the
        same deadline-degraded answer — both shed here, undispatched.
        """
        if job.deadline_s is None:
            return None
        remaining = job.deadline_s - now
        if remaining <= 0.0:
            return DeadlineExceededError(
                f"job {job.seq} (tenant {job.tenant!r}) spent its whole "
                f"budget queued ({-remaining:.3f}s past the deadline); "
                "shed without dispatch"
            )
        avg = self.avg_service_s()
        if avg > 0.0 and remaining < avg:
            return DeadlineExceededError(
                f"job {job.seq} (tenant {job.tenant!r}) has {remaining:.3f}s "
                f"of budget left but recent queries averaged {avg:.3f}s; "
                "shed at admission"
            )
        return None

    def drain(
        self, *, stop_admission: bool = False, cancel_queued: bool = False
    ) -> List[QueryOutcome]:
        """Run every queued job, wave by wave; outcomes in enqueue order.

        Each wave is one ``parallel()`` block: the clock advances by the
        wave's slowest job. Per-job errors (including degraded-path
        exceptions) are captured on the outcome, never raised — one
        tenant's bad query must not take down the wave. Jobs whose
        deadline died in the queue are shed before dispatch (outcome
        carries a :class:`DeadlineExceededError`, counted in
        ``stats.expired``).

        Shutdown: ``stop_admission`` permanently closes the queue (every
        later enqueue sheds with an overload error), and ``cancel_queued``
        drops the still-queued jobs as :class:`QueryCancelledError`
        outcomes instead of running them — together they are the graceful
        Ctrl-C path of ``python -m repro serve``: stop taking work, then
        either finish or cancel what is queued, never strand server state.
        """
        portal = self._portal
        network = portal.require_network()
        tracer = network.tracer
        if stop_admission:
            self._draining = True
        outcomes: List[QueryOutcome] = []
        if cancel_queued:
            now = network.clock.now
            for tenant in list(self._ring):
                for job in self._queues[tenant]:
                    outcome = QueryOutcome(
                        job=job, wait_s=now - job.arrival_s,
                        finished_s=now, latency_s=now - job.arrival_s,
                    )
                    outcome.error = QueryCancelledError(
                        f"job {job.seq} (tenant {job.tenant!r}) cancelled "
                        "by scheduler drain before dispatch"
                    )
                    outcomes.append(outcome)
                    self.stats.cancelled += 1
            self._queues.clear()
            self._ring.clear()
            self._deficits.clear()
            self._cursor = 0
            outcomes.sort(key=lambda outcome: outcome.job.seq)
            return outcomes
        while self._ring:
            wave = self._next_wave()
            if not wave:  # pragma: no cover - quantum > 0 guarantees progress
                break
            now = network.clock.now
            runnable: List[ScheduledQuery] = []
            for job in wave:
                reason = self._shed_reason(job, now)
                if reason is None:
                    runnable.append(job)
                    continue
                outcome = QueryOutcome(
                    job=job, wait_s=now - job.arrival_s,
                    finished_s=now, latency_s=now - job.arrival_s,
                )
                outcome.error = reason
                outcomes.append(outcome)
                self.stats.expired += 1
                if tracer is not None:
                    tracer.annotate(
                        "shed",
                        job=job.seq,
                        tenant=job.tenant,
                        reason="deadline",
                    )
            wave = runnable
            if not wave:
                continue
            self.stats.waves += 1
            self.stats.admitted += len(wave)
            wave_no = self.stats.waves
            wave_start = network.clock.now
            span_scope = (
                tracer.span("scheduler-wave", host=portal.hostname)
                if tracer is not None
                else nullcontext(None)
            )
            with span_scope:
                if tracer is not None:
                    tracer.annotate(
                        "admission",
                        wave=wave_no,
                        admitted=len(wave),
                        backlog=self.pending(),
                        tenants=sorted({job.tenant for job in wave}),
                    )
                wave_outcomes: List[QueryOutcome] = []
                with network.parallel():
                    for job in wave:
                        with network.branch():
                            started = network.clock.now
                            outcome = QueryOutcome(
                                job=job, wave=wave_no,
                                wait_s=wave_start - job.arrival_s,
                            )
                            try:
                                outcome.result = portal.submit(
                                    job.sql,
                                    strategy=job.strategy,
                                    random_seed=job.random_seed,
                                    pin_epochs=job.pin_epochs,
                                    deadline_s=job.deadline_s,
                                )
                                outcome.cache = outcome.result.cache
                                self.stats.completed += 1
                            except SkyQueryError as exc:
                                outcome.error = exc
                                self.stats.failed += 1
                            # Read the branch's own duration before the
                            # parallel block rewinds to pool the makespan.
                            outcome.service_s = network.clock.now - started
                            wave_outcomes.append(outcome)
            for outcome in wave_outcomes:
                outcome.finished_s = wave_start + outcome.service_s
                outcome.latency_s = outcome.wait_s + outcome.service_s
                self._service_samples.append(outcome.service_s)
            outcomes.extend(wave_outcomes)
        outcomes.sort(key=lambda outcome: outcome.job.seq)
        return outcomes

    def run(
        self, jobs: List[Dict[str, Any]]
    ) -> List[QueryOutcome]:
        """Enqueue a batch of job dicts (``sql`` plus enqueue kwargs) and
        drain them — the multi-client driver's entry point. Shed jobs
        surface as outcomes carrying the overload error."""
        shed: List[QueryOutcome] = []
        for spec in jobs:
            spec = dict(spec)
            sql = spec.pop("sql")
            try:
                self.enqueue(sql, **spec)
            except SchedulerOverloadError as exc:
                shed.append(
                    QueryOutcome(
                        job=ScheduledQuery(
                            seq=next(self._seq),
                            tenant=spec.get("tenant", "default"),
                            sql=sql,
                        ),
                        error=exc,
                    )
                )
        outcomes = self.drain() + shed
        outcomes.sort(key=lambda outcome: outcome.job.seq)
        return outcomes
