"""The Portal's multi-tenant query scheduler.

The paper's portal answers one federated query at a time; the production
service it sketches is a job queue serving many concurrent callers. This
module turns the Portal into that server on the simulated clock:

* **Admission control** — at most ``max_inflight`` queries execute
  concurrently; everything else waits in per-tenant FIFO queues.
* **Fair share** — admission picks jobs by deficit round-robin over the
  tenants (Shreedhar & Varghese): each visit grants a tenant
  ``quantum * weight`` credit, and the tenant admits queued jobs while
  its credit covers their cost. A tenant bursting a hundred queries
  cannot starve a tenant submitting one.
* **Backpressure** — when the total backlog reaches ``max_queue``,
  :meth:`QueryScheduler.enqueue` sheds the query with
  :class:`~repro.errors.SchedulerOverloadError` (the HTTP-503 analogue)
  instead of letting the queue grow without bound.

Execution happens in *waves*: each wave runs its admitted jobs inside one
``network.parallel()`` block, one ``network.branch()`` per query, so the
sim clock charges the true overlapped makespan — the slowest query of
the wave, not the sum — exactly as concurrent chains through disjoint
archives would behave. Every query still pins its plan-time epochs
(PR 6), so interleaving queries with ingest commits never changes any
individual answer; and queries of one wave that hit the Portal's
semantic cache behind an identical in-flight query are effectively
request-coalesced: the first submission fills the entry, the duplicates
ride it for zero wire bytes.

Latency accounting per job: ``wait`` (enqueue → wave start), ``service``
(the job's own in-branch duration), ``latency = wait + service``; a
job's completion instant is its wave's start plus its own service time,
while the *next* wave starts at the wave barrier (the makespan).
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional

from repro.errors import SchedulerOverloadError, SkyQueryError
from repro.portal.planner import OrderingStrategy

if TYPE_CHECKING:
    from repro.portal.executor import FederatedResult
    from repro.portal.portal import Portal


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the run queue (see docs/SCHEDULING.md)."""

    #: Queries executing concurrently per wave (the admission cap).
    max_inflight: int = 4
    #: Credit granted per tenant per round-robin visit. Jobs cost 1.0 by
    #: default, so the default quantum admits one job per tenant per
    #: visit — classic round-robin; larger quanta admit bursts.
    quantum: float = 1.0
    #: Total queued jobs (across tenants) before enqueue sheds load.
    max_queue: int = 64
    #: Per-tenant fair-share weights (missing tenants weigh 1.0).
    weights: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("scheduler max_inflight must be >= 1")
        if self.quantum <= 0:
            raise ValueError("scheduler quantum must be > 0")
        if self.max_queue < 1:
            raise ValueError("scheduler max_queue must be >= 1")
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(
                    f"scheduler weight for tenant {tenant!r} must be > 0"
                )


@dataclass
class ScheduledQuery:
    """One job in the run queue."""

    seq: int
    tenant: str
    sql: str
    strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC
    random_seed: int = 0
    pin_epochs: Optional[Dict[str, int]] = None
    #: Deficit-round-robin cost (1.0 = one quantum's worth of work).
    cost: float = 1.0
    #: Sim-clock instant the job entered the queue.
    arrival_s: float = 0.0


@dataclass
class QueryOutcome:
    """What happened to one scheduled job."""

    job: ScheduledQuery
    result: Optional["FederatedResult"] = None
    error: Optional[Exception] = None
    #: 1-based wave the job was admitted into.
    wave: int = 0
    wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    finished_s: float = 0.0
    #: The cache path the answer took (None = executed the federation).
    cache: Optional[str] = None


@dataclass
class SchedulerStats:
    """Observable counters (reported by E21 and the serve driver)."""

    enqueued: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    waves: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class QueryScheduler:
    """Admission-controlled, fair-share run queue in front of a Portal."""

    def __init__(
        self, portal: "Portal", config: Optional[SchedulerConfig] = None
    ) -> None:
        self._portal = portal
        self.config = config or SchedulerConfig()
        self.stats = SchedulerStats()
        self._seq = itertools.count(1)
        self._queues: Dict[str, Deque[ScheduledQuery]] = {}
        #: Tenants with queued work, in first-arrival order; the DRR
        #: cursor walks this ring.
        self._ring: List[str] = []
        self._cursor = 0
        self._deficits: Dict[str, float] = {}

    # -- queue state ----------------------------------------------------------

    def pending(self) -> int:
        """Jobs waiting for admission."""
        return sum(len(queue) for queue in self._queues.values())

    def _weight(self, tenant: str) -> float:
        return self.config.weights.get(tenant, 1.0)

    # -- admission ------------------------------------------------------------

    def enqueue(
        self,
        sql: str,
        *,
        tenant: str = "default",
        strategy: OrderingStrategy = OrderingStrategy.COUNT_DESC,
        random_seed: int = 0,
        pin_epochs: Optional[Dict[str, int]] = None,
        cost: float = 1.0,
    ) -> ScheduledQuery:
        """Queue a query for the next :meth:`drain`.

        Raises :class:`SchedulerOverloadError` when the backlog is at
        ``max_queue`` — backpressure the caller must absorb.
        """
        if cost <= 0:
            raise ValueError("job cost must be > 0")
        backlog = self.pending()
        if backlog >= self.config.max_queue:
            self.stats.rejected += 1
            raise SchedulerOverloadError(
                f"run queue is full ({backlog}/{self.config.max_queue} "
                "jobs queued); retry later",
                queued=backlog,
                limit=self.config.max_queue,
            )
        network = self._portal.require_network()
        job = ScheduledQuery(
            seq=next(self._seq),
            tenant=tenant,
            sql=sql,
            strategy=strategy,
            random_seed=random_seed,
            pin_epochs=dict(pin_epochs) if pin_epochs else None,
            cost=cost,
            arrival_s=network.clock.now,
        )
        if tenant not in self._queues:
            self._queues[tenant] = deque()
            self._ring.append(tenant)
            self._deficits.setdefault(tenant, 0.0)
        self._queues[tenant].append(job)
        self.stats.enqueued += 1
        return job

    def _next_wave(self) -> List[ScheduledQuery]:
        """Deficit round-robin: fill up to ``max_inflight`` slots."""
        wave: List[ScheduledQuery] = []
        while len(wave) < self.config.max_inflight and self._ring:
            tenant = self._ring[self._cursor % len(self._ring)]
            queue = self._queues[tenant]
            self._deficits[tenant] += self.config.quantum * self._weight(
                tenant
            )
            while (
                queue
                and len(wave) < self.config.max_inflight
                and self._deficits[tenant] >= queue[0].cost
            ):
                job = queue.popleft()
                self._deficits[tenant] -= job.cost
                wave.append(job)
            if not queue:
                # Drained: a tenant leaving the ring forfeits its credit,
                # so an idle tenant cannot hoard deficit for later bursts.
                index = self._cursor % len(self._ring)
                self._ring.pop(index)
                del self._queues[tenant]
                del self._deficits[tenant]
                self._cursor = index % len(self._ring) if self._ring else 0
            else:
                self._cursor = (self._cursor + 1) % len(self._ring)
        return wave

    # -- execution ------------------------------------------------------------

    def drain(self) -> List[QueryOutcome]:
        """Run every queued job, wave by wave; outcomes in enqueue order.

        Each wave is one ``parallel()`` block: the clock advances by the
        wave's slowest job. Per-job errors (including degraded-path
        exceptions) are captured on the outcome, never raised — one
        tenant's bad query must not take down the wave.
        """
        portal = self._portal
        network = portal.require_network()
        tracer = network.tracer
        outcomes: List[QueryOutcome] = []
        while self._ring:
            wave = self._next_wave()
            if not wave:  # pragma: no cover - quantum > 0 guarantees progress
                break
            self.stats.waves += 1
            self.stats.admitted += len(wave)
            wave_no = self.stats.waves
            wave_start = network.clock.now
            span_scope = (
                tracer.span("scheduler-wave", host=portal.hostname)
                if tracer is not None
                else nullcontext(None)
            )
            with span_scope:
                if tracer is not None:
                    tracer.annotate(
                        "admission",
                        wave=wave_no,
                        admitted=len(wave),
                        backlog=self.pending(),
                        tenants=sorted({job.tenant for job in wave}),
                    )
                wave_outcomes: List[QueryOutcome] = []
                with network.parallel():
                    for job in wave:
                        with network.branch():
                            started = network.clock.now
                            outcome = QueryOutcome(
                                job=job, wave=wave_no,
                                wait_s=wave_start - job.arrival_s,
                            )
                            try:
                                outcome.result = portal.submit(
                                    job.sql,
                                    strategy=job.strategy,
                                    random_seed=job.random_seed,
                                    pin_epochs=job.pin_epochs,
                                )
                                outcome.cache = outcome.result.cache
                                self.stats.completed += 1
                            except SkyQueryError as exc:
                                outcome.error = exc
                                self.stats.failed += 1
                            # Read the branch's own duration before the
                            # parallel block rewinds to pool the makespan.
                            outcome.service_s = network.clock.now - started
                            wave_outcomes.append(outcome)
            for outcome in wave_outcomes:
                outcome.finished_s = wave_start + outcome.service_s
                outcome.latency_s = outcome.wait_s + outcome.service_s
            outcomes.extend(wave_outcomes)
        outcomes.sort(key=lambda outcome: outcome.job.seq)
        return outcomes

    def run(
        self, jobs: List[Dict[str, Any]]
    ) -> List[QueryOutcome]:
        """Enqueue a batch of job dicts (``sql`` plus enqueue kwargs) and
        drain them — the multi-client driver's entry point. Shed jobs
        surface as outcomes carrying the overload error."""
        shed: List[QueryOutcome] = []
        for spec in jobs:
            spec = dict(spec)
            sql = spec.pop("sql")
            try:
                self.enqueue(sql, **spec)
            except SchedulerOverloadError as exc:
                shed.append(
                    QueryOutcome(
                        job=ScheduledQuery(
                            seq=next(self._seq),
                            tenant=spec.get("tenant", "default"),
                            sql=sql,
                        ),
                        error=exc,
                    )
                )
        outcomes = self.drain() + shed
        outcomes.sort(key=lambda outcome: outcome.job.seq)
        return outcomes
