"""Query decomposition: one user query -> per-archive subqueries.

Section 5.1: the Portal "decomposes the queries to generate performance
queries that are used for query optimization". Each archive in the XMATCH
clause gets (a) the local conjuncts it alone can evaluate, (b) the list of
attribute columns it must contribute (for the SELECT list and for
cross-archive predicates the Portal evaluates at the end), and (c) — for
mandatory archives — the count-star performance query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.portal.catalog import FederationCatalog, NodeRecord
from repro.sql.ast import (
    AreaLike,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Query,
    SelectItem,
    Star,
    TableRef,
    UnaryOp,
    XMatchClause,
    and_together,
)
from repro.sql.printer import to_sql
from repro.sql.validate import QueryAnalysis, validate_query


@dataclass
class NodeSubquery:
    """Everything one archive contributes to the federated query."""

    alias: str
    archive: str
    table: str  # canonical table name at the archive
    dropout: bool
    residual_sql: str
    attr_select: Tuple[Tuple[str, str, str], ...]  # (column, wire name, typecode)
    node_sql: str  # display form of this archive's spatial query
    perf_sql: Optional[str]  # count-star performance query (mandatory only)


@dataclass
class DecomposedQuery:
    """The validated, decomposed user query."""

    query: Query
    analysis: QueryAnalysis
    area: Optional[AreaLike]
    xmatch: Optional[XMatchClause]
    subqueries: Dict[str, NodeSubquery] = field(default_factory=dict)

    @property
    def mandatory_aliases(self) -> List[str]:
        """Aliases of mandatory archives, in query order."""
        assert self.xmatch is not None
        return [t.alias for t in self.xmatch.mandatory]

    @property
    def dropout_aliases(self) -> List[str]:
        """Aliases of drop-out archives, in query order."""
        assert self.xmatch is not None
        return [t.alias for t in self.xmatch.dropouts]


def decompose(query: Query, catalog: FederationCatalog) -> DecomposedQuery:
    """Validate against the catalog and split into per-archive subqueries."""
    analysis = validate_query(query)
    if analysis.xmatch is None:
        raise ValidationError(
            "decompose() handles cross-match queries; single-archive "
            "queries are routed directly to the node's Query service"
        )

    tables_by_alias: Dict[str, TableRef] = {
        t.effective_alias: t for t in query.tables
    }
    xmatch_aliases = {term.alias for term in analysis.xmatch.terms}
    unmatched = set(tables_by_alias) - xmatch_aliases
    if unmatched:
        raise ValidationError(
            f"FROM table(s) {sorted(unmatched)} do not appear in XMATCH"
        )

    decomposed = DecomposedQuery(
        query=query,
        analysis=analysis,
        area=analysis.area,
        xmatch=analysis.xmatch,
    )

    attr_needs = _attribute_needs(query, analysis)
    for term in analysis.xmatch.terms:
        table_ref = tables_by_alias[term.alias]
        if table_ref.archive is None:
            raise ValidationError(
                f"table {table_ref.table!r} (alias {term.alias!r}) has no "
                "archive qualifier"
            )
        record = catalog.node(table_ref.archive)
        table = record.resolve_table(table_ref.table)
        attr_select = _resolve_attrs(
            attr_needs.get(term.alias, []), term.alias, table, record
        )
        residual = and_together(tuple(analysis.local_conjuncts[term.alias]))
        _check_columns_exist(residual, term.alias, table, record)
        residual_sql = to_sql(residual) if residual is not None else ""
        decomposed.subqueries[term.alias] = NodeSubquery(
            alias=term.alias,
            archive=record.archive,
            table=table,
            dropout=term.dropout,
            residual_sql=residual_sql,
            attr_select=attr_select,
            node_sql=_node_sql(record, term.alias, table, analysis, residual),
            perf_sql=None
            if term.dropout
            else _perf_sql(term.alias, table, analysis, residual),
        )
    return decomposed


def _attribute_needs(
    query: Query, analysis: QueryAnalysis
) -> Dict[str, List[str]]:
    """Which columns each alias must contribute (SELECT + cross conjuncts)."""
    needs: Dict[str, List[str]] = {}

    def visit(expr: Expr) -> None:
        if isinstance(expr, ColumnRef):
            if expr.qualifier is None:
                # Might be a named constant (GALAXY); the Portal cannot tell
                # without archive context, so only qualified refs are shipped.
                return
            bucket = needs.setdefault(expr.qualifier, [])
            if expr.name not in bucket:
                bucket.append(expr.name)
        elif isinstance(expr, BinaryOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, UnaryOp):
            visit(expr.operand)
        elif isinstance(expr, IsNull):
            visit(expr.operand)
        elif isinstance(expr, FuncCall):
            for arg in expr.args:
                visit(arg)

    for item in query.items:
        if isinstance(item.expr, Star):
            raise ValidationError(
                "SELECT * is not supported in cross-match queries; list "
                "the columns explicitly"
            )
        visit(item.expr)
    for conjunct in analysis.cross_conjuncts:
        visit(conjunct)
    for order_item in query.order_by:
        visit(order_item.expr)
    return needs


def _resolve_attrs(
    columns: List[str], alias: str, table: str, record: NodeRecord
) -> Tuple[Tuple[str, str, str], ...]:
    resolved = []
    for column in columns:
        canonical = record.column_name(table, column)
        typecode = record.column_type(table, column)
        resolved.append((canonical, f"{alias}.{canonical}", typecode))
    return tuple(resolved)


def _check_columns_exist(
    expr: Optional[Expr], alias: str, table: str, record: NodeRecord
) -> None:
    if expr is None:
        return
    if isinstance(expr, ColumnRef):
        if expr.qualifier == alias:
            record.column_name(table, expr.name)  # raises if unknown
    elif isinstance(expr, BinaryOp):
        _check_columns_exist(expr.left, alias, table, record)
        _check_columns_exist(expr.right, alias, table, record)
    elif isinstance(expr, UnaryOp):
        _check_columns_exist(expr.operand, alias, table, record)
    elif isinstance(expr, IsNull):
        _check_columns_exist(expr.operand, alias, table, record)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _check_columns_exist(arg, alias, table, record)


def _where_with_area(
    analysis: QueryAnalysis, residual: Optional[Expr]
) -> Optional[Expr]:
    where: Optional[Expr] = analysis.area
    if residual is not None:
        where = residual if where is None else BinaryOp("AND", where, residual)
    return where


def _perf_sql(
    alias: str, table: str, analysis: QueryAnalysis, residual: Optional[Expr]
) -> str:
    """The count-star performance query for a mandatory archive."""
    query = Query(
        items=(SelectItem(FuncCall("COUNT", (Star(),))),),
        tables=(TableRef(None, table, alias),),
        where=_where_with_area(analysis, residual),
    )
    return to_sql(query)


def _node_sql(
    record: NodeRecord,
    alias: str,
    table: str,
    analysis: QueryAnalysis,
    residual: Optional[Expr],
) -> str:
    """Display form of the spatial query shipped in the plan."""
    info = record.info
    query = Query(
        items=(
            SelectItem(ColumnRef(alias, info.object_id_column)),
            SelectItem(ColumnRef(alias, info.ra_column)),
            SelectItem(ColumnRef(alias, info.dec_column)),
        ),
        tables=(TableRef(None, table, alias),),
        where=_where_with_area(analysis, residual),
    )
    return to_sql(query)
