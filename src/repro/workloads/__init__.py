"""Synthetic sky-survey workloads.

The published prototype federated the real SDSS, 2MASS and FIRST archives.
Those proprietary-scale datasets are replaced by a controlled synthetic
sky: true astronomical bodies are sampled in a cap, and each survey
"observes" a body with its own detection rate and scatters the measured
position with its own circular Gaussian error — exactly the measurement
model the paper's XMATCH semantics assume. Because generation keeps the
object-id -> body-id ground truth, match precision/recall is measurable.
"""

from repro.workloads.skysim import (
    SkyField,
    SurveySpec,
    TrueBody,
    generate_bodies,
    observe_survey,
)

__all__ = [
    "SkyField",
    "SurveySpec",
    "TrueBody",
    "generate_bodies",
    "observe_survey",
]
