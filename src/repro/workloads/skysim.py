"""Sky simulation: true bodies and per-survey observations."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.schema import Column
from repro.db.types import ColumnType
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.random import perturb_gaussian, random_in_cap
from repro.sphere.vector import Vec3
from repro.units import arcsec_to_rad

OBJECT_TYPES = ("GALAXY", "STAR", "QSO")
TYPE_WEIGHTS = (0.70, 0.25, 0.05)


@dataclass(frozen=True)
class SkyField:
    """The patch of sky a simulation populates."""

    center_ra_deg: float = 185.0
    center_dec_deg: float = -0.5
    radius_arcsec: float = 3600.0  # 1 degree

    @property
    def center(self) -> Vec3:
        """Unit vector of the field center."""
        return radec_to_vector(self.center_ra_deg, self.center_dec_deg)

    @property
    def radius_rad(self) -> float:
        """Field radius in radians."""
        return arcsec_to_rad(self.radius_arcsec)


@dataclass(frozen=True)
class TrueBody:
    """One real astronomical body (the ground truth)."""

    body_id: int
    position: Vec3
    object_type: str
    fluxes: Dict[str, float]  # per band


@dataclass(frozen=True)
class SurveySpec:
    """One survey's instrument model and schema personality."""

    archive: str
    sigma_arcsec: float
    detection_rate: float
    primary_table: str
    object_id_column: str = "object_id"
    ra_column: str = "ra"
    dec_column: str = "dec"
    bands: Tuple[str, ...] = ("i",)
    has_type: bool = True
    dialect: str = "ansi"
    flux_offset: float = 0.0  # systematic per-survey flux shift
    flux_noise: float = 0.1
    #: Sky coverage; None = all sky. Real surveys cover footprints (SDSS
    #: imaged about a quarter of the sky), so bodies outside are never
    #: observed regardless of detection_rate.
    footprint: Optional["SkyField"] = None

    def columns(self) -> List[Column]:
        """The primary table's column list."""
        cols = [
            Column(self.object_id_column, ColumnType.INT, nullable=False),
            Column(self.ra_column, ColumnType.FLOAT, nullable=False),
            Column(self.dec_column, ColumnType.FLOAT, nullable=False),
        ]
        if self.has_type:
            cols.append(Column("type", ColumnType.STRING, nullable=False))
        cols.extend(
            Column(f"{band}_flux", ColumnType.FLOAT) for band in self.bands
        )
        return cols


def generate_bodies(
    field: SkyField, n_bodies: int, seed: int, bands: Sequence[str] = ("u", "g", "r", "i", "z", "j", "h", "k")
) -> List[TrueBody]:
    """Sample true bodies uniformly in the field."""
    rng = random.Random(seed)
    bodies: List[TrueBody] = []
    for body_id in range(1, n_bodies + 1):
        position = random_in_cap(rng, field.center, field.radius_rad)
        object_type = rng.choices(OBJECT_TYPES, weights=TYPE_WEIGHTS, k=1)[0]
        base = rng.uniform(12.0, 22.0)
        fluxes = {
            band: base + rng.uniform(-1.5, 1.5) for band in bands
        }
        bodies.append(TrueBody(body_id, position, object_type, fluxes))
    return bodies


@dataclass
class SurveyObservation:
    """One survey's view of the sky, plus the ground-truth mapping."""

    rows: List[Dict[str, Any]] = field(default_factory=list)
    truth: Dict[int, int] = field(default_factory=dict)  # object_id -> body_id


def observe_survey(
    survey: SurveySpec, bodies: Sequence[TrueBody], seed: int
) -> SurveyObservation:
    """Produce the survey's primary-table rows for the given true sky.

    Each body is detected with ``detection_rate``; the measured position is
    the true position scattered by the survey's circular Gaussian sigma
    (the paper's error model), and per-band fluxes get survey-systematic
    offsets plus noise.
    """
    # zlib.crc32 is stable across processes (str.__hash__ is randomized).
    import zlib

    rng = random.Random(seed ^ zlib.crc32(survey.archive.encode("utf-8")))
    sigma_rad = arcsec_to_rad(survey.sigma_arcsec)
    observation = SurveyObservation()
    object_id = 0
    from repro.sphere.distance import angular_separation

    for body in bodies:
        if survey.footprint is not None and angular_separation(
            body.position, survey.footprint.center
        ) > survey.footprint.radius_rad:
            continue
        if rng.random() >= survey.detection_rate:
            continue
        object_id += 1
        measured = perturb_gaussian(rng, body.position, sigma_rad)
        ra, dec = vector_to_radec(measured)
        row: Dict[str, Any] = {
            survey.object_id_column: object_id,
            survey.ra_column: ra,
            survey.dec_column: dec,
        }
        if survey.has_type:
            row["type"] = body.object_type
        for band in survey.bands:
            base = body.fluxes.get(band, 18.0)
            row[f"{band}_flux"] = (
                base + survey.flux_offset + rng.gauss(0.0, survey.flux_noise)
            )
        observation.rows.append(row)
        observation.truth[object_id] = body.body_id
    return observation
