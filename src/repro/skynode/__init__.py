"""SkyNodes: the federation's autonomous archives.

A SkyNode (paper Section 5.1) is an archive database plus a wrapper that
hides its DBMS specifics, exposing four Web services: **Information**
(astronomy constants: positional error sigma, primary table and column
names), **Meta-data** (full schema), **Query** (general SQL, used for the
Portal's performance queries), and **Cross match** (one step of the
federated spatial join's daisy chain).
"""

from repro.skynode.wrapper import ArchiveInfo, ArchiveWrapper
from repro.skynode.node import SkyNode

__all__ = ["ArchiveInfo", "ArchiveWrapper", "SkyNode"]
