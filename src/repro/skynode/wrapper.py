"""The database wrapper: a uniform view over a heterogeneous archive.

"Each SkyNode also implements services that act as wrappers and hide its
DBMS and other platform specific details. This presents a uniform view to
the Portal." The wrapper knows the archive's dialect, renders every query
in it (the engine consumes the AST; the rendered text is the statement an
external DBMS would have received, kept in a log for inspection), and
translates schema/metadata into the wire structs the Portal catalogs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.db.engine import Database, ResultSet
from repro.db.types import ColumnType
from repro.errors import SchemaError
from repro.soap.encoding import WireRowSet
from repro.sql.ast import Query
from repro.sql.parser import parse_query
from repro.sql.printer import ANSI, DIALECTS, to_sql

#: Engine column types -> SOAP wire typecodes.
WIRE_TYPE: Dict[ColumnType, str] = {
    ColumnType.INT: "int",
    ColumnType.FLOAT: "double",
    ColumnType.STRING: "string",
    ColumnType.BOOL: "boolean",
}


@dataclass(frozen=True)
class ArchiveInfo:
    """The astronomy-specific constants the Information service publishes.

    Exactly what the paper lists: "certain astronomy specific constants of
    that SkyNode such as the object position estimation errors, the name of
    primary table that stores the position of objects, etc."
    """

    archive: str
    sigma_arcsec: float
    primary_table: str
    object_id_column: str
    ra_column: str
    dec_column: str
    #: Sky-coverage footprint (circular); None means all sky.
    footprint_ra_deg: Optional[float] = None
    footprint_dec_deg: Optional[float] = None
    footprint_radius_arcsec: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        """Encode as a SOAP struct."""
        return {
            "archive": self.archive,
            "sigma_arcsec": self.sigma_arcsec,
            "primary_table": self.primary_table,
            "object_id_column": self.object_id_column,
            "ra_column": self.ra_column,
            "dec_column": self.dec_column,
            "footprint_ra_deg": self.footprint_ra_deg,
            "footprint_dec_deg": self.footprint_dec_deg,
            "footprint_radius_arcsec": self.footprint_radius_arcsec,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "ArchiveInfo":
        """Decode from a SOAP struct."""

        def opt(key: str) -> Optional[float]:
            value = data.get(key)
            return float(value) if value is not None else None

        return cls(
            archive=str(data["archive"]),
            sigma_arcsec=float(data["sigma_arcsec"]),
            primary_table=str(data["primary_table"]),
            object_id_column=str(data["object_id_column"]),
            ra_column=str(data["ra_column"]),
            dec_column=str(data["dec_column"]),
            footprint_ra_deg=opt("footprint_ra_deg"),
            footprint_dec_deg=opt("footprint_dec_deg"),
            footprint_radius_arcsec=opt("footprint_radius_arcsec"),
        )

    def covers(self, ra_deg: float, dec_deg: float) -> bool:
        """True if a sky position lies inside this archive's footprint."""
        if self.footprint_ra_deg is None:
            return True
        from repro.sphere.coords import radec_to_vector
        from repro.sphere.distance import separation_arcsec

        return separation_arcsec(
            radec_to_vector(ra_deg, dec_deg),
            radec_to_vector(self.footprint_ra_deg, self.footprint_dec_deg),
        ) <= (self.footprint_radius_arcsec or 0.0)


class ArchiveWrapper:
    """Binds an :class:`ArchiveInfo` to a :class:`Database` instance."""

    def __init__(self, db: Database, info: ArchiveInfo) -> None:
        primary = db.table(info.primary_table)
        for column in (info.object_id_column, info.ra_column, info.dec_column):
            primary.schema.column_index(column)  # raises SchemaError if absent
        if primary.spatial is None:
            raise SchemaError(
                f"primary table {info.primary_table!r} of archive "
                f"{info.archive!r} must be spatially indexed"
            )
        self.db = db
        self.info = info
        self.dialect = DIALECTS.get(db.dialect, ANSI)
        #: Statements rendered in this archive's dialect (most recent last).
        self.statement_log: List[str] = []

    def execute_sql(self, sql: str) -> ResultSet:
        """Parse, render in the local dialect (logged), and execute."""
        query = parse_query(sql)
        return self.execute_ast(query)

    def execute_ast(
        self, query: Query, *, epoch: Optional[int] = None
    ) -> ResultSet:
        """Execute a parsed query, logging its dialect rendering.

        ``epoch`` pins the read to a committed snapshot (see
        :meth:`repro.db.engine.Database.execute`).
        """
        self.statement_log.append(to_sql(query, self.dialect))
        return self.db.execute(query, epoch=epoch)

    def schema_wire(self) -> Dict[str, Any]:
        """The full schema as the Meta-data service's wire struct."""
        tables = []
        for table_name in self.db.table_names():
            table = self.db.table(table_name)
            tables.append(
                {
                    "name": table.name,
                    "columns": [
                        {
                            "name": col.name,
                            "type": WIRE_TYPE[col.ctype],
                            "nullable": col.nullable,
                        }
                        for col in table.schema.columns
                    ],
                }
            )
        return {"archive": self.info.archive, "tables": tables}

    def info_wire(self) -> Dict[str, Any]:
        """The Information service's wire struct (constants + row count)."""
        wire = self.info.to_wire()
        wire["object_count"] = self.db.count_rows(self.info.primary_table)
        wire["dialect"] = self.dialect.name
        wire["committed_epoch"] = self.db.committed_epoch
        wire["oldest_epoch"] = self.db.oldest_epoch
        return wire

    def resultset_to_wire(self, result: ResultSet, query: Optional[Query] = None
                          ) -> WireRowSet:
        """Convert an engine result to the SOAP rowset format.

        Column typecodes come from the queried table's schema when the
        output column is a plain column reference; otherwise they are
        inferred from the first non-NULL value (defaulting to string).
        """
        codes: List[str] = []
        for i, name in enumerate(result.columns):
            code = self._schema_typecode(name, query)
            if code is None:
                code = self._infer_typecode(result, i)
            codes.append(code)
        normalized_rows = [
            tuple(
                float(v) if codes[i] == "double" and isinstance(v, int)
                and not isinstance(v, bool) else v
                for i, v in enumerate(row)
            )
            for row in result.rows
        ]
        return WireRowSet(list(zip(result.columns, codes)), normalized_rows)

    def _schema_typecode(self, column_label: str, query: Optional[Query]) -> Optional[str]:
        if query is None or len(query.tables) != 1:
            return None
        table_name = query.tables[0].table
        if not self.db.has_table(table_name):
            return None
        schema = self.db.table(table_name).schema
        bare = column_label.split(".", 1)[-1]
        if schema.has_column(bare):
            return WIRE_TYPE[schema.column(bare).ctype]
        return None

    @staticmethod
    def _infer_typecode(result: ResultSet, index: int) -> str:
        for row in result.rows:
            value = row[index]
            if value is None:
                continue
            if isinstance(value, bool):
                return "boolean"
            if isinstance(value, int):
                return "int"
            if isinstance(value, float):
                return "double"
            return "string"
        return "string"
