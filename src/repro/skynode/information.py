"""The Information service: astronomy constants of one archive."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.services.framework import WebService
from repro.skynode.wrapper import ArchiveWrapper


class InformationService(WebService):
    """Publishes the archive's constants (sigma, primary table, columns).

    The Portal calls this once at registration: "Once the Portal
    successfully recognizes a SkyNode, it calls the Information service to
    collect certain astronomy specific constants of that SkyNode."
    """

    def __init__(
        self, wrapper: ArchiveWrapper, *, parser_memory_limit: Optional[int] = None
    ) -> None:
        super().__init__(
            f"{wrapper.info.archive}Information",
            parser_memory_limit=parser_memory_limit,
        )
        self._wrapper = wrapper
        self.register(
            "GetInfo",
            self._get_info,
            returns="struct",
            doc="Positional error sigma, primary table/columns, object count.",
        )
        self.register(
            "IsAlive",
            self._is_alive,
            returns="boolean",
            doc="Lightweight health probe the Portal consults before planning.",
        )

    def _get_info(self) -> Dict[str, Any]:
        return self._wrapper.info_wire()

    def _is_alive(self) -> bool:
        return True
