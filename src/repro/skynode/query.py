"""The Query service: general-purpose SQL against one archive."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.services.chunked import ChunkedSender
from repro.services.framework import WebService
from repro.skynode.wrapper import ArchiveWrapper
from repro.soap.encoding import WireRowSet
from repro.sql.parser import parse_query


class QueryService(WebService):
    """Executes single-archive SQL, returning a rowset.

    "The Query service is a general-purpose database querying service. In
    our case, it is used by the Portal to answer performance queries" —
    the count-star probes that both size the plan and warm the cache.

    ``ExecuteQueryChunked`` serves large results the same way the chain
    does: pull-based federations hit the very same XML parser ceiling, so
    they need the very same workaround.
    """

    def __init__(
        self,
        wrapper: ArchiveWrapper,
        *,
        parser_memory_limit: Optional[int] = None,
        chunk_budget_bytes: Optional[int] = None,
        processing_charge: Optional[Callable[[int], None]] = None,
    ) -> None:
        super().__init__(
            f"{wrapper.info.archive}Query",
            parser_memory_limit=parser_memory_limit,
        )
        self._wrapper = wrapper
        self._processing_charge = processing_charge
        self.sender = ChunkedSender(
            f"{wrapper.info.archive}-q", chunk_budget_bytes
        )
        self.register(
            "ExecuteQuery",
            self._execute,
            params=(("sql", "string"),),
            returns="rowset",
            doc="Run a single-table query in the SkyQuery SQL dialect.",
        )
        self.register(
            "ExecuteQueryPinned",
            self._execute_pinned,
            params=(("sql", "string"), ("epoch", "int")),
            returns="struct",
            doc=(
                "Run a query pinned to a snapshot epoch; -1 pins the "
                "current committed epoch, which is echoed back."
            ),
        )
        self.register(
            "ExecuteQueryChunked",
            self._execute_chunked,
            params=(("sql", "string"),),
            returns="struct",
            doc="Run a query, chunking large results for the caller.",
        )
        self.register(
            "FetchChunk",
            self.sender.fetch_chunk,
            params=(("transfer_id", "string"), ("seq", "int")),
            returns="rowset",
            doc="Fetch one chunk of a chunked query result.",
        )
        self.register(
            "AbortTransfer",
            self._abort_transfer,
            params=(("transfer_id", "string"),),
            returns="struct",
            doc="Free an abandoned chunked transfer before its TTL.",
        )

    def _run(self, sql: str, epoch: Optional[int] = None) -> WireRowSet:
        query = parse_query(sql)
        result = self._wrapper.execute_ast(query, epoch=epoch)
        if self._processing_charge is not None:
            self._processing_charge(result.stats.rows_examined)
        return self._wrapper.resultset_to_wire(result, query)

    def _execute(self, sql: str) -> WireRowSet:
        return self._run(sql)

    def _execute_pinned(self, sql: str, epoch: int = -1) -> Dict[str, Any]:
        """Run a query at a pinned epoch, echoing the epoch served.

        The Portal's count-star probes use ``epoch = -1`` ("whatever is
        committed right now") and record the echoed epoch into the plan,
        so every later hop of the chain reads the same snapshot the plan
        was sized against.
        """
        pinned = self._wrapper.db.committed_epoch if epoch < 0 else int(epoch)
        return {"rows": self._run(sql, epoch=pinned), "epoch": pinned}

    def _execute_chunked(self, sql: str) -> Dict[str, Any]:
        return self.sender.respond(self._run(sql))

    def _abort_transfer(self, transfer_id: str) -> Dict[str, Any]:
        return {"aborted": self.sender.abort(str(transfer_id))}
