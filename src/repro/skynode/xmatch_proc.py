"""The cross-match stored procedure.

Paper Section 5.3: "a stored procedure encoding the cross match algorithm
uses this temporary table and the primary table at this SkyNode to identify
matching objects... This procedure, in fact, computes an implicit spatial
join."

The procedure reads the incoming partial tuples from a temp table (seq +
cumulative values), range-searches the primary table around each tuple's
best position via a spatial index, applies the archive's local predicates
and the query's AREA clause to every candidate, runs the chi-squared test,
and returns — per incoming tuple — the candidates that keep the tuple
alive. All row touches go through the engine's buffer pool so processing
costs (and cache warming) are observable.

Two orthogonal choices select the body:

* ``engine`` picks the *spatial index* that narrows each tuple's search:
  ``htm`` (trixel cover ranges, the reference oracle) or ``zone``
  (declination-zone sorted-merge windows).
* ``kernel`` picks the *arithmetic style*: ``vectorized`` (set-at-a-time
  numpy, the default) or ``scalar`` (the per-tuple/per-candidate Python
  loop kept as the testing oracle).

All four combinations are interchangeable by construction: whatever the
index returns is only a superset hint — every engine then keeps exactly
the rows inside the tuple's search cap (one cosine test per row against
the index-stored unit vectors, identical float64 operations everywhere)
and visits them in ascending row-position order. The examined row set,
the buffer-pool charges, the cost stats, and the matches — and therefore
the node stats and wire traffic of a federated query — are byte-identical
across engines and kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.engine import Database
from repro.db.expr import RowContext, evaluate, is_true
from repro.db.indexes import (
    batch_spatial_probe,
    batch_zone_probe,
    spatial_probe,
    zone_probe,
)
from repro.db.table import Table
from repro.errors import GeometryError, QueryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.regions import Cap, Region
from repro.sql.ast import Expr
from repro.units import arcsec_to_rad
from repro.xmatch import kernel as xkernel
from repro.xmatch.chi2 import Accumulator
from repro.xmatch.kernel import _COS_SLACK
from repro.xmatch.tuples import LocalObject

PROCEDURE_NAME = "sp_xmatch"

KERNEL_VECTORIZED = "vectorized"
KERNEL_SCALAR = "scalar"
KERNELS = (KERNEL_VECTORIZED, KERNEL_SCALAR)

MATCH_ENGINE_HTM = "htm"
MATCH_ENGINE_ZONE = "zone"
MATCH_ENGINES = (MATCH_ENGINE_HTM, MATCH_ENGINE_ZONE)


def _cap_bounds(radius: float) -> Tuple[float, float]:
    """The exact-filter cosine threshold and effective probe radius.

    ``cos_r`` is the broadcast kernel's boundary-slackened cosine of the
    search radius: a candidate row is *in the cap* iff its index-stored
    unit vector dots with the tuple's center at or above it. ``r_eff``
    (``acos`` of that threshold) is the radius whose ball contains every
    such row — the index is probed with it so no engine's superset can
    miss a row another engine would keep. Evaluated per tuple with the
    same scalar ``math`` calls in every kernel, so the admitted set is
    bitwise engine- and kernel-independent.
    """
    cos_r = math.cos(min(radius, math.pi)) - _COS_SLACK
    return cos_r, math.acos(max(-1.0, cos_r))


@dataclass
class XMatchProcStats:
    """Cost counters of one procedure invocation."""

    tuples_in: int = 0
    candidates_tested: int = 0
    rows_examined: int = 0
    matches_found: int = 0


@dataclass
class XMatchProcResult:
    """Matches per incoming tuple sequence number, plus cost stats."""

    matches: Dict[int, List[LocalObject]] = field(default_factory=dict)
    stats: XMatchProcStats = field(default_factory=XMatchProcStats)


def register_xmatch_procedure(db: Database) -> None:
    """Install ``sp_xmatch`` on an archive database."""
    db.register_procedure(PROCEDURE_NAME, _sp_xmatch)


def _sp_xmatch(
    db: Database,
    *,
    temp_table: str,
    primary_table: str,
    id_column: str,
    ra_column: str,
    dec_column: str,
    alias: str,
    sigma_arcsec: float,
    threshold: float,
    area: Optional[Region] = None,
    residual: Optional[Expr] = None,
    attr_columns: Sequence[str] = (),
    kernel: str = KERNEL_VECTORIZED,
    engine: str = MATCH_ENGINE_HTM,
    epoch: Optional[int] = None,
) -> XMatchProcResult:
    """The stored procedure body (invoked via ``db.call_procedure``).

    ``engine`` picks the spatial index (``htm`` or ``zone``); results,
    stats, and buffer traffic are byte-identical either way. ``epoch``
    pins the primary-table scan to a committed snapshot: rows ingested
    after that epoch are invisible to the probe, so a chain that pinned
    its epochs at plan time matches against one consistent version even
    while live ingest commits the next.
    """
    if kernel not in KERNELS:
        raise QueryError(
            f"unknown xmatch kernel {kernel!r}; expected one of {KERNELS}"
        )
    if engine not in MATCH_ENGINES:
        raise QueryError(
            f"unknown match engine {engine!r}; expected one of {MATCH_ENGINES}"
        )
    temp = db.table(temp_table)
    primary = db.table(primary_table)
    if primary.spatial is None:
        raise QueryError(f"primary table {primary_table!r} has no spatial index")
    limit = (
        None if epoch is None
        else primary.visible_count(db.resolve_epoch(epoch))
    )
    run = _sp_xmatch_vectorized if kernel == KERNEL_VECTORIZED else _sp_xmatch_scalar
    return run(
        db,
        temp,
        primary,
        id_column=id_column,
        ra_column=ra_column,
        dec_column=dec_column,
        alias=alias,
        sigma_arcsec=sigma_arcsec,
        threshold=threshold,
        area=area,
        residual=residual,
        attr_columns=attr_columns,
        engine=engine,
        limit=limit,
    )


def _sp_xmatch_scalar(
    db: Database,
    temp: Table,
    primary: Table,
    *,
    id_column: str,
    ra_column: str,
    dec_column: str,
    alias: str,
    sigma_arcsec: float,
    threshold: float,
    area: Optional[Region],
    residual: Optional[Expr],
    attr_columns: Sequence[str],
    engine: str = MATCH_ENGINE_HTM,
    limit: Optional[int] = None,
) -> XMatchProcResult:
    """The reference per-tuple/per-candidate loop (the testing oracle)."""
    sigma_rad = arcsec_to_rad(sigma_arcsec)
    threshold_sq = threshold * threshold

    seq_idx = temp.schema.column_index("seq")
    acc_idx = [temp.schema.column_index(c) for c in ("a", "ax", "ay", "az")]
    id_idx = primary.schema.column_index(id_column)
    ra_idx = primary.schema.column_index(ra_column)
    dec_idx = primary.schema.column_index(dec_column)
    attr_idx = [(name, primary.schema.column_index(name)) for name in attr_columns]

    result = XMatchProcResult()
    for pos in temp.iter_positions():
        db.buffer.access(temp.name, temp.page_of(pos))
        row = temp.row(pos)
        seq = row[seq_idx]
        acc = Accumulator(*(row[i] for i in acc_idx))
        result.stats.tuples_in += 1

        center = acc.best_position()
        radius = acc.search_radius(sigma_rad, threshold)
        cos_r, r_eff = _cap_bounds(radius)
        cx, cy, cz = center
        if engine == MATCH_ENGINE_ZONE:
            window_rows = zone_probe(primary, center, r_eff, limit=limit)
        else:
            probe = spatial_probe(primary, Cap(center, r_eff), limit=limit)
            window_rows = probe.exact + probe.candidates
        # The index window is only a superset hint; the examined set is
        # the rows inside the cap, visited in row-position order — the
        # engine-independent contract every kernel shares.
        candidate_rows = []
        for window_pos in window_rows:
            px, py, pz = primary.position_of(window_pos)
            if px * cx + py * cy + pz * cz >= cos_r:
                candidate_rows.append(window_pos)
        candidate_rows.sort()
        matched: List[LocalObject] = []
        for candidate_pos in candidate_rows:
            db.buffer.access(primary.name, primary.page_of(candidate_pos))
            result.stats.rows_examined += 1
            crow = primary.row(candidate_pos)
            position = radec_to_vector(crow[ra_idx], crow[dec_idx])
            result.stats.candidates_tested += 1
            if area is not None and not area.contains(position):
                continue
            if residual is not None:
                ctx = RowContext(db.constants)
                for col, value in zip(primary.schema.columns, crow):
                    ctx.bind(alias, col.name, value)
                if not is_true(evaluate(residual, ctx)):
                    continue
            if acc.with_observation(position, sigma_rad).chi2() > threshold_sq:
                continue
            matched.append(
                LocalObject(
                    object_id=crow[id_idx],
                    position=position,
                    attributes={name: crow[i] for name, i in attr_idx},
                )
            )
        if matched:
            result.matches[seq] = matched
            result.stats.matches_found += len(matched)
    return result


def _primary_positions(
    primary: Table, ra_column: str, dec_column: str
) -> np.ndarray:
    """The primary table's columnar position matrix.

    Normally the cached :meth:`Table.position_matrix` (the procedure is
    called with the table's own spatial columns); if a caller names other
    position columns, fall back to materializing them row by row exactly
    as the scalar loop would read them.
    """
    spec = primary.spatial
    assert spec is not None
    if (
        ra_column.lower() == spec.ra_column.lower()
        and dec_column.lower() == spec.dec_column.lower()
    ):
        return primary.position_matrix()
    ra_idx = primary.schema.column_index(ra_column)
    dec_idx = primary.schema.column_index(dec_column)
    matrix = np.empty((len(primary), 3), dtype=np.float64)
    for pos in primary.iter_positions():
        row = primary.row(pos)
        matrix[pos] = radec_to_vector(row[ra_idx], row[dec_idx])
    return matrix


def _sp_xmatch_vectorized(
    db: Database,
    temp: Table,
    primary: Table,
    *,
    id_column: str,
    ra_column: str,
    dec_column: str,
    alias: str,
    sigma_arcsec: float,
    threshold: float,
    area: Optional[Region],
    residual: Optional[Expr],
    attr_columns: Sequence[str],
    engine: str = MATCH_ENGINE_HTM,
    limit: Optional[int] = None,
) -> XMatchProcResult:
    """Set-at-a-time body: batched probes + one broadcasted chi-squared pass.

    Charges the same buffer accesses in the same order as the scalar loop
    (temp pages tuple by tuple, then one primary-page touch per (tuple,
    candidate) pair) and produces identical matches and stats — only the
    per-pair Python arithmetic is replaced by numpy array passes.
    """
    sigma_rad = arcsec_to_rad(sigma_arcsec)
    threshold_sq = threshold * threshold

    seq_idx = temp.schema.column_index("seq")
    acc_idx = [temp.schema.column_index(c) for c in ("a", "ax", "ay", "az")]
    id_idx = primary.schema.column_index(id_column)
    attr_idx = [(name, primary.schema.column_index(name)) for name in attr_columns]

    result = XMatchProcResult()

    # Stage 1: read the incoming tuples into columnar accumulator arrays
    # (same temp-table buffer charges as the scalar loop).
    seqs: List[int] = []
    acc_rows: List[List[float]] = []
    for pos in temp.iter_positions():
        db.buffer.access(temp.name, temp.page_of(pos))
        row = temp.row(pos)
        seqs.append(row[seq_idx])
        acc_rows.append([row[i] for i in acc_idx])
    result.stats.tuples_in = len(seqs)
    if not seqs:
        return result

    stacked = np.asarray(acc_rows, dtype=np.float64)
    a = np.ascontiguousarray(stacked[:, 0])
    avec = np.ascontiguousarray(stacked[:, 1:])
    try:
        centers = xkernel.best_positions(a, avec)
    except GeometryError as exc:
        raise GeometryError(f"{exc} [temp table {temp.name!r}]") from exc
    radii = xkernel.search_radii(a, sigma_rad, threshold)
    # Per-tuple cap bounds via the same scalar math calls the scalar
    # kernel makes, so the admitted candidate sets agree bitwise.
    cap_bounds = [_cap_bounds(r) for r in radii.tolist()]

    # Stage 2: one batched index probe over every tuple's effective cap,
    # then the exact cosine filter that defines the examined row set.
    if engine == MATCH_ENGINE_ZONE:
        r_eff_arr = np.asarray([r_eff for _, r_eff in cap_bounds])
        windows = batch_zone_probe(primary, centers, r_eff_arr, limit=limit)
    else:
        caps = [
            Cap(
                (float(centers[i, 0]), float(centers[i, 1]), float(centers[i, 2])),
                cap_bounds[i][1],
            )
            for i in range(len(seqs))
        ]
        probes = batch_spatial_probe(primary, caps, limit=limit)
        windows = [
            np.asarray(probe.exact + probe.candidates, dtype=np.int64)
            for probe in probes
        ]
    index_positions = primary.position_matrix()
    tuple_rows: List[np.ndarray] = []
    for i, window in enumerate(windows):
        if window.size:
            cx = float(centers[i, 0])
            cy = float(centers[i, 1])
            cz = float(centers[i, 2])
            dots = (
                index_positions[window, 0] * cx
                + index_positions[window, 1] * cy
                + index_positions[window, 2] * cz
            )
            tuple_rows.append(np.sort(window[dots >= cap_bounds[i][0]]))
        else:
            tuple_rows.append(window)

    # Stage 3: flatten the (tuple, candidate) pairs, charging the scalar
    # loop's per-pair buffer access and filtering on AREA/residual per
    # *unique* candidate row (both predicates are row-local, so the
    # verdict is memoized across tuples).
    row_verdict: Dict[int, bool] = {}
    positions = _primary_positions(primary, ra_column, dec_column)

    def row_passes(row_pos: int) -> bool:
        verdict = row_verdict.get(row_pos)
        if verdict is None:
            position = (
                float(positions[row_pos, 0]),
                float(positions[row_pos, 1]),
                float(positions[row_pos, 2]),
            )
            if area is not None and not area.contains(position):
                verdict = False
            elif residual is not None:
                ctx = RowContext(db.constants)
                for col, value in zip(primary.schema.columns, primary.row(row_pos)):
                    ctx.bind(alias, col.name, value)
                verdict = is_true(evaluate(residual, ctx))
            else:
                verdict = True
            row_verdict[row_pos] = verdict
        return verdict

    access = db.buffer.access
    primary_name = primary.name
    page_size = primary.page_size
    pair_tuple: List[int] = []
    pair_row: List[int] = []
    for i, rows in enumerate(tuple_rows):
        candidate_rows = rows.tolist()
        for candidate_pos in candidate_rows:
            access(primary_name, candidate_pos // page_size)
        result.stats.rows_examined += len(candidate_rows)
        result.stats.candidates_tested += len(candidate_rows)
        for candidate_pos in candidate_rows:
            if row_passes(candidate_pos):
                pair_tuple.append(i)
                pair_row.append(candidate_pos)
    if not pair_row:
        return result

    # Stage 4: the broadcasted chi-squared pass over all surviving pairs.
    ti = np.asarray(pair_tuple, dtype=np.intp)
    ri = np.asarray(pair_row, dtype=np.intp)
    _, _, chi2 = xkernel.extend_pairs(a[ti], avec[ti], positions[ri], sigma_rad)
    accepted = chi2 <= threshold_sq

    for k in np.nonzero(accepted)[0]:
        i = pair_tuple[k]
        row_pos = pair_row[k]
        crow = primary.row(row_pos)
        matched = result.matches.setdefault(seqs[i], [])
        matched.append(
            LocalObject(
                object_id=crow[id_idx],
                position=(
                    float(positions[row_pos, 0]),
                    float(positions[row_pos, 1]),
                    float(positions[row_pos, 2]),
                ),
                attributes={name: crow[j] for name, j in attr_idx},
            )
        )
        result.stats.matches_found += 1
    return result
