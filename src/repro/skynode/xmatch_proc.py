"""The cross-match stored procedure.

Paper Section 5.3: "a stored procedure encoding the cross match algorithm
uses this temporary table and the primary table at this SkyNode to identify
matching objects... This procedure, in fact, computes an implicit spatial
join."

The procedure reads the incoming partial tuples from a temp table (seq +
cumulative values), range-searches the primary table around each tuple's
best position via the HTM index, applies the archive's local predicates
and the query's AREA clause to every candidate, runs the chi-squared test,
and returns — per incoming tuple — the candidates that keep the tuple
alive. All row touches go through the engine's buffer pool so processing
costs (and cache warming) are observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.db.engine import Database
from repro.db.expr import RowContext, evaluate, is_true
from repro.db.indexes import spatial_probe
from repro.errors import QueryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.regions import Cap, Region
from repro.sql.ast import Expr
from repro.units import arcsec_to_rad
from repro.xmatch.chi2 import Accumulator
from repro.xmatch.tuples import LocalObject

PROCEDURE_NAME = "sp_xmatch"


@dataclass
class XMatchProcStats:
    """Cost counters of one procedure invocation."""

    tuples_in: int = 0
    candidates_tested: int = 0
    rows_examined: int = 0
    matches_found: int = 0


@dataclass
class XMatchProcResult:
    """Matches per incoming tuple sequence number, plus cost stats."""

    matches: Dict[int, List[LocalObject]] = field(default_factory=dict)
    stats: XMatchProcStats = field(default_factory=XMatchProcStats)


def register_xmatch_procedure(db: Database) -> None:
    """Install ``sp_xmatch`` on an archive database."""
    db.register_procedure(PROCEDURE_NAME, _sp_xmatch)


def _sp_xmatch(
    db: Database,
    *,
    temp_table: str,
    primary_table: str,
    id_column: str,
    ra_column: str,
    dec_column: str,
    alias: str,
    sigma_arcsec: float,
    threshold: float,
    area: Optional[Region] = None,
    residual: Optional[Expr] = None,
    attr_columns: Sequence[str] = (),
) -> XMatchProcResult:
    """The stored procedure body (invoked via ``db.call_procedure``)."""
    temp = db.table(temp_table)
    primary = db.table(primary_table)
    if primary.spatial is None:
        raise QueryError(f"primary table {primary_table!r} has no spatial index")
    sigma_rad = arcsec_to_rad(sigma_arcsec)
    threshold_sq = threshold * threshold

    seq_idx = temp.schema.column_index("seq")
    acc_idx = [temp.schema.column_index(c) for c in ("a", "ax", "ay", "az")]
    id_idx = primary.schema.column_index(id_column)
    ra_idx = primary.schema.column_index(ra_column)
    dec_idx = primary.schema.column_index(dec_column)
    attr_idx = [(name, primary.schema.column_index(name)) for name in attr_columns]

    result = XMatchProcResult()
    for pos in temp.iter_positions():
        db.buffer.access(temp.name, temp.page_of(pos))
        row = temp.row(pos)
        seq = row[seq_idx]
        acc = Accumulator(*(row[i] for i in acc_idx))
        result.stats.tuples_in += 1

        center = acc.best_position()
        radius = acc.search_radius(sigma_rad, threshold)
        probe = spatial_probe(primary, Cap(center, radius))
        matched: List[LocalObject] = []
        for candidate_pos in probe.exact + probe.candidates:
            db.buffer.access(primary.name, primary.page_of(candidate_pos))
            result.stats.rows_examined += 1
            crow = primary.row(candidate_pos)
            position = radec_to_vector(crow[ra_idx], crow[dec_idx])
            result.stats.candidates_tested += 1
            if area is not None and not area.contains(position):
                continue
            if residual is not None:
                ctx = RowContext(db.constants)
                for col, value in zip(primary.schema.columns, crow):
                    ctx.bind(alias, col.name, value)
                if not is_true(evaluate(residual, ctx)):
                    continue
            if acc.with_observation(position, sigma_rad).chi2() > threshold_sq:
                continue
            matched.append(
                LocalObject(
                    object_id=crow[id_idx],
                    position=position,
                    attributes={name: crow[i] for name, i in attr_idx},
                )
            )
        if matched:
            result.matches[seq] = matched
            result.stats.matches_found += len(matched)
    return result
