"""The Meta-data service: the archive's full schema."""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.services.framework import WebService
from repro.skynode.wrapper import ArchiveWrapper


class MetadataService(WebService):
    """Provides complete schema information to the Portal.

    "The Meta-data service is responsible for providing complete schema
    information to the Portal, which the Portal catalogs."
    """

    def __init__(
        self, wrapper: ArchiveWrapper, *, parser_memory_limit: Optional[int] = None
    ) -> None:
        super().__init__(
            f"{wrapper.info.archive}Metadata",
            parser_memory_limit=parser_memory_limit,
        )
        self._wrapper = wrapper
        self.register(
            "GetSchema",
            self._get_schema,
            returns="struct",
            doc="All tables and their typed columns.",
        )

    def _get_schema(self) -> Dict[str, Any]:
        return self._wrapper.schema_wire()
