"""SkyNode assembly: database + wrapper + the four Web services + host."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.db.engine import Database
from repro.errors import RegistrationError
from repro.services.client import ServiceProxy
from repro.services.framework import ServiceHost
from repro.services.retry import BreakerRegistry, RetryPolicy
from repro.skynode.crossmatch import CrossMatchService
from repro.skynode.information import InformationService
from repro.skynode.metadata import MetadataService
from repro.skynode.query import QueryService
from repro.skynode.wrapper import ArchiveInfo, ArchiveWrapper
from repro.skynode.xmatch_proc import PROCEDURE_NAME, register_xmatch_procedure
from repro.soap.xmlparser import XMLParser
from repro.transport.network import SimulatedNetwork

#: The paper's prototype died parsing ~10 MB SOAP messages. With the default
#: 4x DOM expansion, a 40 MB parser budget reproduces that ceiling.
DEFAULT_PARSER_MEMORY_LIMIT = 40 * 1024 * 1024

SERVICE_PATHS = {
    "information": "/information",
    "metadata": "/metadata",
    "query": "/query",
    "crossmatch": "/crossmatch",
}


class SkyNode:
    """One autonomous archive participating in the federation."""

    def __init__(
        self,
        db: Database,
        info: ArchiveInfo,
        hostname: Optional[str] = None,
        *,
        parser_memory_limit: Optional[int] = DEFAULT_PARSER_MEMORY_LIMIT,
        parser_overhead_factor: float = 4.0,
        chunk_budget_bytes: Optional[int] = None,
        processing_seconds_per_row: float = 0.0,
        retry_policy: Optional[RetryPolicy] = None,
        xmatch_kernel: str = "vectorized",
        match_engine: str = "htm",
    ) -> None:
        self.wrapper = ArchiveWrapper(db, info)
        self.info = info
        self.hostname = hostname or f"{info.archive.lower()}.skyquery.net"
        #: Which sp_xmatch kernel this node's cross-match steps run:
        #: ``vectorized`` (numpy batch, the default) or ``scalar`` (the
        #: reference loop). Identical results either way.
        self.xmatch_kernel = xmatch_kernel
        #: Which spatial index narrows the cross-match search: ``htm``
        #: (trixel covers, the reference oracle) or ``zone`` (declination
        #: zones). Byte-identical results and stats either way.
        self.match_engine = match_engine
        if not db.has_procedure(PROCEDURE_NAME):
            register_xmatch_procedure(db)
        #: Parser for everything this node receives from its chain neighbour
        #: (the big partial-result messages); models the node's XML memory.
        self.parser = XMLParser(
            memory_limit_bytes=parser_memory_limit,
            overhead_factor=parser_overhead_factor,
        )
        self.information = InformationService(
            self.wrapper, parser_memory_limit=parser_memory_limit
        )
        self.metadata = MetadataService(
            self.wrapper, parser_memory_limit=parser_memory_limit
        )
        self.processing_seconds_per_row = processing_seconds_per_row
        self.query = QueryService(
            self.wrapper,
            parser_memory_limit=parser_memory_limit,
            chunk_budget_bytes=chunk_budget_bytes,
            processing_charge=self.charge_processing,
        )
        self.crossmatch = CrossMatchService(
            self,
            parser_memory_limit=parser_memory_limit,
            chunk_budget_bytes=chunk_budget_bytes,
        )
        self.host = ServiceHost(self.hostname)
        self.host.mount(SERVICE_PATHS["information"], self.information)
        self.host.mount(SERVICE_PATHS["metadata"], self.metadata)
        self.host.mount(SERVICE_PATHS["query"], self.query)
        self.host.mount(SERVICE_PATHS["crossmatch"], self.crossmatch)
        self.network: Optional[SimulatedNetwork] = None
        #: Set on a *coordinating* node whose table is split across spatial
        #: shard SkyNodes: its chain hops fan out to the shards instead of
        #: scanning locally (the local full copy stays the provisioning
        #: source and the single-archive/count-probe fallback).
        self.shard_set = None  # type: Optional[Any]
        self.transaction = None  # mounted on demand (extension service)
        self.ingest = None  # mounted on demand (live-ingest extension)
        #: Transaction-service URLs of this archive's mirrors; every
        #: epoch-advancing ingest commit fans out to all of them under 2PC.
        self.replica_transaction_urls: List[str] = []
        self._parser_memory_limit = parser_memory_limit
        #: Resilience for this node's outbound calls (chain hops, portal
        #: registration). None keeps the seed's single-shot behaviour.
        self.retry_policy = retry_policy
        self.breakers = (
            BreakerRegistry(metrics=self._current_metrics)
            if retry_policy is not None
            else None
        )

    def _current_metrics(self):
        return self.network.metrics if self.network is not None else None

    def enable_transactions(self) -> str:
        """Mount the Section 6 extension Transaction service; returns its URL.

        The four paper services stay the registration minimum; transactions
        are the opt-in extension for inter-archive data exchange.
        """
        if self.transaction is None:
            from repro.transactions.service import TransactionService

            self.transaction = TransactionService(
                self.wrapper,
                parser_memory_limit=self._parser_memory_limit,
            )
            self.host.mount("/transaction", self.transaction)
        return self.host.url_for("/transaction")

    def enable_ingest(
        self,
        *,
        keep_epochs: Optional[int] = 8,
        replica_transaction_urls: Optional[List[str]] = None,
    ) -> str:
        """Mount the live-ingest extension service; returns its URL.

        ``keep_epochs`` bounds how many past epochs stay pinnable after
        each commit (``None`` retains forever); ``replica_transaction_urls``
        lists the mirrors every epoch commit must reach atomically.
        """
        self.enable_transactions()
        if replica_transaction_urls is not None:
            self.replica_transaction_urls = list(replica_transaction_urls)
        self.transaction.keep_epochs = keep_epochs
        # After an epoch is GC'd, checkpoints and streams pinned to it can
        # never be read again — reap them the moment the epoch commits.
        self.transaction.on_epoch_commit = (
            lambda _epoch: self.crossmatch.reap_stale_epochs()
        )
        if self.ingest is None:
            from repro.ingest.service import IngestService

            self.ingest = IngestService(
                self, parser_memory_limit=self._parser_memory_limit
            )
            self.host.mount("/ingest", self.ingest)
        return self.host.url_for("/ingest")

    @property
    def db(self) -> Database:
        """The archive's database engine."""
        return self.wrapper.db

    def charge_processing(self, rows_examined: int) -> None:
        """Advance the simulated clock for local scan work.

        The other half of the paper's cost model: "processing costs at the
        individual SkyNodes". No-op when no cost rate is configured or the
        node is offline.
        """
        if self.network is None or self.processing_seconds_per_row <= 0.0:
            return
        elapsed = rows_examined * self.processing_seconds_per_row
        self.network.clock.advance(elapsed)
        self.network.metrics.processing_seconds += elapsed
        if self.network.tracer is not None:
            self.network.tracer.annotate(
                "processing",
                rows_examined=rows_examined,
                elapsed_s=elapsed,
            )

    def attach(self, network: SimulatedNetwork) -> None:
        """Put this node on the (simulated) Internet."""
        network.add_host(self.hostname, self.host.handle)
        self.network = network

        # Abandoned chunked transfers / streams now expire against the sim
        # clock, and every reclaim is counted in the network's metrics.
        def clock_fn() -> float:
            return network.clock.now

        def on_reclaim(count: int) -> None:
            network.metrics.reclaimed_transfers += count

        def on_stale_reap(count: int) -> None:
            network.metrics.stale_epoch_reaps += count

        def on_cancel() -> None:
            network.metrics.cancels += 1

        def on_eager(count: int) -> None:
            network.metrics.eager_reclaims += count

        self.query.sender.bind_clock(clock_fn, on_reclaim)
        self.crossmatch.sender.bind_clock(clock_fn, on_reclaim)
        self.crossmatch.bind_clock(clock_fn, on_reclaim, on_stale_reap)
        self.crossmatch.bind_cancel(on_cancel, on_eager)
        # A crash wipes everything volatile: open chunked transfers,
        # streams, and checkpoint caches all die with the process.
        network.on_crash(self.hostname, self.crash_volatile_state)

    def crash_volatile_state(self) -> None:
        """Drop all in-memory service state, as a process crash would."""
        self.query.sender.crash()
        self.crossmatch.sender.crash()
        self.crossmatch.crash()
        if self.transaction is not None:
            self.transaction.simulate_crash()
        if self.ingest is not None:
            self.ingest.crash()

    def service_url(self, service: str) -> str:
        """Endpoint URL of one of the four services."""
        return self.host.url_for(SERVICE_PATHS[service])

    def service_urls(self) -> Dict[str, str]:
        """All four endpoint URLs keyed by service kind."""
        return {name: self.service_url(name) for name in SERVICE_PATHS}

    def proxy(self, url: str) -> ServiceProxy:
        """A caller proxy originating at this node (using its XML parser)."""
        if self.network is None:
            raise RegistrationError(
                f"SkyNode {self.info.archive!r} is not attached to a network"
            )
        return ServiceProxy(
            self.network,
            self.hostname,
            url,
            parser=self.parser,
            retry_policy=self.retry_policy,
            breaker=(
                self.breakers.breaker_for(url)
                if self.breakers is not None
                else None
            ),
        )

    def register_with_portal(
        self,
        registration_url: str,
        *,
        replicas: Optional[List[Dict[str, str]]] = None,
        shards: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """Join the federation: call the Portal's Registration service.

        "When a SkyNode wishes to join the SkyQuery federation; it calls
        the Registration service of the Portal. The registration request
        includes information about services available on the SkyNode."

        ``replicas`` optionally advertises mirror SkyNodes (their full
        ``service_urls()`` dicts) that serve identical content and can
        take over if this node dies. ``shards`` optionally advertises
        this archive's spatial shard layout (a
        :class:`~repro.shard.topology.ShardSet`), folded into the
        catalog so the Planner can prune and fingerprint by layout.
        """
        if self.network is None:
            raise RegistrationError(
                f"SkyNode {self.info.archive!r} is not attached to a network"
            )
        params: Dict[str, Any] = {
            "archive": self.info.archive,
            "services": self.service_urls(),
        }
        if replicas:
            params["replicas"] = [dict(endpoint) for endpoint in replicas]
        if shards is not None:
            params["shards"] = shards.to_wire()
        with self.network.phase("registration"):
            result = self.proxy(registration_url).call("Register", **params)
        if not isinstance(result, dict) or not result.get("accepted"):
            raise RegistrationError(
                f"Portal rejected registration of {self.info.archive!r}: "
                f"{result!r}"
            )
        return result
