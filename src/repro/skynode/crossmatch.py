"""The Cross match service: one link of the daisy chain.

Paper Section 5.3: the Portal sends the execution plan to the first
SkyNode on the list; each Cross match service calls the next one, the last
node executes its query and seeds 1-tuples, and on the way back each node
extends/filters the partial tuples via the ``sp_xmatch`` stored procedure
(temp table, spatial join, chi-squared test), then ships the surviving
tuples to its caller as a serialized rowset — chunked when a monolithic
envelope would blow the caller's XML parser memory budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.portal.plan import ExecutionPlan, PlanStep
from repro.services.chunked import ChunkedSender, receive_rowset
from repro.services.framework import WebService
from repro.soap.encoding import WireRowSet
from repro.sphere.coords import radec_to_vector
from repro.sql.area import region_for
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.parser import parse_expression
from repro.units import arcsec_to_rad
from repro.xmatch.stream import seed_tuples
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.xmatch.wire import rowset_to_tuples, tuples_to_rowset

if TYPE_CHECKING:
    from repro.skynode.node import SkyNode


class CrossMatchService(WebService):
    """``PerformXMatch`` + the chunked-transfer companion ``FetchChunk``."""

    def __init__(
        self,
        node: "SkyNode",
        *,
        parser_memory_limit: Optional[int] = None,
        chunk_budget_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"{node.info.archive}CrossMatch",
            parser_memory_limit=parser_memory_limit,
        )
        self._node = node
        self.sender = ChunkedSender(
            f"{node.info.archive}-xm", chunk_budget_bytes
        )
        self.register(
            "PerformXMatch",
            self._perform,
            params=(("plan", "struct"), ("position", "int")),
            returns="struct",
            doc="Run this node's step of the federated cross match.",
        )
        self.register(
            "FetchChunk",
            self._fetch_chunk,
            params=(("transfer_id", "string"), ("seq", "int")),
            returns="rowset",
            doc="Fetch one chunk of a chunked partial-result transfer.",
        )

    # -- operations ------------------------------------------------------------

    def _perform(self, plan: Dict[str, Any], position: int) -> Dict[str, Any]:
        plan_obj = ExecutionPlan.from_wire(plan)
        position = int(position)
        me = plan_obj.step(position)
        if me.archive != self._node.info.archive:
            raise ExecutionError(
                f"plan step {position} targets {me.archive!r} but reached "
                f"{self._node.info.archive!r}"
            )
        stats_chain: List[Dict[str, Any]] = []
        if position == len(plan_obj.steps) - 1:
            tuples, my_stats = self._seed_step(plan_obj, me)
        else:
            incoming, stats_chain = self._call_next(plan, plan_obj, position)
            tuples, my_stats = self._local_step(plan_obj, me, incoming)
        out_rowset = tuples_to_rowset(
            tuples,
            plan_obj.member_aliases_after(position),
            plan_obj.attr_columns_after(position),
        )
        my_stats["tuples_out"] = len(tuples)
        stats_chain.append(my_stats)
        return self._respond(out_rowset, stats_chain)

    def _fetch_chunk(self, transfer_id: str, seq: int) -> WireRowSet:
        return self.sender.fetch_chunk(transfer_id, seq)

    # -- chain plumbing -----------------------------------------------------------

    def _call_next(
        self, plan_wire: Dict[str, Any], plan: ExecutionPlan, position: int
    ) -> Tuple[List[PartialTuple], List[Dict[str, Any]]]:
        next_step = plan.step(position + 1)
        proxy = self._node.proxy(next_step.url)
        response = proxy.call("PerformXMatch", plan=plan_wire, position=position + 1)
        stats_chain = list(response.get("stats") or [])
        rowset = receive_rowset(response, proxy)
        incoming = rowset_to_tuples(
            rowset,
            plan.member_aliases_after(position + 1),
            plan.attr_columns_after(position + 1),
        )
        return incoming, stats_chain

    def _respond(
        self, rowset: WireRowSet, stats: List[Dict[str, Any]]
    ) -> Dict[str, Any]:
        return self.sender.respond(rowset, {"stats": stats})

    # -- the two step kinds ---------------------------------------------------------

    def _seed_step(
        self, plan: ExecutionPlan, me: PlanStep
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Last node on the list: run the node query, emit 1-tuples."""
        wrapper = self._node.wrapper
        db = wrapper.db
        before = (db.buffer.stats.logical_reads, db.buffer.stats.physical_reads)
        query = self._node_query_ast(plan, me)
        result = wrapper.execute_ast(query)
        attr_names = [column for column, _, _ in me.attr_select]
        objects = [
            LocalObject(
                object_id=row[0],
                position=radec_to_vector(row[1], row[2]),
                attributes=dict(zip(attr_names, row[3:])),
            )
            for row in result.rows
        ]
        tuples = seed_tuples(me.alias, objects, arcsec_to_rad(me.sigma_arcsec))
        stats = self._stats_dict(me, role="seed", tuples_in=0)
        stats["rows_examined"] = result.stats.rows_examined
        stats["candidates_tested"] = result.stats.rows_returned
        stats["logical_reads"] = db.buffer.stats.logical_reads - before[0]
        stats["physical_reads"] = db.buffer.stats.physical_reads - before[1]
        self._node.charge_processing(result.stats.rows_examined)
        return tuples, stats

    def _local_step(
        self, plan: ExecutionPlan, me: PlanStep, incoming: List[PartialTuple]
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Middle/first nodes: temp table + sp_xmatch + extend/filter."""
        from repro.db.schema import Column
        from repro.db.types import ColumnType
        from repro.skynode.xmatch_proc import PROCEDURE_NAME

        db = self._node.wrapper.db
        before = (db.buffer.stats.logical_reads, db.buffer.stats.physical_reads)
        temp = db.create_temp_table(
            "xmatch",
            [
                Column("seq", ColumnType.INT, nullable=False),
                Column("a", ColumnType.FLOAT, nullable=False),
                Column("ax", ColumnType.FLOAT, nullable=False),
                Column("ay", ColumnType.FLOAT, nullable=False),
                Column("az", ColumnType.FLOAT, nullable=False),
            ],
        )
        try:
            for seq, partial in enumerate(incoming):
                temp.insert((seq, partial.acc.a, partial.acc.ax,
                             partial.acc.ay, partial.acc.az))
            area_region = (
                region_for(plan.area) if plan.area is not None else None
            )
            residual = (
                parse_expression(me.residual_sql) if me.residual_sql else None
            )
            proc_result = db.call_procedure(
                PROCEDURE_NAME,
                temp_table=temp.name,
                primary_table=me.table,
                id_column=me.id_column,
                ra_column=me.ra_column,
                dec_column=me.dec_column,
                alias=me.alias,
                sigma_arcsec=me.sigma_arcsec,
                threshold=plan.threshold,
                area=area_region,
                residual=residual,
                attr_columns=[column for column, _, _ in me.attr_select],
                kernel=self._node.xmatch_kernel,
            )
        finally:
            db.drop_table(temp.name)  # "The temporary table is deleted."

        if me.dropout:
            tuples = [
                partial
                for seq, partial in enumerate(incoming)
                if seq not in proc_result.matches
            ]
        else:
            sigma_rad = arcsec_to_rad(me.sigma_arcsec)
            tuples = [
                incoming[seq].extended(me.alias, obj, sigma_rad)
                for seq, objects in sorted(proc_result.matches.items())
                for obj in objects
            ]
        stats = self._stats_dict(
            me,
            role="dropout" if me.dropout else "match",
            tuples_in=len(incoming),
        )
        stats["rows_examined"] = proc_result.stats.rows_examined
        stats["candidates_tested"] = proc_result.stats.candidates_tested
        stats["logical_reads"] = db.buffer.stats.logical_reads - before[0]
        stats["physical_reads"] = db.buffer.stats.physical_reads - before[1]
        self._node.charge_processing(proc_result.stats.rows_examined)
        return tuples, stats

    def _node_query_ast(self, plan: ExecutionPlan, me: PlanStep) -> Query:
        items = [
            SelectItem(ColumnRef(me.alias, me.id_column)),
            SelectItem(ColumnRef(me.alias, me.ra_column)),
            SelectItem(ColumnRef(me.alias, me.dec_column)),
        ]
        items.extend(
            SelectItem(ColumnRef(me.alias, column))
            for column, _, _ in me.attr_select
        )
        where: Optional[Expr] = None
        if plan.area is not None:
            where = plan.area  # AREA clauses are themselves WHERE conjuncts
        if me.residual_sql:
            residual = parse_expression(me.residual_sql)
            where = residual if where is None else BinaryOp("AND", where, residual)
        return Query(
            items=tuple(items),
            tables=(TableRef(None, me.table, me.alias),),
            where=where,
        )

    @staticmethod
    def _stats_dict(me: PlanStep, *, role: str, tuples_in: int) -> Dict[str, Any]:
        return {
            "archive": me.archive,
            "alias": me.alias,
            "role": role,
            "tuples_in": tuples_in,
            "tuples_out": 0,
            "rows_examined": 0,
            "candidates_tested": 0,
            "logical_reads": 0,
            "physical_reads": 0,
            "sql": me.sql,
        }
